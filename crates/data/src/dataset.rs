//! Training datasets derived from the click log.
//!
//! Produces the three corpora the paper trains on:
//! * query→title pairs for the forward model (and reversed for the
//!   backward model) — §III-B,
//! * synonymous query pairs for the direct query→query serving model,
//!   mined as queries sharing at least `q2q_shared_clicks` clicks on the
//!   same item — §III-G,
//! * a held-out evaluation split of queries.

use qrw_tensor::rng::StdRng;

use qrw_text::{tokenize, Vocab};

use crate::generator::ClickLog;

/// One weighted translation training pair (token ids, no specials).
#[derive(Clone, Debug)]
pub struct Pair {
    pub src: Vec<usize>,
    pub tgt: Vec<usize>,
    /// Click count; used for frequency-proportional sampling.
    pub weight: u32,
}

/// The assembled dataset.
pub struct Dataset {
    /// Shared vocabulary over queries and titles.
    pub vocab: Vocab,
    /// Query→title pairs (the forward direction; swap for backward).
    pub q2t: Vec<Pair>,
    /// Synonymous query pairs for the §III-G direct model.
    pub q2q: Vec<Pair>,
    /// Indices (into `log.queries`) held out for evaluation.
    pub eval_queries: Vec<usize>,
    /// Indices used for training.
    pub train_queries: Vec<usize>,
}

/// Dataset assembly parameters.
#[derive(Clone, Copy, Debug)]
pub struct DatasetConfig {
    /// Fraction of distinct queries held out for evaluation.
    pub eval_fraction: f64,
    /// Minimum shared clicks on one item for two queries to count as
    /// synonymous (§III-G mining rule).
    pub q2q_shared_clicks: u32,
    /// Vocabulary minimum token count.
    pub min_token_count: usize,
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig { eval_fraction: 0.15, q2q_shared_clicks: 2, min_token_count: 1, seed: 31 }
    }
}

impl Dataset {
    /// Builds the dataset from a click log.
    pub fn build(log: &ClickLog, config: &DatasetConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Split queries into train/eval.
        let mut order: Vec<usize> = (0..log.queries.len()).collect();
        rng.shuffle(&mut order);
        let n_eval = ((log.queries.len() as f64) * config.eval_fraction).round() as usize;
        let eval_queries: Vec<usize> = order[..n_eval].to_vec();
        let train_queries: Vec<usize> = order[n_eval..].to_vec();
        let is_train = {
            let mut mask = vec![false; log.queries.len()];
            for &q in &train_queries {
                mask[q] = true;
            }
            mask
        };

        // Vocabulary over every query and title (train + eval: the paper's
        // models see all production vocabulary; eval queries are unseen
        // *pairs*, not unseen tokens).
        let query_texts: Vec<Vec<String>> =
            log.queries.iter().map(|q| q.tokens.clone()).collect();
        let title_texts: Vec<Vec<String>> = log
            .catalog
            .items
            .iter()
            .map(|i| i.title_tokens.clone())
            .collect();
        let all: Vec<&[String]> = query_texts
            .iter()
            .map(Vec::as_slice)
            .chain(title_texts.iter().map(Vec::as_slice))
            .collect();
        let vocab = Vocab::build(all.iter().copied(), config.min_token_count);

        // Query→title pairs from train-split click edges.
        let mut q2t = Vec::new();
        for pair in &log.pairs {
            if !is_train[pair.query] {
                continue;
            }
            let q = &log.queries[pair.query];
            let title = &log.catalog.item(pair.item).title_tokens;
            q2t.push(Pair {
                src: vocab.encode(&q.tokens),
                tgt: vocab.encode(title),
                weight: pair.clicks,
            });
        }

        // §III-G q2q mining: queries sharing enough clicks on one item.
        let mut q2q = Vec::new();
        let mut by_item: std::collections::HashMap<usize, Vec<(usize, u32)>> =
            std::collections::HashMap::new();
        for pair in &log.pairs {
            if is_train[pair.query] {
                by_item.entry(pair.item).or_default().push((pair.query, pair.clicks));
            }
        }
        let mut seen = std::collections::HashSet::new();
        for clickers in by_item.values() {
            for (i, &(qa, ca)) in clickers.iter().enumerate() {
                for &(qb, cb) in &clickers[i + 1..] {
                    if qa == qb || ca.min(cb) < config.q2q_shared_clicks {
                        continue;
                    }
                    if !seen.insert((qa.min(qb), qa.max(qb))) {
                        continue;
                    }
                    let a = vocab.encode(&log.queries[qa].tokens);
                    let b = vocab.encode(&log.queries[qb].tokens);
                    let w = ca.min(cb);
                    // Both directions: the q2q model is symmetric data-wise.
                    q2q.push(Pair { src: a.clone(), tgt: b.clone(), weight: w });
                    q2q.push(Pair { src: b, tgt: a, weight: w });
                }
            }
        }

        Dataset { vocab, q2t, q2q, eval_queries, train_queries }
    }

    /// Encodes arbitrary text with this dataset's vocabulary.
    pub fn encode_text(&self, text: &str) -> Vec<usize> {
        self.vocab.encode(&tokenize(text))
    }

    /// Decodes ids back to text.
    pub fn decode(&self, ids: &[usize]) -> String {
        self.vocab.decode(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::LogConfig;

    fn dataset() -> (ClickLog, Dataset) {
        let log = ClickLog::generate(&LogConfig::default());
        let ds = Dataset::build(&log, &DatasetConfig::default());
        (log, ds)
    }

    #[test]
    fn splits_are_disjoint_and_cover() {
        let (log, ds) = dataset();
        let mut all: Vec<usize> =
            ds.eval_queries.iter().chain(&ds.train_queries).copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..log.queries.len()).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn q2t_pairs_only_from_train_split(){
        let (_log, ds) = dataset();
        assert!(!ds.q2t.is_empty());
        // Evaluation queries must not leak into training sources.
        // (Checked indirectly: every q2t pair decodes to a train query.)
        let train_texts: std::collections::HashSet<String> = {
            let (log, _) = dataset();
            ds.train_queries.iter().map(|&q| log.queries[q].text()).collect()
        };
        let (log2, _) = dataset();
        let _ = log2;
        for p in &ds.q2t {
            let text = ds.decode(&p.src);
            assert!(train_texts.contains(&text), "{text} is not a train query");
        }
    }

    #[test]
    fn q2q_pairs_are_symmetric_and_same_category_mostly() {
        let (log, ds) = dataset();
        assert!(!ds.q2q.is_empty(), "no q2q pairs mined");
        assert_eq!(ds.q2q.len() % 2, 0);
        // Queries that co-click the same items are nearly always the same
        // category (noise can create rare exceptions).
        let text_to_cat: std::collections::HashMap<String, usize> =
            log.queries.iter().map(|q| (q.text(), q.category)).collect();
        let mut same = 0;
        let mut total = 0;
        for p in &ds.q2q {
            let a = text_to_cat[&ds.decode(&p.src)];
            let b = text_to_cat[&ds.decode(&p.tgt)];
            total += 1;
            if a == b {
                same += 1;
            }
        }
        assert!(same as f64 / total as f64 > 0.9, "{same}/{total}");
    }

    #[test]
    fn vocab_roundtrips_queries() {
        let (log, ds) = dataset();
        for q in &log.queries {
            let ids = ds.vocab.encode(&q.tokens);
            assert_eq!(ds.vocab.decode(&ids), q.text());
        }
    }

    #[test]
    fn deterministic() {
        let (_l1, a) = dataset();
        let (_l2, b) = dataset();
        assert_eq!(a.eval_queries, b.eval_queries);
        assert_eq!(a.q2t.len(), b.q2t.len());
        assert_eq!(a.q2q.len(), b.q2q.len());
    }

    #[test]
    fn weights_are_click_counts() {
        let (_log, ds) = dataset();
        assert!(ds.q2t.iter().all(|p| p.weight >= 2));
    }
}
