//! Click-log import/export.
//!
//! The synthetic generator stands in for proprietary logs, but the
//! training stack itself is data-agnostic: this module round-trips the
//! training view of a click log through a plain TSV format
//! (`query \t title \t clicks`, one aggregated click edge per line), so a
//! real click log can be dropped in without touching the generator.

use std::io;

use qrw_text::{tokenize, Vocab};

use crate::dataset::Pair;
use crate::generator::ClickLog;

/// A corpus imported from external data: a vocabulary built over it and
/// the weighted query→title pairs ready for the trainers.
#[derive(Debug)]
pub struct ExternalCorpus {
    pub vocab: Vocab,
    pub q2t: Vec<Pair>,
}

/// Exports the aggregated click edges as TSV (`query \t title \t clicks`).
pub fn export_pairs_tsv(log: &ClickLog) -> String {
    let mut out = String::new();
    for pair in &log.pairs {
        let query = log.queries[pair.query].text();
        let title = log.catalog.item(pair.item).title();
        out.push_str(&query);
        out.push('\t');
        out.push_str(&title);
        out.push('\t');
        out.push_str(&pair.clicks.to_string());
        out.push('\n');
    }
    out
}

fn bad(line_no: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {msg}", line_no + 1))
}

/// Imports a TSV click log. Empty lines and `#` comments are skipped;
/// a missing click column defaults to 1. Tokens are normalized with the
/// standard tokenizer and the vocabulary is built over all lines
/// (min count 1).
pub fn import_pairs_tsv(text: &str) -> io::Result<ExternalCorpus> {
    let mut rows: Vec<(Vec<String>, Vec<String>, u32)> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        let query = cols.next().ok_or_else(|| bad(line_no, "missing query column"))?;
        let title = cols.next().ok_or_else(|| bad(line_no, "missing title column"))?;
        let clicks = match cols.next() {
            None => 1,
            Some(c) => c
                .trim()
                .parse::<u32>()
                .map_err(|_| bad(line_no, "clicks column is not an integer"))?,
        };
        let q = tokenize(query);
        let t = tokenize(title);
        if q.is_empty() || t.is_empty() {
            return Err(bad(line_no, "query and title must be non-empty after tokenization"));
        }
        rows.push((q, t, clicks));
    }
    if rows.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "no data lines in TSV"));
    }
    let texts: Vec<&[String]> = rows
        .iter()
        .flat_map(|(q, t, _)| [q.as_slice(), t.as_slice()])
        .collect();
    let vocab = Vocab::build(texts.iter().copied(), 1);
    let q2t = rows
        .iter()
        .map(|(q, t, clicks)| Pair {
            src: vocab.encode(q),
            tgt: vocab.encode(t),
            weight: *clicks,
        })
        .collect();
    Ok(ExternalCorpus { vocab, q2t })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::LogConfig;

    #[test]
    fn export_import_roundtrip_preserves_pairs() {
        let log = ClickLog::generate(&LogConfig::tiny());
        let tsv = export_pairs_tsv(&log);
        assert_eq!(tsv.lines().count(), log.pairs.len());
        let corpus = import_pairs_tsv(&tsv).unwrap();
        assert_eq!(corpus.q2t.len(), log.pairs.len());
        // Weighted identically.
        for (pair, imported) in log.pairs.iter().zip(&corpus.q2t) {
            assert_eq!(pair.clicks, imported.weight);
            assert_eq!(
                corpus.vocab.decode(&imported.src),
                log.queries[pair.query].text()
            );
            assert_eq!(corpus.vocab.decode(&imported.tgt), log.catalog.item(pair.item).title());
        }
    }

    #[test]
    fn comments_blank_lines_and_default_clicks() {
        let tsv = "# a comment\n\nred shoe\tred shoes men\n";
        let corpus = import_pairs_tsv(tsv).unwrap();
        assert_eq!(corpus.q2t.len(), 1);
        assert_eq!(corpus.q2t[0].weight, 1);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let err = import_pairs_tsv("only-one-column\n").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = import_pairs_tsv("q\tt\tnot-a-number\n").unwrap_err();
        assert!(err.to_string().contains("not an integer"));
        let err = import_pairs_tsv("???\ttitle\t2\n").unwrap_err();
        assert!(err.to_string().contains("non-empty"));
        assert!(import_pairs_tsv("# only comments\n").is_err());
    }

    #[test]
    fn imported_corpus_is_trainable() {
        let tsv = "red shoe\tcrimson footwear sale\t3\nred shoe\tred shoes men\t2\nphone\tsmartphone new\t4\n";
        let corpus = import_pairs_tsv(tsv).unwrap();
        assert!(corpus.vocab.len() > qrw_text::NUM_SPECIALS);
        // Ids are in range for a model of this vocab size.
        for p in &corpus.q2t {
            assert!(p.src.iter().chain(&p.tgt).all(|&id| id < corpus.vocab.len()));
        }
    }
}
