//! # qrw-data
//!
//! Synthetic e-commerce data substrate for the cycle-consistent
//! query-rewriting reproduction. Substitutes the paper's proprietary
//! JD.com click logs with a generator whose catalog realizes, by
//! construction, every failure mode the paper motivates (vocabulary
//! register mismatch, colloquial brand aliases, audience phrases,
//! polysemy) — with ground truth available for oracle evaluation.
//!
//! * [`catalog`] — categories / brands / audiences / items + lexicon.
//! * [`generator`] — query intents and aggregated click logs.
//! * [`dataset`] — q2t / q2q training pairs and eval splits (§III-B, §III-G).
//! * [`intent`] — ground-truth intent parsing and graded relevance
//!   (the simulated human labeler of Table VI).
//! * [`synonyms`] — the curated dictionary behind the rule-based baseline.
//! * [`stats`] — Table I dataset statistics.

pub mod catalog;
pub mod dataset;
pub mod generator;
pub mod intent;
pub mod io;
pub mod stats;
pub mod synonyms;
mod words;

pub use catalog::{Catalog, CatalogConfig, Item, Sense};
pub use dataset::{Dataset, DatasetConfig, Pair};
pub use generator::{generate_sessions, ClickLog, ClickPair, GeneratedQuery, LogConfig, QueryKind, SessionConfig};
pub use intent::{intent_relevance, parse_intent, ParsedIntent};
pub use io::{export_pairs_tsv, import_pairs_tsv, ExternalCorpus};
pub use stats::DataStats;
pub use synonyms::SynonymDict;
