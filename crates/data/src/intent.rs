//! Ground-truth intent parsing of arbitrary query/rewrite text.
//!
//! This powers the simulated "human" relevance evaluation (Table VI) and
//! the A/B user model: given any token sequence — including model-generated
//! rewrites — recover the most plausible intent slots using the catalog's
//! lexicon, with context-based disambiguation of polysemous tokens
//! (the "cherry" case: brand next to "keyboard", fruit next to "sweet").

use std::collections::HashSet;

use crate::catalog::{Catalog, Sense};

/// The intent slots recovered from a token sequence.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedIntent {
    pub categories: HashSet<usize>,
    pub brands: HashSet<usize>,
    pub audiences: HashSet<usize>,
    pub attrs: HashSet<String>,
    /// Tokens with no catalog sense at all (model codes, garbage).
    pub unknown: Vec<String>,
}

impl ParsedIntent {
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
            && self.brands.is_empty()
            && self.audiences.is_empty()
            && self.attrs.is_empty()
    }
}

/// Parses `tokens` into intent slots.
///
/// Disambiguation rule for tokens with several senses: if any *other*
/// token unambiguously names a category, prefer the sense consistent with
/// that category (a brand selling in it, or the category itself);
/// otherwise prefer the brand sense (users typing a bare brand usually
/// mean the brand — matching the paper's observation that rule-based
/// dictionaries get this wrong without context).
pub fn parse_intent(catalog: &Catalog, tokens: &[String]) -> ParsedIntent {
    let mut out = ParsedIntent::default();

    // Pass 1: unambiguous category evidence.
    let mut anchor_categories: HashSet<usize> = HashSet::new();
    for tok in tokens {
        let senses = catalog.senses(tok);
        let cats: Vec<usize> = senses
            .iter()
            .filter_map(|s| match s {
                Sense::Category(c) => Some(*c),
                _ => None,
            })
            .collect();
        if cats.len() == 1 && senses.len() == 1 {
            anchor_categories.insert(cats[0]);
        }
    }

    // Pass 2: resolve every token.
    for tok in tokens {
        let senses = catalog.senses(tok);
        if senses.is_empty() {
            out.unknown.push(tok.clone());
            continue;
        }
        let chosen = if senses.len() == 1 {
            senses[0]
        } else {
            disambiguate(catalog, senses, &anchor_categories)
        };
        match chosen {
            Sense::Category(c) => {
                out.categories.insert(c);
            }
            Sense::Brand(b) => {
                out.brands.insert(b);
                // A brand implies its categories as weak category evidence
                // when no category token is present.
                if anchor_categories.is_empty() {
                    for cat in &catalog.categories {
                        if cat.brand_ids.contains(&b) {
                            out.categories.insert(cat.id);
                        }
                    }
                }
            }
            Sense::Audience(a) => {
                out.audiences.insert(a);
            }
            Sense::Attr => {
                out.attrs.insert(tok.clone());
            }
            Sense::Junk => {}
        }
    }
    // Anchored categories always count.
    out.categories.extend(anchor_categories);
    out
}

fn disambiguate(catalog: &Catalog, senses: &[Sense], anchors: &HashSet<usize>) -> Sense {
    if !anchors.is_empty() {
        // Prefer a sense consistent with an anchored category.
        for s in senses {
            match s {
                Sense::Brand(b)
                    if anchors
                        .iter()
                        .any(|&c| catalog.category(c).brand_ids.contains(b)) =>
                {
                    return *s;
                }
                Sense::Category(c) if anchors.contains(c) => return *s,
                _ => {}
            }
        }
        // An anchored category exists but this token's senses point
        // elsewhere: prefer its category sense (e.g. "apple" next to
        // "fruit" anchors; keep fruit-category reading).
        for s in senses {
            if matches!(s, Sense::Category(_)) {
                return *s;
            }
        }
    }
    // No context: bare polysemous tokens read as brands.
    for s in senses {
        if matches!(s, Sense::Brand(_)) {
            return *s;
        }
    }
    senses[0]
}

/// Graded ground-truth relevance of a rewrite to the original query's
/// intent, in `[0, 1]`.
///
/// This is the simulated human labeler: category agreement dominates,
/// brand/audience slot agreement refines, introducing a *wrong* brand or
/// audience is penalized, and an empty/unparseable rewrite scores zero.
pub fn intent_relevance(catalog: &Catalog, original: &[String], rewrite: &[String]) -> f32 {
    let orig = parse_intent(catalog, original);
    let new = parse_intent(catalog, rewrite);
    if new.is_empty() {
        return 0.0;
    }
    if orig.is_empty() {
        // Nothing to compare against; neutral.
        return 0.5;
    }
    let mut score = 0.0f32;
    // Category agreement.
    if orig.categories.is_empty() && new.categories.is_empty() {
        score += 0.3;
    } else if orig.categories.intersection(&new.categories).next().is_some() {
        score += 0.6;
    } else if !orig.categories.is_empty() && !new.categories.is_empty() {
        return 0.05; // category drift: irrelevant rewrite
    } else {
        score += 0.2;
    }
    // Brand slot.
    if orig.brands.is_empty() {
        score += if new.brands.is_empty() { 0.2 } else { 0.1 };
    } else if orig.brands.intersection(&new.brands).next().is_some() {
        score += 0.2;
    } else if new.brands.is_empty() {
        score += 0.1; // dropped the brand: generalization
    } // introduced wrong brand: no credit
    // Audience slot.
    if orig.audiences.is_empty() {
        score += if new.audiences.is_empty() { 0.2 } else { 0.1 };
    } else if orig.audiences.intersection(&new.audiences).next().is_some() {
        score += 0.2;
    } else if new.audiences.is_empty() {
        score += 0.05;
    }
    score.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn catalog() -> Catalog {
        Catalog::generate(&CatalogConfig::default())
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_hard_audience_query() {
        let c = catalog();
        let p = parse_intent(&c, &toks("phone for grandpa"));
        assert_eq!(p.categories.len(), 1);
        assert_eq!(p.audiences.len(), 1);
        assert!(p.brands.is_empty());
    }

    #[test]
    fn polysemous_apple_is_brand_without_context() {
        let c = catalog();
        let p = parse_intent(&c, &toks("apple"));
        assert!(!p.brands.is_empty(), "bare 'apple' should read as the brand");
    }

    #[test]
    fn polysemous_apple_is_fruit_with_fruit_context() {
        let c = catalog();
        let p = parse_intent(&c, &toks("sweet apple fruit"));
        // "fruit" anchors the fruit category; "apple" resolves to category.
        let fruit_cat = c
            .categories
            .iter()
            .find(|cat| cat.name == "fruit")
            .unwrap()
            .id;
        assert!(p.categories.contains(&fruit_cat));
    }

    #[test]
    fn cherry_disambiguates_by_context() {
        let c = catalog();
        let with_kb = parse_intent(&c, &toks("cherry keyboard"));
        assert!(!with_kb.brands.is_empty(), "keyboard context keeps the brand");
        let with_fruit = parse_intent(&c, &toks("cherry fruit sweet"));
        let fruit_cat = c.categories.iter().find(|cat| cat.name == "fruit").unwrap().id;
        assert!(with_fruit.categories.contains(&fruit_cat));
    }

    #[test]
    fn relevance_same_intent_rewrites_high() {
        let c = catalog();
        // "phone for grandpa" vs the title-register equivalent.
        let r = intent_relevance(&c, &toks("phone for grandpa"), &toks("senior smartphone"));
        assert!(r >= 0.8, "{r}");
    }

    #[test]
    fn relevance_category_drift_is_near_zero() {
        let c = catalog();
        let r = intent_relevance(&c, &toks("phone for grandpa"), &toks("fresh produce"));
        assert!(r <= 0.1, "{r}");
    }

    #[test]
    fn relevance_zero_for_unparseable_rewrite() {
        let c = catalog();
        assert_eq!(intent_relevance(&c, &toks("phone"), &toks("zz9x qqq")), 0.0);
    }

    #[test]
    fn relevance_penalizes_wrong_brand_introduction() {
        let c = catalog();
        let with_brand = intent_relevance(&c, &toks("cellphone"), &toks("huaxin smartphone"));
        let no_brand = intent_relevance(&c, &toks("cellphone"), &toks("smartphone handset"));
        assert!(no_brand > with_brand, "{no_brand} vs {with_brand}");
    }

    #[test]
    fn unknown_tokens_are_reported() {
        let c = catalog();
        let p = parse_intent(&c, &toks("phone x99pro"));
        assert_eq!(p.unknown, vec!["x99pro".to_string()]);
    }
}
