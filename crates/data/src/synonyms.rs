//! The human-curated synonym dictionary the rule-based baseline uses.
//!
//! The paper's baseline "starts from a human-curated synonym phrase
//! dictionary [and] simply replaces the phrase in the query with its
//! synonym phrase". We derive the dictionary from the catalog the way a
//! human curator would: category query-term ↔ title-term synonyms, brand
//! alias → formal name, audience phrase → title term — including the
//! paper's *polysemy trap*: "cherry" maps to its keyboard-brand synonym,
//! which is wrong for fruit-intent queries (§IV-C2).

use crate::catalog::Catalog;

/// An ordered phrase-substitution dictionary (longest match first).
#[derive(Clone, Debug, Default)]
pub struct SynonymDict {
    /// `(phrase, replacement)` pairs over tokens.
    entries: Vec<(Vec<String>, Vec<String>)>,
}

impl SynonymDict {
    /// Builds the dictionary from catalog ground truth.
    pub fn from_catalog(catalog: &Catalog) -> Self {
        let mut entries: Vec<(Vec<String>, Vec<String>)> = Vec::new();
        let mut push = |phrase: Vec<String>, replacement: Vec<String>| {
            if phrase != replacement && !entries.iter().any(|(p, _)| *p == phrase) {
                entries.push((phrase, replacement));
            }
        };

        // Audience phrases: "for grandpa" -> "senior".
        for aud in &catalog.audiences {
            if let Some(term) = aud.title_terms.first() {
                push(aud.query_phrase.clone(), vec![term.clone()]);
            }
        }
        // Brand aliases -> formal names. A polysemous alias (also a
        // category word, like "cherry"/"apple") still maps to the brand —
        // that is exactly the curation mistake the paper describes.
        for brand in &catalog.brands {
            for alias in &brand.aliases {
                push(vec![alias.clone()], vec![brand.formal.clone()]);
            }
        }
        // Category query-term -> first title term (synonym thesaurus).
        for cat in &catalog.categories {
            if let Some(title_term) = cat.title_terms.first() {
                for q in &cat.query_terms {
                    // Skip polysemous query terms already claimed by a brand
                    // only if identical mapping exists; the trap above keeps
                    // brand mappings first.
                    push(vec![q.clone()], vec![title_term.clone()]);
                }
            }
        }

        // Longest phrases first so multi-token rules win over single-token.
        entries.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        SynonymDict { entries }
    }

    /// Adds one entry manually (used by tests and ablations).
    pub fn insert(&mut self, phrase: &[&str], replacement: &[&str]) {
        self.entries.insert(
            0,
            (
                phrase.iter().map(|s| s.to_string()).collect(),
                replacement.iter().map(|s| s.to_string()).collect(),
            ),
        );
        self.entries.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&[String], &[String])> {
        self.entries.iter().map(|(p, r)| (p.as_slice(), r.as_slice()))
    }

    /// Finds the first (longest) dictionary phrase occurring in `tokens`,
    /// returning `(start, phrase_len, replacement)`.
    pub fn find_match<'d>(&'d self, tokens: &[String]) -> Option<(usize, usize, &'d [String])> {
        for (phrase, replacement) in &self.entries {
            if phrase.len() > tokens.len() {
                continue;
            }
            for start in 0..=tokens.len() - phrase.len() {
                if tokens[start..start + phrase.len()] == phrase[..] {
                    return Some((start, phrase.len(), replacement));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn dict() -> (Catalog, SynonymDict) {
        let catalog = Catalog::generate(&CatalogConfig::default());
        let dict = SynonymDict::from_catalog(&catalog);
        (catalog, dict)
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn contains_audience_and_alias_rules() {
        let (_c, d) = dict();
        assert!(d.len() > 10);
        let m = d.find_match(&toks("phone for grandpa"));
        let (start, len, repl) = m.expect("audience phrase should match");
        assert_eq!((start, len), (1, 2));
        assert_eq!(repl, &["senior".to_string()]);
        let (_, _, repl) = d.find_match(&toks("ahdi sneaker")).expect("alias should match");
        assert_eq!(repl, &["adidas".to_string()]);
    }

    #[test]
    fn polysemy_trap_is_present() {
        // "cherry" maps to the keyboard brand's formal name — itself
        // "cherry" — so the curator adds no entry... unless the formal
        // differs. Verify the *category* rule instead: "cherry" as a fruit
        // query term maps to the fruit title term, and the find order can
        // pick the brand first. Either way a bare "cherry" gets rewritten
        // by a single global rule, context-free: the paper's failure mode.
        let (_c, d) = dict();
        let m = d.find_match(&toks("cherry"));
        assert!(m.is_some(), "a context-free rule for 'cherry' exists");
    }

    #[test]
    fn longest_match_wins() {
        let (_c, mut d) = dict();
        d.insert(&["red", "shoe"], &["crimson", "footwear"]);
        let (start, len, repl) = d.find_match(&toks("red shoe")).unwrap();
        assert_eq!((start, len), (0, 2));
        assert_eq!(repl.join(" "), "crimson footwear");
    }

    #[test]
    fn no_match_returns_none() {
        let (_c, d) = dict();
        assert!(d.find_match(&toks("zzzz qqqq")).is_none());
    }

    #[test]
    fn identity_rules_are_excluded() {
        let (_c, d) = dict();
        for (p, r) in d.iter() {
            assert_ne!(p, r);
        }
    }
}
