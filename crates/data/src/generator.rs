//! Query-intent and click-log generation.
//!
//! Mirrors the paper's data regime: a log of (query, clicked item title)
//! pairs with click counts, dominated by head queries but with a long tail
//! of hard natural-language queries; pairs with fewer than `min_clicks`
//! clicks are dropped (the paper drops single-click pairs as accidental).

use qrw_tensor::rng::StdRng;

use crate::catalog::{Catalog, CatalogConfig};

/// How a query is phrased, which controls its difficulty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// Brand/category/attr in shared vocabulary; inverted index succeeds.
    Standard,
    /// Natural-language audience query ("phone for grandpa"); the title
    /// register says "senior smartphone" — term mismatch.
    HardAudience,
    /// Colloquial brand alias that never appears in titles ("ahdi shoe").
    BrandAlias,
    /// A bare polysemous brand word ("apple", "cherry").
    Polysemous,
}

/// A generated query with its ground-truth intent slots.
#[derive(Clone, Debug)]
pub struct GeneratedQuery {
    pub tokens: Vec<String>,
    pub category: usize,
    pub brand: Option<usize>,
    pub audience: Option<usize>,
    pub attr: Option<String>,
    pub kind: QueryKind,
    /// Number of times this query is issued in the log (head/tail skew).
    pub frequency: u32,
}

impl GeneratedQuery {
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }
}

/// One aggregated (query, item) click edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClickPair {
    /// Index into [`ClickLog::queries`].
    pub query: usize,
    /// Item id in the catalog.
    pub item: usize,
    pub clicks: u32,
}

/// Click-log generation parameters.
#[derive(Clone, Debug)]
pub struct LogConfig {
    pub catalog: CatalogConfig,
    /// Distinct query intents to generate.
    pub n_queries: usize,
    /// Mean clicks per query issuance.
    pub clicks_per_session: f32,
    /// Pairs with fewer clicks are dropped (paper: 2).
    pub min_clicks: u32,
    /// Probability a click lands on a random (irrelevant) item.
    pub noise: f64,
    pub seed: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            catalog: CatalogConfig::default(),
            n_queries: 400,
            clicks_per_session: 1.6,
            min_clicks: 2,
            noise: 0.04,
            seed: 23,
        }
    }
}

impl LogConfig {
    pub fn tiny() -> Self {
        LogConfig {
            catalog: CatalogConfig::tiny(),
            n_queries: 40,
            ..LogConfig::default()
        }
    }
}

/// The generated click log: catalog, distinct queries, and aggregated
/// click edges.
#[derive(Clone, Debug)]
pub struct ClickLog {
    pub catalog: Catalog,
    pub queries: Vec<GeneratedQuery>,
    pub pairs: Vec<ClickPair>,
    /// Total search sessions simulated (query issuances).
    pub sessions: u64,
}

impl ClickLog {
    /// Generates queries and clicks deterministically from `config.seed`.
    pub fn generate(config: &LogConfig) -> Self {
        let catalog = Catalog::generate(&config.catalog);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let queries = generate_queries(&catalog, config.n_queries, &mut rng);
        let (pairs, sessions) = simulate_clicks(&catalog, &queries, config, &mut rng);
        ClickLog { catalog, queries, pairs, sessions }
    }

    /// Clicked item ids for a query index.
    pub fn clicked_items(&self, query: usize) -> impl Iterator<Item = &ClickPair> {
        self.pairs.iter().filter(move |p| p.query == query)
    }
}

fn generate_queries(catalog: &Catalog, n: usize, rng: &mut StdRng) -> Vec<GeneratedQuery> {
    let mut queries = Vec::with_capacity(n);
    let n_cats = catalog.categories.len();
    while queries.len() < n {
        // Zipf-ish category pick: flagships (low ids) get more traffic.
        let cat_id = zipf(rng, n_cats);
        let cat = catalog.category(cat_id);
        if cat.brand_ids.is_empty() {
            continue;
        }
        let roll: f64 = rng.gen();
        let q = if roll < 0.28 {
            // Hard audience query: "<query_term> for <who>".
            let aud_id = rng.gen_range(0..catalog.audiences.len());
            let aud = catalog.audience(aud_id);
            let mut tokens = vec![pick(rng, &cat.query_terms)];
            tokens.extend(aud.query_phrase.iter().cloned());
            GeneratedQuery {
                tokens,
                category: cat_id,
                brand: None,
                audience: Some(aud_id),
                attr: None,
                kind: QueryKind::HardAudience,
                frequency: 0,
            }
        } else if roll < 0.48 {
            // Brand query, preferring the colloquial alias when one exists.
            let brand_id = cat.brand_ids[rng.gen_range(0..cat.brand_ids.len())];
            let brand = catalog.brand(brand_id);
            let (word, kind) = if !brand.aliases.is_empty() && rng.gen_bool(0.7) {
                (pick(rng, &brand.aliases), QueryKind::BrandAlias)
            } else {
                (brand.formal.clone(), QueryKind::Standard)
            };
            GeneratedQuery {
                tokens: vec![word, pick(rng, &cat.query_terms)],
                category: cat_id,
                brand: Some(brand_id),
                audience: None,
                attr: None,
                kind,
                frequency: 0,
            }
        } else if roll < 0.56 {
            // Bare polysemous/brand token.
            let brand_id = cat.brand_ids[rng.gen_range(0..cat.brand_ids.len())];
            let brand = catalog.brand(brand_id);
            let word = if brand.aliases.is_empty() {
                brand.formal.clone()
            } else {
                pick(rng, &brand.aliases)
            };
            GeneratedQuery {
                tokens: vec![word],
                category: cat_id,
                brand: Some(brand_id),
                audience: None,
                attr: None,
                kind: QueryKind::Polysemous,
                frequency: 0,
            }
        } else {
            // Standard query: [category term] with optional attr / brand.
            let mut tokens = Vec::new();
            let mut brand = None;
            if rng.gen_bool(0.35) {
                let brand_id = cat.brand_ids[rng.gen_range(0..cat.brand_ids.len())];
                tokens.push(catalog.brand(brand_id).formal.clone());
                brand = Some(brand_id);
            }
            let mut attr = None;
            if rng.gen_bool(0.4) && !cat.attrs.is_empty() {
                let a = pick(rng, &cat.attrs);
                tokens.push(a.clone());
                attr = Some(a);
            }
            tokens.push(pick(rng, &cat.query_terms));
            GeneratedQuery {
                tokens,
                category: cat_id,
                brand,
                audience: None,
                attr,
                kind: QueryKind::Standard,
                frequency: 0,
            }
        };
        // Dedup identical token sequences (they'd be the same log query).
        if !queries.iter().any(|e: &GeneratedQuery| e.tokens == q.tokens) {
            queries.push(q);
        }
    }
    // Zipf head/tail frequency skew: earlier queries are heads. The head
    // half of distinct queries carries >80% of sessions, mirroring the
    // paper's "top queries cover more than 80% of traffic" regime.
    for (rank, q) in queries.iter_mut().enumerate() {
        let head = (500.0 / (1.0 + rank as f64)).floor() as u32;
        q.frequency = head.max(1) + rng.gen_range(0..2);
    }
    queries
}

fn simulate_clicks(
    catalog: &Catalog,
    queries: &[GeneratedQuery],
    config: &LogConfig,
    rng: &mut StdRng,
) -> (Vec<ClickPair>, u64) {
    let mut sessions = 0u64;
    let mut pairs: Vec<Vec<(usize, u32)>> = vec![Vec::new(); queries.len()];
    for (qi, q) in queries.iter().enumerate() {
        // Candidate items with ground-truth relevance weights.
        let mut cands: Vec<(usize, f32)> = catalog
            .items
            .iter()
            .map(|item| {
                let rel = catalog.relevance(
                    item,
                    q.category,
                    q.brand,
                    q.audience,
                    q.attr.as_deref(),
                );
                (item.id, rel * rel * item.popularity)
            })
            .filter(|&(_, w)| w > 0.0)
            .collect();
        let total: f32 = cands.iter().map(|&(_, w)| w).sum();
        if cands.is_empty() || total <= 0.0 {
            continue;
        }
        for c in cands.iter_mut() {
            c.1 /= total;
        }
        for _ in 0..q.frequency {
            sessions += 1;
            let n_clicks = 1 + rng.gen_range(0.0..config.clicks_per_session * 2.0 - 1.0) as u32;
            for _ in 0..n_clicks {
                let item = if rng.gen_bool(config.noise) {
                    rng.gen_range(0..catalog.items.len())
                } else {
                    sample_weighted(rng, &cands)
                };
                match pairs[qi].iter_mut().find(|(i, _)| *i == item) {
                    Some(slot) => slot.1 += 1,
                    None => pairs[qi].push((item, 1)),
                }
            }
        }
    }
    let mut out = Vec::new();
    for (qi, items) in pairs.into_iter().enumerate() {
        for (item, clicks) in items {
            if clicks >= config.min_clicks {
                out.push(ClickPair { query: qi, item, clicks });
            }
        }
    }
    (out, sessions)
}

/// Multi-query session generation parameters.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Number of sessions to generate.
    pub sessions: usize,
    /// Minimum queries per session.
    pub min_len: usize,
    /// Maximum queries per session (inclusive).
    pub max_len: usize,
    /// Probability each follow-up query *drifts* to a different category
    /// instead of refining the current intent.
    pub drift: f64,
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig { sessions: 200, min_len: 2, max_len: 5, drift: 0.3, seed: 47 }
    }
}

/// Multi-query sessions with drifting intent over a click log's query
/// pool: each session is a sequence of indices into [`ClickLog::queries`].
///
/// The opening query is drawn frequency-weighted — head queries open
/// sessions far more often, matching the log's traffic skew. Each
/// follow-up then either **refines** the current intent (a different
/// query of the same category: the user rephrasing, narrowing, switching
/// register) or, with probability `drift`, **drifts** to a different
/// category (the user moving on to a new shopping goal mid-session).
/// Session-aware rewriters condition on the preceding queries; the drift
/// split is what makes that conditioning non-trivial — context helps on
/// refinements and must not hurt after a drift.
pub fn generate_sessions(log: &ClickLog, config: &SessionConfig) -> Vec<Vec<usize>> {
    assert!(config.min_len >= 1 && config.min_len <= config.max_len, "bad session length range");
    let n_cats = log.catalog.categories.len();
    let mut by_category: Vec<Vec<usize>> = vec![Vec::new(); n_cats];
    for (qi, q) in log.queries.iter().enumerate() {
        by_category[q.category].push(qi);
    }
    // Frequency-weighted opener distribution.
    let weights: Vec<(usize, f32)> =
        log.queries.iter().enumerate().map(|(qi, q)| (qi, q.frequency as f32)).collect();
    let total: f32 = weights.iter().map(|&(_, w)| w).sum();
    let openers: Vec<(usize, f32)> =
        weights.into_iter().map(|(qi, w)| (qi, w / total)).collect();

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sessions = Vec::with_capacity(config.sessions);
    for _ in 0..config.sessions {
        let len = config.min_len + rng.gen_range(0..config.max_len - config.min_len + 1);
        let mut session = vec![sample_weighted(&mut rng, &openers)];
        while session.len() < len {
            let cur = *session.last().expect("session is non-empty");
            let cur_cat = log.queries[cur].category;
            let drifted = rng.gen_bool(config.drift);
            let pool: &[usize] = if drifted {
                // Drift: a random *other* non-empty category.
                let others: Vec<usize> = (0..n_cats)
                    .filter(|&c| c != cur_cat && !by_category[c].is_empty())
                    .collect();
                if others.is_empty() {
                    &by_category[cur_cat]
                } else {
                    &by_category[others[rng.gen_range(0..others.len())]]
                }
            } else {
                &by_category[cur_cat]
            };
            let next = pool[rng.gen_range(0..pool.len())];
            if next == cur && pool.len() > 1 {
                continue; // re-draw: an exact repeat is not a reformulation
            }
            session.push(next);
        }
        sessions.push(session);
    }
    sessions
}

fn pick(rng: &mut StdRng, xs: &[String]) -> String {
    xs[rng.gen_range(0..xs.len())].clone()
}

fn zipf(rng: &mut StdRng, n: usize) -> usize {
    // Weight 1/(k+1); cheap inverse sampling over a small n.
    let weights: Vec<f64> = (0..n).map(|k| 1.0 / (k as f64 + 1.0)).collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen::<f64>() * total;
    for (k, w) in weights.iter().enumerate() {
        draw -= w;
        if draw <= 0.0 {
            return k;
        }
    }
    n - 1
}

fn sample_weighted(rng: &mut StdRng, cands: &[(usize, f32)]) -> usize {
    let mut draw = rng.gen::<f32>();
    for &(id, w) in cands {
        draw -= w;
        if draw <= 0.0 {
            return id;
        }
    }
    cands.last().expect("non-empty candidates").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> ClickLog {
        ClickLog::generate(&LogConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = log();
        let b = log();
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.sessions, b.sessions);
    }

    #[test]
    fn min_clicks_filter_holds() {
        let l = log();
        assert!(l.pairs.iter().all(|p| p.clicks >= 2));
        assert!(!l.pairs.is_empty());
    }

    #[test]
    fn query_kinds_are_all_represented() {
        let l = log();
        for kind in [
            QueryKind::Standard,
            QueryKind::HardAudience,
            QueryKind::BrandAlias,
            QueryKind::Polysemous,
        ] {
            assert!(
                l.queries.iter().any(|q| q.kind == kind),
                "kind {kind:?} missing"
            );
        }
    }

    #[test]
    fn hard_audience_queries_use_query_register() {
        let l = log();
        for q in l.queries.iter().filter(|q| q.kind == QueryKind::HardAudience) {
            assert!(q.tokens.contains(&"for".to_string()));
            assert!(q.audience.is_some());
        }
    }

    #[test]
    fn clicks_are_mostly_relevant() {
        let l = log();
        let mut relevant = 0u32;
        let mut total = 0u32;
        for p in &l.pairs {
            let q = &l.queries[p.query];
            let item = l.catalog.item(p.item);
            let rel =
                l.catalog
                    .relevance(item, q.category, q.brand, q.audience, q.attr.as_deref());
            if rel > 0.3 {
                relevant += p.clicks;
            }
            total += p.clicks;
        }
        assert!(
            relevant as f32 / total as f32 > 0.85,
            "only {relevant}/{total} clicks relevant"
        );
    }

    #[test]
    fn head_queries_dominate_sessions() {
        let l = log();
        assert!(l.queries[0].frequency > l.queries[l.queries.len() - 1].frequency);
    }

    #[test]
    fn queries_are_unique() {
        let l = log();
        let mut texts: Vec<String> = l.queries.iter().map(|q| q.text()).collect();
        let before = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(before, texts.len());
    }

    #[test]
    fn sessions_are_deterministic_and_length_bounded() {
        let l = log();
        let cfg = SessionConfig::default();
        let a = generate_sessions(&l, &cfg);
        let b = generate_sessions(&l, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.sessions);
        for s in &a {
            assert!(s.len() >= cfg.min_len && s.len() <= cfg.max_len);
            for &qi in s {
                assert!(qi < l.queries.len());
            }
        }
    }

    #[test]
    fn zero_drift_sessions_stay_in_category() {
        let l = log();
        let cfg = SessionConfig { drift: 0.0, ..SessionConfig::default() };
        for s in generate_sessions(&l, &cfg) {
            let cat = l.queries[s[0]].category;
            assert!(s.iter().all(|&qi| l.queries[qi].category == cat));
        }
    }

    #[test]
    fn drift_produces_category_changes() {
        let l = log();
        let cfg = SessionConfig { drift: 0.8, sessions: 100, ..SessionConfig::default() };
        let sessions = generate_sessions(&l, &cfg);
        let drifted = sessions
            .iter()
            .filter(|s| {
                s.windows(2).any(|w| l.queries[w[0]].category != l.queries[w[1]].category)
            })
            .count();
        assert!(drifted > 50, "only {drifted}/100 sessions drifted at drift=0.8");
    }

    #[test]
    fn follow_ups_are_reformulations_not_repeats() {
        let l = log();
        let cfg = SessionConfig { drift: 0.0, sessions: 100, ..SessionConfig::default() };
        for s in generate_sessions(&l, &cfg) {
            for w in s.windows(2) {
                // A category can hold a single query; only multi-query
                // pools must avoid immediate repeats.
                let pool = l.queries.iter().filter(|q| q.category == l.queries[w[0]].category);
                if pool.count() > 1 {
                    assert_ne!(w[0], w[1], "immediate repeat in session {s:?}");
                }
            }
        }
    }
}
