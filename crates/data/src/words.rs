//! Deterministic pseudo-word generation for the procedural part of the
//! catalog. Words are pronounceable syllable chains, unique per generator,
//! so generated corpora are readable in the example tables and stable
//! across runs with the same seed.

use std::collections::HashSet;

use qrw_tensor::rng::StdRng;

const ONSETS: &[&str] = &[
    "b", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "ch",
    "sh", "st", "br", "kr",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ou"];

/// Generates unique pronounceable pseudo-words.
pub struct WordMaker {
    rng: StdRng,
    used: HashSet<String>,
}

impl WordMaker {
    pub fn new(rng: StdRng) -> Self {
        WordMaker { rng, used: HashSet::new() }
    }

    /// A fresh word of `syllables` syllables, never returned before.
    pub fn word(&mut self, syllables: usize) -> String {
        assert!(syllables > 0, "word needs at least one syllable");
        loop {
            let mut w = String::new();
            for _ in 0..syllables {
                w.push_str(ONSETS[self.rng.gen_range(0..ONSETS.len())]);
                w.push_str(VOWELS[self.rng.gen_range(0..VOWELS.len())]);
            }
            if self.used.insert(w.clone()) {
                return w;
            }
        }
    }

    /// A fresh alphanumeric model code like `x78s`.
    pub fn model_code(&mut self) -> String {
        loop {
            let letter = (b'a' + self.rng.gen_range(0..26u8)) as char;
            let num = self.rng.gen_range(10..100u32);
            let suffix = ["", "s", "x", "pro", "plus"][self.rng.gen_range(0..5)];
            let w = format!("{letter}{num}{suffix}");
            if self.used.insert(w.clone()) {
                return w;
            }
        }
    }

    /// Marks an externally-chosen word as used so procedural words never
    /// collide with the hand-written flagship vocabulary.
    pub fn reserve(&mut self, word: &str) {
        self.used.insert(word.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_unique_and_deterministic() {
        let mut a = WordMaker::new(StdRng::seed_from_u64(1));
        let mut b = WordMaker::new(StdRng::seed_from_u64(1));
        let wa: Vec<String> = (0..50).map(|_| a.word(2)).collect();
        let wb: Vec<String> = (0..50).map(|_| b.word(2)).collect();
        assert_eq!(wa, wb);
        let set: HashSet<&String> = wa.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn reserved_words_are_never_generated() {
        let mut m = WordMaker::new(StdRng::seed_from_u64(2));
        // Reserve every 1-syllable word... too many; instead reserve one
        // specific next word by replaying.
        let mut probe = WordMaker::new(StdRng::seed_from_u64(2));
        let next = probe.word(2);
        m.reserve(&next);
        assert_ne!(m.word(2), next);
    }

    #[test]
    fn model_codes_look_alphanumeric() {
        let mut m = WordMaker::new(StdRng::seed_from_u64(3));
        let code = m.model_code();
        assert!(code.chars().next().unwrap().is_ascii_alphabetic());
        assert!(code.chars().any(|c| c.is_ascii_digit()));
    }
}
