//! Dataset statistics — the reproduction of Table I.

use std::collections::HashSet;

use crate::generator::ClickLog;

/// The Table I statistics row.
#[derive(Clone, Debug, PartialEq)]
pub struct DataStats {
    pub query_item_pairs: usize,
    pub search_sessions: u64,
    pub vocab_size: usize,
    pub avg_query_words: f64,
    pub avg_title_words: f64,
}

impl DataStats {
    /// Computes statistics over the generated click log.
    pub fn compute(log: &ClickLog) -> Self {
        let mut vocab: HashSet<&str> = HashSet::new();
        let mut query_words = 0usize;
        let mut query_count = 0usize;
        for pair in &log.pairs {
            let q = &log.queries[pair.query];
            query_words += q.tokens.len();
            query_count += 1;
            for t in &q.tokens {
                vocab.insert(t);
            }
        }
        let mut title_words = 0usize;
        let mut title_count = 0usize;
        let mut seen_items: HashSet<usize> = HashSet::new();
        for pair in &log.pairs {
            if seen_items.insert(pair.item) {
                let title = &log.catalog.item(pair.item).title_tokens;
                title_words += title.len();
                title_count += 1;
                for t in title {
                    vocab.insert(t);
                }
            }
        }
        DataStats {
            query_item_pairs: log.pairs.len(),
            search_sessions: log.sessions,
            vocab_size: vocab.len(),
            avg_query_words: query_words as f64 / query_count.max(1) as f64,
            avg_title_words: title_words as f64 / title_count.max(1) as f64,
        }
    }
}

impl std::fmt::Display for DataStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "# Query-Item Pairs : {}", self.query_item_pairs)?;
        writeln!(f, "# Search Sessions  : {}", self.search_sessions)?;
        writeln!(f, "Vocab Size         : {}", self.vocab_size)?;
        writeln!(f, "# Avg Query Words  : {:.2}", self.avg_query_words)?;
        write!(f, "# Avg Title Words  : {:.2}", self.avg_title_words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::LogConfig;

    #[test]
    fn stats_shape_matches_paper_regime() {
        let log = ClickLog::generate(&LogConfig::default());
        let s = DataStats::compute(&log);
        assert!(s.query_item_pairs > 100);
        assert!(s.search_sessions > 500);
        assert!(s.vocab_size > 50);
        // The paper's regime: queries ~6 words, titles ~50. Scaled down,
        // the *ordering* must hold with a clear margin.
        assert!(s.avg_title_words > s.avg_query_words * 2.0);
        assert!(s.avg_query_words >= 1.0 && s.avg_query_words < 6.0);
    }

    #[test]
    fn display_has_all_rows() {
        let log = ClickLog::generate(&LogConfig::tiny());
        let text = DataStats::compute(&log).to_string();
        for needle in ["Pairs", "Sessions", "Vocab", "Query Words", "Title Words"] {
            assert!(text.contains(needle));
        }
    }
}
