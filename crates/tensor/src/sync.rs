//! Poison-recovering locks over `std::sync`.
//!
//! Drop-in for the `parking_lot` API surface the repo used (`read`/`write`/
//! `lock` returning guards directly). A panic while a writer holds a std
//! lock poisons it; for this workspace's data (parameter tensors, rewrite
//! caches, health counters) the right response is to keep serving with the
//! last-written state rather than propagate the panic to every future
//! request, so the guards recover from poisoning instead of unwrapping.

use std::fmt;
use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose accessors never panic on poison.
#[derive(Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

/// A mutex whose accessor never panics on poison.
#[derive(Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A poisoned std mutex would panic here; the wrapper recovers.
        assert_eq!(*m.lock(), 1);
        *m.lock() = 2;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_recovers_from_poison() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(l.read().len(), 2);
    }
}
