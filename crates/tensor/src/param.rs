//! Trainable parameters and parameter collections.
//!
//! A [`Param`] is a shared, mutable tensor plus its accumulated gradient.
//! Model layers hold `Param` handles; the autodiff tape records which
//! parameters participated in a forward pass and flushes gradients into them
//! during the backward pass. Optimizers then walk a [`ParamSet`] and update
//! values in place.

use std::sync::Arc;

use crate::sync::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::tensor::Tensor;

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(0);

#[derive(Debug)]
struct ParamInner {
    name: String,
    value: Tensor,
    grad: Tensor,
}

/// A shared trainable parameter.
///
/// Cloning a `Param` clones the *handle*: both clones refer to the same
/// underlying value and gradient. Parameters are identified by a unique id so
/// optimizers can keep per-parameter state (e.g. Adam moments) across steps.
#[derive(Clone, Debug)]
pub struct Param {
    id: u64,
    inner: Arc<RwLock<ParamInner>>,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let (rows, cols) = value.shape();
        Param {
            id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed),
            inner: Arc::new(RwLock::new(ParamInner {
                name: name.into(),
                value,
                grad: Tensor::zeros(rows, cols),
            })),
        }
    }

    /// Globally unique id of this parameter.
    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn name(&self) -> String {
        self.inner.read().name.clone()
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.inner.read().value.shape()
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.inner.read().value.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the current value.
    pub fn value(&self) -> Tensor {
        self.inner.read().value.clone()
    }

    /// Copies out the accumulated gradient.
    pub fn grad(&self) -> Tensor {
        self.inner.read().grad.clone()
    }

    /// Runs `f` with a shared borrow of the value, without copying.
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.inner.read().value)
    }

    /// Replaces the value (shape must match).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.write();
        assert_eq!(inner.value.shape(), value.shape(), "set_value: shape mismatch");
        inner.value = value;
    }

    /// Accumulates `delta` into the gradient.
    pub fn accumulate_grad(&self, delta: &Tensor) {
        self.inner.write().grad.add_assign(delta);
    }

    /// Accumulates into a single gradient row (embedding scatter).
    pub fn accumulate_grad_row(&self, row: usize, delta: &[f32]) {
        let mut inner = self.inner.write();
        let slot = inner.grad.row_slice_mut(row);
        debug_assert_eq!(slot.len(), delta.len());
        for (g, d) in slot.iter_mut().zip(delta) {
            *g += d;
        }
    }

    /// Zeroes the accumulated gradient, keeping the allocation.
    pub fn zero_grad(&self) {
        self.inner.write().grad.fill_zero();
    }

    /// Applies an in-place update `value[i] += f(i, grad[i])` style closure.
    ///
    /// The closure receives `(value_slice, grad_slice)` and may mutate the
    /// value; used by optimizers to avoid copying.
    pub fn update(&self, f: impl FnOnce(&mut [f32], &[f32])) {
        let mut inner = self.inner.write();
        let ParamInner { value, grad, .. } = &mut *inner;
        f(value.data_mut(), grad.data());
    }

    /// L2 norm of the accumulated gradient.
    pub fn grad_norm(&self) -> f32 {
        self.inner.read().grad.norm()
    }

    /// Scales the accumulated gradient in place (for gradient clipping).
    pub fn scale_grad(&self, alpha: f32) {
        let mut inner = self.inner.write();
        for g in inner.grad.data_mut() {
            *g *= alpha;
        }
    }
}

/// An ordered collection of parameters (a model's trainable state).
#[derive(Clone, Debug, Default)]
pub struct ParamSet {
    params: Vec<Param>,
}

impl ParamSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers and returns a new parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> Param {
        let p = Param::new(name, value);
        self.params.push(p.clone());
        p
    }

    /// Registers an existing parameter handle.
    pub fn push(&mut self, param: Param) {
        self.params.push(param);
    }

    /// Appends all parameters of `other` (handles are shared, not copied).
    pub fn extend(&mut self, other: &ParamSet) {
        self.params.extend(other.params.iter().cloned());
    }

    pub fn iter(&self) -> impl Iterator<Item = &Param> {
        self.params.iter()
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(Param::len).sum()
    }

    pub fn zero_grads(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Global L2 norm over all gradients.
    pub fn global_grad_norm(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                let n = p.grad_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients so the global norm is at most `max_norm`.
    ///
    /// Returns the pre-clip norm.
    pub fn clip_grad_norm(&self, max_norm: f32) -> f32 {
        let norm = self.global_grad_norm();
        if norm > max_norm && norm > 0.0 {
            let scale = max_norm / norm;
            for p in &self.params {
                p.scale_grad(scale);
            }
        }
        norm
    }
}

impl<'a> IntoIterator for &'a ParamSet {
    type Item = &'a Param;
    type IntoIter = std::slice::Iter<'a, Param>;
    fn into_iter(self) -> Self::IntoIter {
        self.params.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_are_unique() {
        let a = Param::new("a", Tensor::zeros(1, 1));
        let b = Param::new("b", Tensor::zeros(1, 1));
        assert_ne!(a.id(), b.id());
        assert_eq!(a.id(), a.clone().id());
    }

    #[test]
    fn clone_shares_storage() {
        let a = Param::new("a", Tensor::scalar(1.0));
        let b = a.clone();
        a.set_value(Tensor::scalar(5.0));
        assert_eq!(b.value().item(), 5.0);
        b.accumulate_grad(&Tensor::scalar(2.0));
        assert_eq!(a.grad().item(), 2.0);
    }

    #[test]
    fn grad_accumulates_and_zeroes() {
        let p = Param::new("p", Tensor::zeros(2, 2));
        p.accumulate_grad(&Tensor::full(2, 2, 1.0));
        p.accumulate_grad(&Tensor::full(2, 2, 2.0));
        assert_eq!(p.grad().data(), &[3.0; 4]);
        p.zero_grad();
        assert_eq!(p.grad().data(), &[0.0; 4]);
    }

    #[test]
    fn accumulate_grad_row_scatters() {
        let p = Param::new("emb", Tensor::zeros(3, 2));
        p.accumulate_grad_row(1, &[1.0, 2.0]);
        p.accumulate_grad_row(1, &[1.0, 0.0]);
        let g = p.grad();
        assert_eq!(g.row_slice(0), &[0.0, 0.0]);
        assert_eq!(g.row_slice(1), &[2.0, 2.0]);
    }

    #[test]
    fn clip_grad_norm_scales_down_only_when_needed() {
        let mut set = ParamSet::new();
        let p = set.add("p", Tensor::zeros(1, 2));
        p.accumulate_grad(&Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = set.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((set.global_grad_norm() - 1.0).abs() < 1e-5);
        // Already below the cap: untouched.
        let pre2 = set.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((set.global_grad_norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn param_set_counts_scalars() {
        let mut set = ParamSet::new();
        set.add("a", Tensor::zeros(2, 3));
        set.add("b", Tensor::zeros(1, 4));
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_scalars(), 10);
    }
}
