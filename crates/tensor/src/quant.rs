//! Quantized (i8, per-row scaled) matrices and their integer microkernels.
//!
//! The distilled q2q student decodes through these kernels instead of the
//! f32 blocked-tile path in [`crate::tensor`]. The design choices are all
//! in service of two bars: speed (≥2× tokens/s over the f32 KV-cached
//! teacher) and bitwise determinism across runs *and* thread counts.
//!
//! * **Per-row symmetric scales.** A weight matrix is stored transposed
//!   (`d_out × d_in`) with one `f32` scale per output row:
//!   `w_q[j][i] = round(w[i][j] / scale_j)` clamped to `[-127, 127]`.
//!   Row-major transposed storage makes every inner product a contiguous
//!   `i8 · i8` dot.
//! * **Dequant-free inner loop.** Activations are quantized dynamically
//!   (one scale per input row), so the hot loop is pure integer
//!   multiply-accumulate — `i8 × i8 → i32` — with a single
//!   `acc * scale_x * scale_w + bias` epilogue per output element. No
//!   per-element dequantization, no f32 in the loop at all.
//! * **Determinism for free.** Integer addition is associative, so any
//!   chunking, vectorization, or row split across threads produces the
//!   same `i32` accumulator bit-for-bit; the f32 epilogue runs in a fixed
//!   per-element order. This is why the quantized path can be
//!   row-parallel without the care [`crate::tensor`] needs.
//! * **Explicit SIMD with a scalar twin.** On x86-64 with AVX2 the
//!   matvec and attention-score row loops run a `vpmovsxbw` +
//!   `vpmaddwd` kernel (sign-extend both operands to i16, multiply-add
//!   adjacent pairs into i32 lanes) selected by runtime feature
//!   detection; every other target runs the scalar loop. Both compute
//!   the same exact `i32` sum — pair sums of two `127 × 127` products
//!   are nowhere near `i32` range — so the dispatch never changes
//!   results, only speed. The scalar [`dot_i8`] stays the reference the
//!   property tests pin the SIMD path against.

use crate::tensor::{Tensor, PAR_MIN_WORK};

/// True when the AVX2 integer kernels are compiled in and the CPU
/// supports them (cached by the feature-detection macro).
#[inline]
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// AVX2 row kernels. Everything here computes bit-identical `i32`
/// accumulators to the scalar loops: `vpmaddwd` sums adjacent i16
/// product pairs into i32 lanes and integer addition is associative, so
/// only the summation order differs — which for exact integers is
/// invisible. The f32 epilogues run in the same fixed per-element order
/// as the scalar path.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// One 16-wide i8 · i8 chunk of both operands, sign-extended to i16
    /// and multiply-added into the i32 accumulator lanes.
    ///
    /// # Safety
    /// Requires AVX2; `a` and `b` must be readable for 16 bytes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn madd16(acc: __m256i, a: *const i8, b: *const i8) -> __m256i {
        let wa = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.cast()));
        let wb = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.cast()));
        _mm256_add_epi32(acc, _mm256_madd_epi16(wa, wb))
    }

    /// Horizontal sum of the eight i32 lanes.
    ///
    /// # Safety
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(acc: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_extracti128_si256(acc, 1), _mm256_castsi256_si128(acc));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// Integer dot product over `len` elements — exact, equal to the
    /// scalar loop.
    ///
    /// # Safety
    /// Requires AVX2; both pointers must be readable for `len` bytes.
    #[target_feature(enable = "avx2")]
    unsafe fn dot(a: *const i8, b: *const i8, len: usize) -> i32 {
        let chunks = len / 16;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            acc = madd16(acc, a.add(c * 16), b.add(c * 16));
        }
        let mut sum = hsum(acc);
        for i in chunks * 16..len {
            sum += i32::from(*a.add(i)) * i32::from(*b.add(i));
        }
        sum
    }

    /// The full matvec row loop: one dot + f32 epilogue per output row,
    /// entirely inside the `target_feature` region so nothing is paid
    /// per row but the kernel itself.
    ///
    /// # Safety
    /// Requires AVX2; `data` must hold `out.len()` rows of `cols` bytes
    /// and `xq` at least `cols` elements; `scales`/`bias` match
    /// `out.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec(
        data: &[i8],
        cols: usize,
        xq: &[i8],
        x_scale: f32,
        scales: &[f32],
        bias: Option<&[f32]>,
        out: &mut [f32],
    ) {
        for (j, slot) in out.iter_mut().enumerate() {
            let acc = dot(xq.as_ptr(), data.as_ptr().add(j * cols), cols);
            let mut y = acc as f32 * x_scale * scales[j];
            if let Some(b) = bias {
                y += b[j];
            }
            *slot = y;
        }
    }

    /// The attention-score loop against cached quantized keys.
    ///
    /// # Safety
    /// Requires AVX2; `data` must hold `scales.len()` rows of `cols`
    /// bytes and `q` at least `cols` elements.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scores(
        data: &[i8],
        cols: usize,
        q: &[i8],
        q_scale: f32,
        scales: &[f32],
        factor: f32,
        out: &mut Vec<f32>,
    ) {
        for (j, &ks) in scales.iter().enumerate() {
            let acc = dot(q.as_ptr(), data.as_ptr().add(j * cols), cols);
            out.push(acc as f32 * q_scale * ks * factor);
        }
    }
}

/// Quantizes one f32 row symmetrically to i8: `scale = max|x| / 127`,
/// `q = round(x / scale)` clamped to `[-127, 127]` (the -128 slot is
/// unused so negation is always exact). An all-zero row gets scale 0 and
/// an all-zero payload. Returns the scale.
pub fn quantize_row_into(x: &[f32], out: &mut Vec<i8>) -> f32 {
    out.clear();
    let max_abs = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.resize(x.len(), 0);
        return 0.0;
    }
    let scale = max_abs / 127.0;
    let inv = 127.0 / max_abs;
    out.extend(x.iter().map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8));
    scale
}

/// [`quantize_row_into`] returning a fresh buffer.
pub fn quantize_row(x: &[f32]) -> (Vec<i8>, f32) {
    let mut q = Vec::with_capacity(x.len());
    let scale = quantize_row_into(x, &mut q);
    (q, scale)
}

/// Integer dot product, `i8 × i8 → i32`, exact (no saturation: the
/// largest magnitude term is `127 × 127` and an i32 holds > 130k of
/// them). This is the scalar reference the AVX2 kernels are pinned
/// against: four independent accumulator lanes over 16-wide chunks —
/// integer addition is associative, so the lane split never changes the
/// result.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; 4];
    let chunks = a.len() / 16;
    for c in 0..chunks {
        let (pa, pb) = (&a[c * 16..c * 16 + 16], &b[c * 16..c * 16 + 16]);
        for l in 0..4 {
            let mut s = 0i32;
            for m in 0..4 {
                s += i32::from(pa[l * 4 + m]) * i32::from(pb[l * 4 + m]);
            }
            lanes[l] += s;
        }
    }
    let mut tail = 0i32;
    for i in chunks * 16..a.len() {
        tail += i32::from(a[i]) * i32::from(b[i]);
    }
    lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail
}

/// An i8 matrix with one f32 scale per row. For a linear layer the rows
/// are *output* features (the f32 weight transposed), so the matvec
/// inner loop reads both operands contiguously.
#[derive(Clone, Debug, PartialEq)]
pub struct QuantizedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes each row of `t` independently.
    pub fn from_rows(t: &Tensor) -> Self {
        let (rows, cols) = t.shape();
        let mut data = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        let mut q = Vec::with_capacity(cols);
        for r in 0..rows {
            scales.push(quantize_row_into(t.row_slice(r), &mut q));
            data.extend_from_slice(&q);
        }
        QuantizedMatrix { rows, cols, data, scales }
    }

    /// Quantizes a linear-layer weight stored `(d_in, d_out)` into the
    /// transposed `(d_out, d_in)` layout: row `j` holds output feature
    /// `j`'s weights, scaled per output feature.
    pub fn from_weight(w: &Tensor) -> Self {
        let (d_in, d_out) = w.shape();
        let mut col = vec![0.0f32; d_in];
        let mut data = Vec::with_capacity(d_in * d_out);
        let mut scales = Vec::with_capacity(d_out);
        let mut q = Vec::with_capacity(d_in);
        for j in 0..d_out {
            for (i, slot) in col.iter_mut().enumerate() {
                *slot = w.get(i, j);
            }
            scales.push(quantize_row_into(&col, &mut q));
            data.extend_from_slice(&q);
        }
        QuantizedMatrix { rows: d_out, cols: d_in, data, scales }
    }

    /// Rebuilds a matrix from its serialized parts (see
    /// [`crate::serialize`]'s v3 records). Rejects mismatched lengths and
    /// non-finite or negative scales.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        data: Vec<i8>,
        scales: Vec<f32>,
    ) -> Result<Self, String> {
        let n = rows.checked_mul(cols).ok_or("rows * cols overflows")?;
        if data.len() != n {
            return Err(format!("payload length {} != {rows}x{cols}", data.len()));
        }
        if scales.len() != rows {
            return Err(format!("{} scales for {rows} rows", scales.len()));
        }
        if let Some(s) = scales.iter().find(|s| !s.is_finite() || **s < 0.0) {
            return Err(format!("invalid row scale {s}"));
        }
        Ok(QuantizedMatrix { rows, cols, data, scales })
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw i8 payload, row-major.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The f32 matrix this quantization represents (testing / error
    /// analysis; never on the serving path).
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let s = self.scales[r];
            for (o, &q) in out.row_slice_mut(r).iter_mut().zip(self.row(r)) {
                *o = f32::from(q) * s;
            }
        }
        out
    }

    /// `y = q(x) · Wᵀ + bias` for one activation row already quantized
    /// to `(xq, x_scale)`. The inner loop is integer-only; each output
    /// element pays one f32 multiply-add epilogue. Dispatches to the
    /// AVX2 row kernel when available — bit-identical by construction.
    pub fn matvec_quantized(&self, xq: &[i8], x_scale: f32, bias: Option<&[f32]>, out: &mut [f32]) {
        assert_eq!(xq.len(), self.cols, "input width mismatch");
        assert_eq!(out.len(), self.rows, "output width mismatch");
        if let Some(b) = bias {
            assert_eq!(b.len(), self.rows, "bias width mismatch");
        }
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: AVX2 verified at runtime; the asserts above pin
            // every slice length the kernel reads.
            unsafe {
                avx2::matvec(&self.data, self.cols, xq, x_scale, &self.scales, bias, out);
            }
            return;
        }
        for (j, slot) in out.iter_mut().enumerate() {
            let acc = dot_i8(xq, self.row(j));
            let mut y = acc as f32 * x_scale * self.scales[j];
            if let Some(b) = bias {
                y += b[j];
            }
            *slot = y;
        }
    }

    /// `Y = q(X) · Wᵀ + bias` over all rows of `x`, quantizing each
    /// activation row dynamically. Row count above the parallel work
    /// threshold splits rows across threads — bitwise identical to the
    /// serial result because each output row's computation is
    /// self-contained and the inner accumulation is integer.
    pub fn matmul(&self, x: &Tensor, bias: Option<&[f32]>) -> Tensor {
        let threads = self.matmul_threads(x.rows());
        self.matmul_with_threads(x, bias, threads)
    }

    fn matmul_threads(&self, m: usize) -> usize {
        let work = m * self.rows * self.cols;
        if m < 2 || work < PAR_MIN_WORK {
            return 1;
        }
        std::thread::available_parallelism().map_or(1, |p| p.get()).min(m)
    }

    /// [`QuantizedMatrix::matmul`] with an explicit thread count — the
    /// determinism property tests drive 1 vs N directly through this.
    pub fn matmul_with_threads(&self, x: &Tensor, bias: Option<&[f32]>, threads: usize) -> Tensor {
        let m = x.rows();
        assert_eq!(x.cols(), self.cols, "input width mismatch");
        let mut out = Tensor::zeros(m, self.rows);
        let run_rows = |rows: std::ops::Range<usize>, out_rows: &mut [f32]| {
            let mut xq = Vec::with_capacity(self.cols);
            for (chunk, r) in out_rows.chunks_mut(self.rows).zip(rows) {
                let s = quantize_row_into(x.row_slice(r), &mut xq);
                self.matvec_quantized(&xq, s, bias, chunk);
            }
        };
        if threads <= 1 || m < 2 {
            run_rows(0..m, out.data_mut());
            return out;
        }
        let threads = threads.min(m);
        let chunk_rows = m.div_ceil(threads);
        let mut slices: Vec<(usize, &mut [f32])> = Vec::with_capacity(threads);
        let mut rest = out.data_mut();
        let mut row0 = 0usize;
        while row0 < m {
            let take = chunk_rows.min(m - row0) * self.rows;
            let (head, tail) = rest.split_at_mut(take);
            slices.push((row0, head));
            rest = tail;
            row0 += chunk_rows;
        }
        std::thread::scope(|scope| {
            for (start, chunk) in slices {
                let rows = start..(start + chunk.len() / self.rows);
                let run = &run_rows;
                scope.spawn(move || run(rows, chunk));
            }
        });
        out
    }
}

/// A growable list of quantized rows — the student decoder's attention
/// key cache. Keys are quantized once when appended; every subsequent
/// attention score against them is an integer dot.
#[derive(Clone, Debug, Default)]
pub struct QuantizedRows {
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantizedRows {
    pub fn new(cols: usize) -> Self {
        QuantizedRows { cols, data: Vec::new(), scales: Vec::new() }
    }

    /// Quantizes each row of `t` (e.g. projected cross-attention keys).
    pub fn from_tensor(t: &Tensor) -> Self {
        let mut rows = QuantizedRows::new(t.cols());
        for r in 0..t.rows() {
            rows.push_row(t.row_slice(r));
        }
        rows
    }

    pub fn len(&self) -> usize {
        self.scales.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "row width mismatch");
        let mut q = Vec::with_capacity(self.cols);
        let s = quantize_row_into(row, &mut q);
        self.data.extend_from_slice(&q);
        self.scales.push(s);
    }

    pub fn row(&self, r: usize) -> &[i8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn scale(&self, r: usize) -> f32 {
        self.scales[r]
    }

    /// Attention scores of one quantized query against every cached key:
    /// `out[j] = (q · k_j) * q_scale * k_scale_j * factor`, ascending `j`
    /// (fixed order → deterministic f32 epilogue).
    pub fn scores_into(&self, q: &[i8], q_scale: f32, factor: f32, out: &mut Vec<f32>) {
        assert_eq!(q.len(), self.cols, "query width mismatch");
        out.clear();
        out.reserve(self.len());
        #[cfg(target_arch = "x86_64")]
        if avx2_available() {
            // SAFETY: AVX2 verified at runtime; the assert above pins
            // the query width, `data` holds `scales.len()` rows.
            unsafe {
                avx2::scores(&self.data, self.cols, q, q_scale, &self.scales, factor, out);
            }
            return;
        }
        for j in 0..self.len() {
            let acc = dot_i8(q, self.row(j));
            out.push(acc as f32 * q_scale * self.scales[j] * factor);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn quantize_row_bounds_error_by_half_step() {
        let x = [0.9f32, -0.4, 0.003, -1.2, 0.0];
        let (q, s) = quantize_row(&x);
        // Symmetric round-to-nearest: |x - q*s| <= scale/2 per element.
        for (&orig, &qi) in x.iter().zip(&q) {
            assert!((orig - f32::from(qi) * s).abs() <= s / 2.0 + 1e-7);
        }
    }

    #[test]
    fn zero_row_quantizes_to_zero_scale_and_payload() {
        let (q, s) = quantize_row(&[0.0, 0.0, -0.0]);
        assert_eq!(s, 0.0);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn dot_i8_matches_naive_for_all_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [0usize, 1, 15, 16, 17, 33, 64, 100] {
            let a: Vec<i8> = (0..len).map(|_| (rng.gen::<f32>() * 254.0 - 127.0) as i8).collect();
            let b: Vec<i8> = (0..len).map(|_| (rng.gen::<f32>() * 254.0 - 127.0) as i8).collect();
            let naive: i32 = a.iter().zip(&b).map(|(&x, &y)| i32::from(x) * i32::from(y)).sum();
            assert_eq!(dot_i8(&a, &b), naive, "len {len}");
        }
    }

    #[test]
    fn from_weight_is_transposed_from_rows() {
        let w = random_tensor(5, 3, 7);
        let qt = QuantizedMatrix::from_weight(&w);
        assert_eq!((qt.rows(), qt.cols()), (3, 5));
        let deq = qt.dequantize();
        for i in 0..5 {
            for j in 0..3 {
                assert!((deq.get(j, i) - w.get(i, j)).abs() <= qt.scales()[j] / 2.0 + 1e-7);
            }
        }
    }

    #[test]
    fn quantized_matmul_tracks_f32_matmul() {
        let x = random_tensor(4, 32, 11);
        let w = random_tensor(32, 16, 13);
        let exact = x.matmul(&w);
        let q = QuantizedMatrix::from_weight(&w);
        let approx = q.matmul(&x, None);
        assert_eq!(approx.shape(), exact.shape());
        for r in 0..4 {
            for c in 0..16 {
                let err = (approx.get(r, c) - exact.get(r, c)).abs();
                // Two quantizations of ~1%-step inputs over 32 terms.
                assert!(err < 0.05, "({r},{c}): {} vs {}", approx.get(r, c), exact.get(r, c));
            }
        }
    }

    #[test]
    fn matmul_bias_epilogue_adds_bias() {
        let x = random_tensor(2, 8, 17);
        let w = random_tensor(8, 4, 19);
        let bias = [1.0f32, -2.0, 0.5, 0.0];
        let q = QuantizedMatrix::from_weight(&w);
        let plain = q.matmul(&x, None);
        let biased = q.matmul(&x, Some(&bias));
        for r in 0..2 {
            for (c, &b) in bias.iter().enumerate() {
                assert_eq!(biased.get(r, c), plain.get(r, c) + b);
            }
        }
    }

    #[test]
    fn thread_split_is_bitwise_identical() {
        let x = random_tensor(32, 48, 23);
        let w = random_tensor(48, 24, 29);
        let q = QuantizedMatrix::from_weight(&w);
        let serial = q.matmul_with_threads(&x, None, 1);
        for threads in [2, 3, 4, 7] {
            let par = q.matmul_with_threads(&x, None, threads);
            assert_eq!(serial, par, "{threads} threads diverged");
        }
    }

    #[test]
    fn simd_dispatch_is_bitwise_identical_to_scalar_reference() {
        // Whatever kernel matvec/scores dispatch to on this machine, the
        // result must equal the scalar dot_i8 + fixed-order epilogue
        // exactly — aligned widths, ragged tails, and sub-chunk widths.
        for cols in [8usize, 16, 31, 32, 48, 100] {
            let w = random_tensor(cols, 20, cols as u64);
            let q = QuantizedMatrix::from_weight(&w);
            let x = random_tensor(1, cols, 1000 + cols as u64);
            let (xq, xs) = quantize_row(x.row_slice(0));
            let bias: Vec<f32> = (0..20).map(|i| i as f32 * 0.25 - 2.0).collect();
            let mut out = vec![0.0f32; 20];
            q.matvec_quantized(&xq, xs, Some(&bias), &mut out);
            for (j, &got) in out.iter().enumerate() {
                let want = dot_i8(&xq, q.row(j)) as f32 * xs * q.scales()[j] + bias[j];
                assert_eq!(got.to_bits(), want.to_bits(), "matvec cols {cols}, row {j}");
            }

            let keys = QuantizedRows::from_tensor(&random_tensor(9, cols, 7 + cols as u64));
            let mut scores = Vec::new();
            keys.scores_into(&xq, xs, 0.125, &mut scores);
            for (j, &got) in scores.iter().enumerate() {
                let want = dot_i8(&xq, keys.row(j)) as f32 * xs * keys.scale(j) * 0.125;
                assert_eq!(got.to_bits(), want.to_bits(), "scores cols {cols}, row {j}");
            }
        }
    }

    #[test]
    fn from_parts_validates() {
        assert!(QuantizedMatrix::from_parts(2, 2, vec![0; 4], vec![1.0, 1.0]).is_ok());
        assert!(QuantizedMatrix::from_parts(2, 2, vec![0; 3], vec![1.0, 1.0]).is_err());
        assert!(QuantizedMatrix::from_parts(2, 2, vec![0; 4], vec![1.0]).is_err());
        assert!(QuantizedMatrix::from_parts(2, 2, vec![0; 4], vec![1.0, f32::NAN]).is_err());
        assert!(QuantizedMatrix::from_parts(2, 2, vec![0; 4], vec![1.0, -1.0]).is_err());
        assert!(QuantizedMatrix::from_parts(usize::MAX, 2, vec![], vec![]).is_err());
    }

    #[test]
    fn quantized_rows_scores_match_manual_dots() {
        let k = random_tensor(5, 8, 31);
        let rows = QuantizedRows::from_tensor(&k);
        assert_eq!(rows.len(), 5);
        let (q, qs) = quantize_row(random_tensor(1, 8, 37).row_slice(0));
        let mut scores = Vec::new();
        rows.scores_into(&q, qs, 0.5, &mut scores);
        for (j, &got) in scores.iter().enumerate() {
            let expect = dot_i8(&q, rows.row(j)) as f32 * qs * rows.scale(j) * 0.5;
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn saturation_clamps_to_127_not_128() {
        // A row with one dominant value and a tiny opposite outlier:
        // the rounded magnitude of the dominant entry is exactly 127 and
        // nothing ever maps to -128 (negation stays exact).
        let (q, s) = quantize_row(&[10.0, -10.0, 1e-9]);
        assert_eq!(q[0], 127);
        assert_eq!(q[1], -127);
        assert!(s > 0.0);
        let extremes = [f32::MAX, -f32::MAX];
        let (q2, _) = quantize_row(&extremes);
        assert_eq!(q2, vec![127, -127]);
    }
}
