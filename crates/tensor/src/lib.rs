//! # qrw-tensor
//!
//! A minimal CPU tensor library with reverse-mode automatic differentiation,
//! built as the neural-network substrate for the reproduction of *"Query
//! Rewriting via Cycle-Consistent Translation for E-Commerce Search"*
//! (ICDE 2021).
//!
//! The paper's models are standard NMT encoder-decoders (transformer,
//! attention-RNN, GRU); this crate provides exactly the op set they need:
//!
//! * [`Tensor`] — dense row-major `f32` matrices with the usual kernels
//!   (matmul, softmax, layer norm building blocks).
//! * [`Tape`] / [`Var`] — an eager autodiff tape with a closed op set; every
//!   backward rule is finite-difference tested.
//! * [`Param`] / [`ParamSet`] — shared trainable parameters; gradients
//!   accumulate across tapes, which is what lets the cycle-consistency loss
//!   couple two separate models in one backward pass.
//! * [`optim`] — Adam and the Noam schedule, the paper's §IV-A training
//!   setup.
//! * [`quant`] — i8 per-row-scaled matrices with dequant-free integer
//!   microkernels (the distilled student's fast path).
//! * [`init`] — deterministic, seeded initializers.
//! * [`serialize`] — tiny binary checkpoints.
//! * [`rng`] — the in-repo SplitMix64 generator (hermetic builds: no
//!   external `rand`).
//! * [`sync`] — poison-recovering locks over `std::sync`.

pub mod init;
pub mod optim;
pub mod param;
pub mod quant;
pub mod rng;
pub mod serialize;
pub mod sync;
pub mod tape;
pub mod tensor;

pub use param::{Param, ParamSet};
pub use quant::{dot_i8, quantize_row, QuantizedMatrix, QuantizedRows};
pub use rng::StdRng;
pub use tape::{Gradients, Tape, Var};
pub use tensor::{log_sum_exp, Activation, Tensor, PAR_MIN_WORK};
