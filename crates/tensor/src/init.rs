//! Deterministic weight initialization.
//!
//! Every experiment in this reproduction is seeded, so all initializers take
//! an explicit RNG rather than pulling entropy from the environment.

use crate::rng::StdRng;

use crate::tensor::Tensor;

/// Uniform initialization in `[-limit, limit]`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, limit: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-limit..=limit)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform initialization: `limit = sqrt(6 / (fan_in + fan_out))`.
///
/// The standard choice for the linear and attention projections.
pub fn xavier(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, limit)
}

/// Embedding-table initialization: `N(0, 1/sqrt(dim))`-ish uniform range,
/// matching the transformer convention of scaling embeddings by `sqrt(d)`.
pub fn embedding(rng: &mut StdRng, vocab: usize, dim: usize) -> Tensor {
    let limit = 1.0 / (dim as f32).sqrt();
    uniform(rng, vocab, dim, limit)
}

/// All-zeros (biases).
pub fn zeros(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

/// All-ones (layer-norm gains).
pub fn ones(rows: usize, cols: usize) -> Tensor {
    Tensor::full(rows, cols, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = xavier(&mut StdRng::seed_from_u64(7), 4, 4);
        let b = xavier(&mut StdRng::seed_from_u64(7), 4, 4);
        assert_eq!(a, b);
        let c = xavier(&mut StdRng::seed_from_u64(8), 4, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_limit() {
        let t = xavier(&mut StdRng::seed_from_u64(1), 10, 20);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= limit + 1e-6));
        // Not degenerate.
        assert!(t.data().iter().any(|v| v.abs() > limit / 10.0));
    }

    #[test]
    fn ones_and_zeros() {
        assert!(zeros(2, 2).data().iter().all(|&v| v == 0.0));
        assert!(ones(2, 2).data().iter().all(|&v| v == 1.0));
    }
}
