//! Checkpoint serialization for parameter sets.
//!
//! A deliberately tiny binary format (no external schema). Version 2 — the
//! format this module writes — frames every record and the whole file with
//! CRC32 checksums so a torn or bit-flipped checkpoint is *rejected* with a
//! typed [`CheckpointError`] instead of being silently loaded as garbage
//! weights:
//!
//! ```text
//! magic "QRWT" | version u32 = 2 | record count u32
//! per record:   name_len u32 | name | rows u32 | cols u32 | f32 data …
//!               | record crc32 u32          (over the record's own bytes)
//! file trailer: crc32 u32                   (over every preceding byte)
//! ```
//!
//! Version 1 (the original unchecked layout, identical minus both CRC
//! layers) is still parsed for backward compatibility, with only bounds
//! checking — the explicit version gate below is the documented migration
//! path. Loading matches records by name and checks shapes, so a
//! checkpoint can be restored into a freshly-constructed model of the same
//! configuration. Non-finite payload values are rejected in either
//! version: a trained weight or Adam moment is always finite, so a NaN/Inf
//! in a checkpoint means corruption (or a diverged run) and must not load.

use std::collections::HashMap;

use crate::param::ParamSet;
use crate::quant::QuantizedMatrix;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"QRWT";
/// The checkpoint version this module writes for f32 parameter sets.
pub const VERSION: u32 = 2;
/// The legacy unchecked version this module still reads.
pub const VERSION_V1: u32 = 1;
/// The quantized-record version ([`save_quantized`] / [`parse_quantized`]).
/// Deliberately a *different* version under the same magic: a v2 reader
/// sees a quantized checkpoint as `UnsupportedVersion(3)` instead of
/// misinterpreting i8 payloads as f32 weights, and vice versa.
pub const VERSION_V3: u32 = 3;

/// Typed checkpoint failure. Every way a checkpoint buffer can be
/// unusable maps to a distinct variant, so callers (and the kill-point /
/// bit-flip fault-injection tests) can assert *why* a load failed rather
/// than string-matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Shorter than the smallest valid header.
    TooShort,
    /// The first four bytes are not `QRWT`.
    BadMagic,
    /// A version the invoked reader does not handle: [`parse`] reads
    /// v1/v2 (f32), [`parse_quantized`] reads v3 (i8) — never each
    /// other's.
    UnsupportedVersion(u32),
    /// Ran out of bytes mid-structure; the payload names which one.
    Truncated(&'static str),
    /// `rows * cols` overflows, or a length prefix exceeds the buffer.
    ShapeOverflow,
    /// A parameter name is not valid UTF-8.
    BadUtf8,
    /// A record's CRC32 does not match its bytes (bit flip / torn write).
    RecordChecksum { index: usize },
    /// The whole-file CRC32 trailer does not match.
    FileChecksum,
    /// A payload value is NaN or infinite.
    NonFinite { name: String },
    /// The model expects a parameter the checkpoint lacks.
    MissingParam(String),
    /// Same name, different shape.
    ShapeMismatch {
        name: String,
        checkpoint: (usize, usize),
        model: (usize, usize),
    },
    /// Trailing bytes after the file trailer (framing is exact in v2).
    TrailingBytes,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::TooShort => write!(f, "checkpoint too short"),
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (f32 reader: 1, 2; quantized reader: 3)"
                )
            }
            CheckpointError::Truncated(what) => write!(f, "truncated {what}"),
            CheckpointError::ShapeOverflow => write!(f, "parameter shape overflow"),
            CheckpointError::BadUtf8 => write!(f, "parameter name is not UTF-8"),
            CheckpointError::RecordChecksum { index } => {
                write!(f, "record {index} checksum mismatch (corrupt checkpoint)")
            }
            CheckpointError::FileChecksum => {
                write!(f, "file checksum mismatch (corrupt checkpoint)")
            }
            CheckpointError::NonFinite { name } => {
                write!(f, "non-finite value in parameter '{name}'")
            }
            CheckpointError::MissingParam(name) => {
                write!(f, "checkpoint is missing parameter '{name}'")
            }
            CheckpointError::ShapeMismatch { name, checkpoint, model } => write!(
                f,
                "shape mismatch for '{name}': checkpoint {checkpoint:?}, model {model:?}"
            ),
            CheckpointError::TrailingBytes => write!(f, "trailing bytes after checkpoint"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<CheckpointError> for std::io::Error {
    fn from(e: CheckpointError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e)
    }
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

fn crc_feed(mut c: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc_feed(0xFFFF_FFFF, bytes) ^ 0xFFFF_FFFF
}

/// FNV-1a 64-bit over `tag ∥ bytes`.
///
/// This exists because CRC32 cannot fingerprint CRC-sealed files. CRC is
/// linear over GF(2), and any message that *ends with its own CRC32*
/// (little-endian) — i.e. every well-formed sealed file like the v2
/// `QRWT` checkpoint — hashes to the fixed residue `0x2144DF1C`; by the
/// same linearity, any choice of initial register state gives equal
/// digests for equal-length sealed files regardless of their content. A
/// manifest fingerprinting such members with CRC32 would accept one
/// valid file swapped for another. FNV-1a's multiply is non-linear, so
/// it has no such degeneracy.
pub fn fnv1a64(tag: &[u8], bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in tag.iter().chain(bytes) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_u32_le(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Serializes all parameters of `params` into a v2 checkpoint buffer.
pub fn save(params: &ParamSet) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, params.len() as u32);
    let mut record = Vec::new();
    for p in params {
        record.clear();
        let name = p.name();
        let bytes = name.as_bytes();
        put_u32_le(&mut record, bytes.len() as u32);
        record.extend_from_slice(bytes);
        let v = p.value();
        put_u32_le(&mut record, v.rows() as u32);
        put_u32_le(&mut record, v.cols() as u32);
        for &x in v.data() {
            record.extend_from_slice(&x.to_le_bytes());
        }
        let rec_crc = crc32(&record);
        put_u32_le(&mut record, rec_crc);
        buf.extend_from_slice(&record);
    }
    let file_crc = crc32(&buf);
    put_u32_le(&mut buf, file_crc);
    buf
}

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() < n {
            return Err(CheckpointError::Truncated(what));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self, what: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_f32_le(&mut self, what: &'static str) -> Result<f32, CheckpointError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parses a checkpoint into `(name, tensor)` records, verifying CRCs for
/// v2 buffers and bounds for both versions. Corrupt input never yields
/// records — it yields a typed [`CheckpointError`].
pub fn parse(buf: &[u8]) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    if buf.len() < 12 {
        return Err(CheckpointError::TooShort);
    }
    let mut r = Reader { buf };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.get_u32_le("version")?;
    let checked = match version {
        VERSION_V1 => false,
        VERSION => true,
        other => return Err(CheckpointError::UnsupportedVersion(other)),
    };
    if checked {
        // Whole-file CRC first: a single flipped bit anywhere fails fast.
        if buf.len() < 16 {
            return Err(CheckpointError::Truncated("file trailer"));
        }
        let (body, trailer) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
        if crc32(body) != stored {
            return Err(CheckpointError::FileChecksum);
        }
    }
    let count = r.get_u32_le("record count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for index in 0..count {
        let record_start = buf.len() - r.remaining();
        let name_len = r.get_u32_le("record header")? as usize;
        if r.remaining() < name_len {
            return Err(CheckpointError::Truncated("parameter name"));
        }
        let name = String::from_utf8(r.take(name_len, "parameter name")?.to_vec())
            .map_err(|_| CheckpointError::BadUtf8)?;
        let rows = r.get_u32_le("record shape")? as usize;
        let cols = r.get_u32_le("record shape")? as usize;
        let n = rows.checked_mul(cols).ok_or(CheckpointError::ShapeOverflow)?;
        if r.remaining() < n.saturating_mul(4) {
            return Err(CheckpointError::Truncated("tensor data"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let x = r.get_f32_le("tensor data")?;
            if !x.is_finite() {
                return Err(CheckpointError::NonFinite { name });
            }
            data.push(x);
        }
        if checked {
            let record_end = buf.len() - r.remaining();
            let stored = r.get_u32_le("record checksum")?;
            if crc32(&buf[record_start..record_end]) != stored {
                return Err(CheckpointError::RecordChecksum { index });
            }
        }
        out.push((name, Tensor::from_vec(rows, cols, data)));
    }
    if checked && r.remaining() != 4 {
        // Exactly the file trailer must remain.
        return Err(if r.remaining() < 4 {
            CheckpointError::Truncated("file trailer")
        } else {
            CheckpointError::TrailingBytes
        });
    }
    Ok(out)
}

/// Restores parameter values by name into `params`.
///
/// Every parameter in `params` must have a same-shaped record in the
/// checkpoint; extra records are ignored.
pub fn load(params: &ParamSet, buf: &[u8]) -> Result<(), CheckpointError> {
    let records = parse(buf)?;
    let by_name: HashMap<&str, &Tensor> =
        records.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let name = p.name();
        let t = by_name
            .get(name.as_str())
            .ok_or_else(|| CheckpointError::MissingParam(name.clone()))?;
        if t.shape() != p.shape() {
            return Err(CheckpointError::ShapeMismatch {
                name,
                checkpoint: t.shape(),
                model: p.shape(),
            });
        }
        p.set_value((*t).clone());
    }
    Ok(())
}

/// Serializes named quantized matrices into a v3 checkpoint buffer.
///
/// Same CRC framing discipline as v2 (per-record + whole-file), new
/// record body:
///
/// ```text
/// magic "QRWT" | version u32 = 3 | record count u32
/// per record:   name_len u32 | name | rows u32 | cols u32
///               | f32 row scales (rows) … | i8 data (rows*cols) …
///               | record crc32 u32
/// file trailer: crc32 u32
/// ```
pub fn save_quantized(records: &[(&str, &QuantizedMatrix)]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, VERSION_V3);
    put_u32_le(&mut buf, records.len() as u32);
    let mut record = Vec::new();
    for (name, m) in records {
        record.clear();
        let bytes = name.as_bytes();
        put_u32_le(&mut record, bytes.len() as u32);
        record.extend_from_slice(bytes);
        put_u32_le(&mut record, m.rows() as u32);
        put_u32_le(&mut record, m.cols() as u32);
        for &s in m.scales() {
            record.extend_from_slice(&s.to_le_bytes());
        }
        record.extend(m.data().iter().map(|&q| q as u8));
        let rec_crc = crc32(&record);
        put_u32_le(&mut record, rec_crc);
        buf.extend_from_slice(&record);
    }
    let file_crc = crc32(&buf);
    put_u32_le(&mut buf, file_crc);
    buf
}

/// Parses a v3 quantized checkpoint into `(name, matrix)` records with
/// the same hostility as [`parse`]: CRCs verified first, every length
/// bounds-checked, scales must be finite and non-negative, framing must
/// be exact. v1/v2 buffers are rejected with
/// [`CheckpointError::UnsupportedVersion`] — an f32 checkpoint is never
/// reinterpreted as i8 payloads.
pub fn parse_quantized(buf: &[u8]) -> Result<Vec<(String, QuantizedMatrix)>, CheckpointError> {
    if buf.len() < 12 {
        return Err(CheckpointError::TooShort);
    }
    let mut r = Reader { buf };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.get_u32_le("version")?;
    if version != VERSION_V3 {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    if buf.len() < 16 {
        return Err(CheckpointError::Truncated("file trailer"));
    }
    let (body, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    if crc32(body) != stored {
        return Err(CheckpointError::FileChecksum);
    }
    let count = r.get_u32_le("record count")? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for index in 0..count {
        let record_start = buf.len() - r.remaining();
        let name_len = r.get_u32_le("record header")? as usize;
        if r.remaining() < name_len {
            return Err(CheckpointError::Truncated("parameter name"));
        }
        let name = String::from_utf8(r.take(name_len, "parameter name")?.to_vec())
            .map_err(|_| CheckpointError::BadUtf8)?;
        let rows = r.get_u32_le("record shape")? as usize;
        let cols = r.get_u32_le("record shape")? as usize;
        let n = rows.checked_mul(cols).ok_or(CheckpointError::ShapeOverflow)?;
        if r.remaining() < rows.saturating_mul(4).saturating_add(n) {
            return Err(CheckpointError::Truncated("quantized data"));
        }
        let mut scales = Vec::with_capacity(rows);
        for _ in 0..rows {
            let s = r.get_f32_le("row scales")?;
            if !s.is_finite() || s < 0.0 {
                return Err(CheckpointError::NonFinite { name });
            }
            scales.push(s);
        }
        let data: Vec<i8> = r.take(n, "quantized data")?.iter().map(|&b| b as i8).collect();
        let record_end = buf.len() - r.remaining();
        let stored = r.get_u32_le("record checksum")?;
        if crc32(&buf[record_start..record_end]) != stored {
            return Err(CheckpointError::RecordChecksum { index });
        }
        let matrix = QuantizedMatrix::from_parts(rows, cols, data, scales)
            .map_err(|_| CheckpointError::ShapeOverflow)?;
        out.push((name, matrix));
    }
    if r.remaining() != 4 {
        return Err(if r.remaining() < 4 {
            CheckpointError::Truncated("file trailer")
        } else {
            CheckpointError::TrailingBytes
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParamSet {
        let mut set = ParamSet::new();
        set.add("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        set.add("b", Tensor::row(vec![-1.5, 0.25]));
        set
    }

    /// The v1 writer, kept verbatim for compatibility tests.
    fn save_v1(params: &ParamSet) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32_le(&mut buf, VERSION_V1);
        put_u32_le(&mut buf, params.len() as u32);
        for p in params {
            let name = p.name();
            let bytes = name.as_bytes();
            put_u32_le(&mut buf, bytes.len() as u32);
            buf.extend_from_slice(bytes);
            let v = p.value();
            put_u32_le(&mut buf, v.rows() as u32);
            put_u32_le(&mut buf, v.cols() as u32);
            for &x in v.data() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
        buf
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = sample_set();
        let bytes = save(&src);
        let dst = sample_set();
        for p in &dst {
            p.set_value(Tensor::zeros(p.shape().0, p.shape().1));
        }
        load(&dst, &bytes).unwrap();
        for (a, b) in src.iter().zip(dst.iter()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn v1_checkpoints_still_load() {
        let src = sample_set();
        let bytes = save_v1(&src);
        let dst = sample_set();
        for p in &dst {
            p.set_value(Tensor::zeros(p.shape().0, p.shape().1));
        }
        load(&dst, &bytes).unwrap();
        for (a, b) in src.iter().zip(dst.iter()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&sample_set(), b"NOPE\0\0\0\0\0\0\0\0").unwrap_err();
        assert_eq!(err, CheckpointError::BadMagic);
    }

    #[test]
    fn rejects_unknown_version() {
        let mut bytes = save(&sample_set());
        bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
        let err = parse(&bytes).unwrap_err();
        assert_eq!(err, CheckpointError::UnsupportedVersion(7));
    }

    #[test]
    fn rejects_missing_param() {
        let mut partial = ParamSet::new();
        partial.add("w", Tensor::zeros(2, 2));
        let bytes = save(&partial);
        let err = load(&sample_set(), &bytes).unwrap_err();
        assert_eq!(err, CheckpointError::MissingParam("b".into()));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut other = ParamSet::new();
        other.add("w", Tensor::zeros(3, 3));
        other.add("b", Tensor::row(vec![0.0, 0.0]));
        let bytes = save(&other);
        let err = load(&sample_set(), &bytes).unwrap_err();
        assert!(matches!(err, CheckpointError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn rejects_truncation() {
        let bytes = save(&sample_set());
        let err = load(&sample_set(), &bytes[..bytes.len() - 3]).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Truncated(_) | CheckpointError::FileChecksum),
            "{err}"
        );
    }

    #[test]
    fn rejects_every_single_bit_flip() {
        let bytes = save(&sample_set());
        // Flipping any one bit anywhere must fail the file CRC (or an
        // earlier structural check) — never load silently.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    parse(&corrupt).is_err(),
                    "bit flip at byte {byte} bit {bit} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn rejects_non_finite_payload() {
        // Build a v2 buffer with a NaN and *valid* CRCs: the finiteness
        // check itself must fire, not the checksum.
        let mut set = ParamSet::new();
        set.add("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let mut bytes = save(&set);
        // Overwrite the second payload float (offset: 12 header + 4 name_len
        // + 1 name + 8 shape + 4 first float).
        let off = 12 + 4 + 1 + 8 + 4;
        bytes[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        // Re-seal both CRCs so only the NaN is "wrong".
        let rec_end = off + 4;
        let rec_crc = crc32(&bytes[12..rec_end]);
        bytes[rec_end..rec_end + 4].copy_from_slice(&rec_crc.to_le_bytes());
        let body_len = bytes.len() - 4;
        let file_crc = crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&file_crc.to_le_bytes());
        let err = parse(&bytes).unwrap_err();
        assert_eq!(err, CheckpointError::NonFinite { name: "w".into() });
    }

    fn sample_quant() -> Vec<(String, QuantizedMatrix)> {
        let a = QuantizedMatrix::from_rows(&Tensor::from_vec(2, 3, vec![0.5, -1.0, 0.25, 2.0, 0.0, -0.125]));
        let b = QuantizedMatrix::from_rows(&Tensor::row(vec![1.0, -1.0]));
        vec![("student.out".into(), a), ("student.ff".into(), b)]
    }

    #[test]
    fn quantized_roundtrip_is_exact() {
        let records = sample_quant();
        let refs: Vec<(&str, &QuantizedMatrix)> =
            records.iter().map(|(n, m)| (n.as_str(), m)).collect();
        let bytes = save_quantized(&refs);
        let back = parse_quantized(&bytes).unwrap();
        assert_eq!(back.len(), records.len());
        for ((n0, m0), (n1, m1)) in records.iter().zip(&back) {
            assert_eq!(n0, n1);
            assert_eq!(m0, m1);
        }
    }

    /// The version gate both ways: a v2 (f32) reader must reject a v3
    /// quantized checkpoint with a *typed* error, and the v3 reader must
    /// reject v1/v2 f32 files rather than reinterpret their payloads.
    #[test]
    fn version_gate_separates_f32_and_quantized_readers() {
        let records = sample_quant();
        let refs: Vec<(&str, &QuantizedMatrix)> =
            records.iter().map(|(n, m)| (n.as_str(), m)).collect();
        let v3 = save_quantized(&refs);
        assert_eq!(parse(&v3).unwrap_err(), CheckpointError::UnsupportedVersion(3));
        assert_eq!(load(&sample_set(), &v3).unwrap_err(), CheckpointError::UnsupportedVersion(3));

        let v2 = save(&sample_set());
        assert_eq!(parse_quantized(&v2).unwrap_err(), CheckpointError::UnsupportedVersion(2));
        let v1 = save_v1(&sample_set());
        assert_eq!(parse_quantized(&v1).unwrap_err(), CheckpointError::UnsupportedVersion(1));
        // And v1/v2 still load through the f32 reader (no regression).
        assert!(parse(&v1).is_ok());
        assert!(parse(&v2).is_ok());
    }

    #[test]
    fn quantized_rejects_every_single_bit_flip() {
        let records = sample_quant();
        let refs: Vec<(&str, &QuantizedMatrix)> =
            records.iter().map(|(n, m)| (n.as_str(), m)).collect();
        let bytes = save_quantized(&refs);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    parse_quantized(&corrupt).is_err(),
                    "bit flip at byte {byte} bit {bit} was silently accepted"
                );
            }
        }
    }

    #[test]
    fn quantized_rejects_hostile_structures() {
        // Truncation at every prefix length: typed error, never a panic.
        let records = sample_quant();
        let refs: Vec<(&str, &QuantizedMatrix)> =
            records.iter().map(|(n, m)| (n.as_str(), m)).collect();
        let bytes = save_quantized(&refs);
        for cut in 0..bytes.len() {
            assert!(parse_quantized(&bytes[..cut]).is_err(), "prefix {cut} accepted");
        }
        // A negative / non-finite scale with re-sealed CRCs must fail the
        // finiteness check itself, not the checksum.
        let m = QuantizedMatrix::from_rows(&Tensor::row(vec![1.0, 2.0]));
        let mut evil = save_quantized(&[("w", &m)]);
        let off = 12 + 4 + 1 + 8; // header, name_len, "w", rows+cols
        evil[off..off + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        let rec_end = evil.len() - 8; // record crc + file crc
        let rec_crc = crc32(&evil[12..rec_end]);
        evil[rec_end..rec_end + 4].copy_from_slice(&rec_crc.to_le_bytes());
        let body_len = evil.len() - 4;
        let file_crc = crc32(&evil[..body_len]);
        evil[body_len..].copy_from_slice(&file_crc.to_le_bytes());
        assert_eq!(
            parse_quantized(&evil).unwrap_err(),
            CheckpointError::NonFinite { name: "w".into() }
        );
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sealed_files_hit_the_crc_residue_but_fnv_distinguishes_them() {
        // Every sealed file ends with its own CRC32, so plain crc32 over
        // the whole file is the constant residue — for ANY content. This
        // is why manifests fingerprint members with FNV-1a, not CRC32.
        let seal = |payload: &[u8]| {
            let mut m = payload.to_vec();
            let c = crc32(&m);
            put_u32_le(&mut m, c);
            m
        };
        let a = seal(b"payload-A");
        let b = seal(b"payload-B");
        assert_eq!(crc32(&a), 0x2144_DF1C);
        assert_eq!(crc32(&a), crc32(&b), "residue degeneracy");
        // FNV-1a is non-linear: content matters again.
        assert_ne!(fnv1a64(b"tag", &a), fnv1a64(b"tag", &b));
        // Standard FNV-1a 64 check value, and tag ∥ bytes concatenation.
        assert_eq!(fnv1a64(b"", b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"ab", b"c"), fnv1a64(b"", b"abc"));
    }
}
