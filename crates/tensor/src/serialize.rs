//! Checkpoint serialization for parameter sets.
//!
//! A deliberately tiny binary format (no external schema): magic, version,
//! then `name / rows / cols / f32 data` records in parameter order. Loading
//! matches by name and checks shapes, so a checkpoint can be restored into a
//! freshly-constructed model of the same configuration.

use std::collections::HashMap;
use std::io;

use crate::param::ParamSet;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"QRWT";
const VERSION: u32 = 1;

fn put_u32_le(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Serializes all parameters of `params` into a checkpoint buffer.
pub fn save(params: &ParamSet) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    put_u32_le(&mut buf, VERSION);
    put_u32_le(&mut buf, params.len() as u32);
    for p in params {
        let name = p.name();
        let bytes = name.as_bytes();
        put_u32_le(&mut buf, bytes.len() as u32);
        buf.extend_from_slice(bytes);
        let v = p.value();
        put_u32_le(&mut buf, v.rows() as u32);
        put_u32_le(&mut buf, v.cols() as u32);
        for &x in v.data() {
            buf.extend_from_slice(&x.to_le_bytes());
        }
    }
    buf
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.buf.len() < n {
            return Err(bad("truncated checkpoint"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn get_u32_le(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_f32_le(&mut self) -> io::Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Parses a checkpoint into `(name, tensor)` records.
pub fn parse(buf: &[u8]) -> io::Result<Vec<(String, Tensor)>> {
    let mut r = Reader { buf };
    if r.remaining() < 12 {
        return Err(bad("checkpoint too short"));
    }
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(bad("bad checkpoint magic"));
    }
    let version = r.get_u32_le()?;
    if version != VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let count = r.get_u32_le()? as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        if r.remaining() < 4 {
            return Err(bad("truncated record header"));
        }
        let name_len = r.get_u32_le()? as usize;
        if r.remaining() < name_len + 8 {
            return Err(bad("truncated record"));
        }
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| bad("parameter name is not UTF-8"))?;
        let rows = r.get_u32_le()? as usize;
        let cols = r.get_u32_le()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| bad("parameter shape overflow"))?;
        if r.remaining() < n.saturating_mul(4) {
            return Err(bad("truncated tensor data"));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(r.get_f32_le()?);
        }
        out.push((name, Tensor::from_vec(rows, cols, data)));
    }
    Ok(out)
}

/// Restores parameter values by name into `params`.
///
/// Every parameter in `params` must have a same-shaped record in the
/// checkpoint; extra records are ignored.
pub fn load(params: &ParamSet, buf: &[u8]) -> io::Result<()> {
    let records = parse(buf)?;
    let by_name: HashMap<&str, &Tensor> =
        records.iter().map(|(n, t)| (n.as_str(), t)).collect();
    for p in params {
        let name = p.name();
        let t = by_name
            .get(name.as_str())
            .ok_or_else(|| bad(format!("checkpoint is missing parameter '{name}'")))?;
        if t.shape() != p.shape() {
            return Err(bad(format!(
                "shape mismatch for '{name}': checkpoint {:?}, model {:?}",
                t.shape(),
                p.shape()
            )));
        }
        p.set_value((*t).clone());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_set() -> ParamSet {
        let mut set = ParamSet::new();
        set.add("w", Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        set.add("b", Tensor::row(vec![-1.5, 0.25]));
        set
    }

    #[test]
    fn roundtrip_restores_values() {
        let src = sample_set();
        let bytes = save(&src);
        let dst = sample_set();
        for p in &dst {
            p.set_value(Tensor::zeros(p.shape().0, p.shape().1));
        }
        load(&dst, &bytes).unwrap();
        for (a, b) in src.iter().zip(dst.iter()) {
            assert_eq!(a.value(), b.value());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = load(&sample_set(), b"NOPE\0\0\0\0\0\0\0\0").unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_missing_param() {
        let mut partial = ParamSet::new();
        partial.add("w", Tensor::zeros(2, 2));
        let bytes = save(&partial);
        let err = load(&sample_set(), &bytes).unwrap_err();
        assert!(err.to_string().contains("missing parameter 'b'"));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut other = ParamSet::new();
        other.add("w", Tensor::zeros(3, 3));
        other.add("b", Tensor::row(vec![0.0, 0.0]));
        let bytes = save(&other);
        let err = load(&sample_set(), &bytes).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = save(&sample_set());
        let err = load(&sample_set(), &bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }
}
