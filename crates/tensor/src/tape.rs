//! Reverse-mode automatic differentiation on a tape.
//!
//! A [`Tape`] records every tensor operation of one forward pass as a node in
//! a flat, topologically-ordered arena. [`Tape::backward`] walks the arena in
//! reverse, propagating gradients to inputs and flushing gradients of
//! [`Param`] leaves into the parameters themselves (where an optimizer picks
//! them up).
//!
//! Values are computed eagerly at op-construction time, so shape errors
//! surface at the faulty call site. The op set is deliberately closed (an
//! enum, not trait objects): each backward rule lives in one `match` arm and
//! every rule is covered by a finite-difference test in `tests/gradcheck.rs`.

use std::cell::RefCell;

use crate::param::Param;
use crate::tensor::Tensor;

/// A handle to a node on a [`Tape`]. Cheap to copy; tied to the tape's
/// lifetime so handles cannot outlive the recorded pass.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    tape: &'t Tape,
    idx: usize,
}

enum Op {
    /// A constant input; no gradient flows.
    Const,
    /// A full trainable parameter; gradient flushes into the `Param`.
    Param(Param),
    /// Rows of an embedding parameter gathered by token id; gradient
    /// scatters into the corresponding parameter rows.
    GatherRows { param: Param, ids: Vec<usize> },
    Add(usize, usize),
    /// `[r,c] + broadcast [1,c]`.
    AddBroadcastRow(usize, usize),
    Sub(usize, usize),
    /// Elementwise product.
    Mul(usize, usize),
    /// `alpha * x + beta` elementwise (beta is constant, so only alpha
    /// participates in the gradient).
    Affine { x: usize, alpha: f32 },
    /// `x + c` for a constant tensor `c` (mask, positional encoding).
    AddConst(usize),
    MatMul(usize, usize),
    /// `a @ b^T` (attention scores layout).
    MatMulTransB(usize, usize),
    Transpose(usize),
    RowSoftmax(usize),
    RowLogSoftmax(usize),
    /// Weighted sum of per-row token negative log-likelihoods with
    /// optional label smoothing:
    /// `sum_r w_r * (-(1-ε)·log p_r[t_r] - ε/V · Σ_c log p_r[c])` -> `1x1`.
    CrossEntropySum { logits: usize, targets: Vec<usize>, weights: Vec<f32>, smoothing: f32 },
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    /// Row-wise layer normalization with learned gain/bias rows.
    LayerNorm { x: usize, gain: usize, bias: usize, normed: Tensor, inv_std: Vec<f32> },
    /// Elementwise multiply by a fixed 0/scale mask (inverted dropout).
    DropoutMask { x: usize, mask: Tensor },
    ConcatCols(Vec<usize>),
    SliceCols { x: usize, start: usize, len: usize },
    SliceRows { x: usize, start: usize, len: usize },
    StackRows(Vec<usize>),
    MeanRows(usize),
    /// Sum of same-shaped nodes.
    AddN(Vec<usize>),
    /// `log sum_i exp(s_i)` over `1x1` scalars -> `1x1`.
    LogSumExpScalars(Vec<usize>),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// The recorded forward pass.
///
/// ```
/// use qrw_tensor::{Param, Tape, Tensor};
/// // loss = w·x with w = [3, 5], x = [2, 7]  ⇒  ∂loss/∂w = x.
/// let w = Param::new("w", Tensor::from_vec(2, 1, vec![3.0, 5.0]));
/// let tape = Tape::new();
/// let x = tape.constant(Tensor::from_vec(1, 2, vec![2.0, 7.0]));
/// let loss = x.matmul(tape.param(&w));
/// assert_eq!(loss.item(), 41.0);
/// tape.backward(loss);
/// assert_eq!(w.grad().data(), &[2.0, 7.0]);
/// ```
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

/// Per-node gradients produced by [`Tape::backward`], for inspection in
/// tests and diagnostics. Parameter gradients are *also* flushed into their
/// [`Param`]s.
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. the value at `var`, if any flowed there.
    pub fn get(&self, var: Var<'_>) -> Option<&Tensor> {
        self.grads.get(var.idx).and_then(Option::as_ref)
    }
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Tensor, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var { tape: self, idx: nodes.len() - 1 }
    }

    fn value_of(&self, idx: usize) -> Tensor {
        self.nodes.borrow()[idx].value.clone()
    }

    /// Records a constant (no gradient).
    pub fn constant(&self, value: Tensor) -> Var<'_> {
        self.push(value, Op::Const)
    }

    /// Records a trainable parameter leaf.
    pub fn param(&self, param: &Param) -> Var<'_> {
        self.push(param.value(), Op::Param(param.clone()))
    }

    /// Embedding lookup: gathers `ids.len()` rows of `param` without
    /// materializing the full table on the tape.
    pub fn gather_rows(&self, param: &Param, ids: &[usize]) -> Var<'_> {
        let (vocab, dim) = param.shape();
        let mut out = Tensor::zeros(ids.len(), dim);
        param.with_value(|table| {
            for (r, &id) in ids.iter().enumerate() {
                assert!(id < vocab, "token id {id} out of vocabulary {vocab}");
                out.row_slice_mut(r).copy_from_slice(table.row_slice(id));
            }
        });
        self.push(out, Op::GatherRows { param: param.clone(), ids: ids.to_vec() })
    }

    /// Runs the backward pass from a `1x1` loss node.
    ///
    /// Flushes parameter gradients into their [`Param`]s (accumulating with
    /// whatever is already there) and returns all per-node gradients.
    pub fn backward(&self, loss: Var<'_>) -> Gradients {
        assert!(std::ptr::eq(loss.tape, self), "loss var belongs to a different tape");
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[loss.idx].value.shape(), (1, 1), "backward requires a scalar loss");

        let mut grads: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
        grads[loss.idx] = Some(Tensor::scalar(1.0));

        for i in (0..nodes.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            let node = &nodes[i];
            match &node.op {
                Op::Const => {}
                Op::Param(p) => p.accumulate_grad(&g),
                Op::GatherRows { param, ids } => {
                    for (r, &id) in ids.iter().enumerate() {
                        param.accumulate_grad_row(id, g.row_slice(r));
                    }
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g);
                }
                Op::AddBroadcastRow(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    let mut col_sum = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (s, &v) in col_sum.data_mut().iter_mut().zip(g.row_slice(r)) {
                            *s += v;
                        }
                    }
                    accumulate(&mut grads, *b, &col_sum);
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, &g);
                    accumulate(&mut grads, *b, &g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let va = &nodes[*a].value;
                    let vb = &nodes[*b].value;
                    accumulate(&mut grads, *a, &g.mul(vb));
                    accumulate(&mut grads, *b, &g.mul(va));
                }
                Op::Affine { x, alpha } => {
                    accumulate(&mut grads, *x, &g.scale(*alpha));
                }
                Op::AddConst(x) => accumulate(&mut grads, *x, &g),
                Op::MatMul(a, b) => {
                    let va = &nodes[*a].value;
                    let vb = &nodes[*b].value;
                    accumulate(&mut grads, *a, &g.matmul_transpose_b(vb));
                    accumulate(&mut grads, *b, &va.matmul_transpose_a(&g));
                }
                Op::MatMulTransB(a, b) => {
                    // out = A B^T ; dA = G B ; dB = G^T A.
                    let va = &nodes[*a].value;
                    let vb = &nodes[*b].value;
                    accumulate(&mut grads, *a, &g.matmul(vb));
                    accumulate(&mut grads, *b, &g.matmul_transpose_a(va));
                }
                Op::Transpose(x) => accumulate(&mut grads, *x, &g.transpose()),
                Op::RowSoftmax(x) => {
                    // dx_r = s_r ⊙ (g_r - <g_r, s_r>)
                    let s = &node.value;
                    let mut dx = Tensor::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let gr = g.row_slice(r);
                        let sr = s.row_slice(r);
                        let inner = crate::tensor::dot(gr, sr);
                        for (d, (&gv, &sv)) in
                            dx.row_slice_mut(r).iter_mut().zip(gr.iter().zip(sr))
                        {
                            *d = sv * (gv - inner);
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::RowLogSoftmax(x) => {
                    // dx_r = g_r - exp(out_r) * sum(g_r)
                    let out = &node.value;
                    let mut dx = Tensor::zeros(g.rows(), g.cols());
                    for r in 0..g.rows() {
                        let gr = g.row_slice(r);
                        let or = out.row_slice(r);
                        let gsum: f32 = gr.iter().sum();
                        for (d, (&gv, &ov)) in
                            dx.row_slice_mut(r).iter_mut().zip(gr.iter().zip(or))
                        {
                            *d = gv - ov.exp() * gsum;
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::CrossEntropySum { logits, targets, weights, smoothing } => {
                    // d/dlogits = w * (softmax - target_distribution), where
                    // the target distribution is (1-ε)·onehot + ε/V.
                    let gout = g.item();
                    let vlogits = &nodes[*logits].value;
                    let vocab = vlogits.cols() as f32;
                    let probs = vlogits.row_softmax();
                    let mut dl = probs;
                    for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
                        let row = dl.row_slice_mut(r);
                        row[t] -= 1.0 - smoothing;
                        for v in row.iter_mut() {
                            *v -= smoothing / vocab;
                            *v *= w * gout;
                        }
                    }
                    accumulate(&mut grads, *logits, &dl);
                }
                Op::Relu(x) => {
                    let vx = &nodes[*x].value;
                    let mut dx = g.clone();
                    for (d, &v) in dx.data_mut().iter_mut().zip(vx.data()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::Sigmoid(x) => {
                    let s = &node.value;
                    let mut dx = g.clone();
                    for (d, &sv) in dx.data_mut().iter_mut().zip(s.data()) {
                        *d *= sv * (1.0 - sv);
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::Tanh(x) => {
                    let t = &node.value;
                    let mut dx = g.clone();
                    for (d, &tv) in dx.data_mut().iter_mut().zip(t.data()) {
                        *d *= 1.0 - tv * tv;
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::LayerNorm { x, gain, bias, normed, inv_std } => {
                    let vgain = &nodes[*gain].value;
                    let n = g.cols() as f32;
                    let mut dx = Tensor::zeros(g.rows(), g.cols());
                    let mut dgain = Tensor::zeros(1, g.cols());
                    let mut dbias = Tensor::zeros(1, g.cols());
                    for (r, &istd) in inv_std.iter().enumerate() {
                        let gr = g.row_slice(r);
                        let xr = normed.row_slice(r);
                        // dbias += g ; dgain += g ⊙ x̂
                        for ((db, dg), (&gv, &xh)) in dbias
                            .data_mut()
                            .iter_mut()
                            .zip(dgain.data_mut())
                            .zip(gr.iter().zip(xr))
                        {
                            *db += gv;
                            *dg += gv * xh;
                        }
                        // dxhat = g ⊙ gain
                        // dx = inv_std/n * (n*dxhat - sum(dxhat) - x̂ * sum(dxhat ⊙ x̂))
                        let mut sum_dxh = 0.0;
                        let mut sum_dxh_xh = 0.0;
                        for ((&gv, &gain_v), &xh) in
                            gr.iter().zip(vgain.data()).zip(xr)
                        {
                            let dxh = gv * gain_v;
                            sum_dxh += dxh;
                            sum_dxh_xh += dxh * xh;
                        }
                        for (d, ((&gv, &gain_v), &xh)) in dx
                            .row_slice_mut(r)
                            .iter_mut()
                            .zip(gr.iter().zip(vgain.data()).zip(xr))
                        {
                            let dxh = gv * gain_v;
                            *d = istd / n * (n * dxh - sum_dxh - xh * sum_dxh_xh);
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                    accumulate(&mut grads, *gain, &dgain);
                    accumulate(&mut grads, *bias, &dbias);
                }
                Op::DropoutMask { x, mask } => {
                    accumulate(&mut grads, *x, &g.mul(mask));
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let w = nodes[p].value.cols();
                        accumulate(&mut grads, p, &g.slice_cols(off, w));
                        off += w;
                    }
                }
                Op::SliceCols { x, start, len } => {
                    let vx = &nodes[*x].value;
                    let mut dx = Tensor::zeros(vx.rows(), vx.cols());
                    for r in 0..g.rows() {
                        dx.row_slice_mut(r)[*start..start + len].copy_from_slice(g.row_slice(r));
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::SliceRows { x, start, len } => {
                    let vx = &nodes[*x].value;
                    let mut dx = Tensor::zeros(vx.rows(), vx.cols());
                    for r in 0..*len {
                        dx.row_slice_mut(start + r).copy_from_slice(g.row_slice(r));
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::StackRows(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let h = nodes[p].value.rows();
                        accumulate(&mut grads, p, &g.slice_rows(off, h));
                        off += h;
                    }
                }
                Op::MeanRows(x) => {
                    let vx = &nodes[*x].value;
                    let inv = 1.0 / vx.rows() as f32;
                    let mut dx = Tensor::zeros(vx.rows(), vx.cols());
                    for r in 0..vx.rows() {
                        for (d, &gv) in dx.row_slice_mut(r).iter_mut().zip(g.row_slice(0)) {
                            *d = gv * inv;
                        }
                    }
                    accumulate(&mut grads, *x, &dx);
                }
                Op::AddN(parts) => {
                    for &p in parts {
                        accumulate(&mut grads, p, &g);
                    }
                }
                Op::LogSumExpScalars(parts) => {
                    let lse = node.value.item();
                    let gout = g.item();
                    for &p in parts {
                        let v = nodes[p].value.item();
                        let w = if lse.is_finite() { (v - lse).exp() } else { 0.0 };
                        accumulate(&mut grads, p, &Tensor::scalar(gout * w));
                    }
                }
            }
            grads[i] = Some(g);
        }
        Gradients { grads }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, delta: &Tensor) {
    match &mut grads[idx] {
        Some(g) => g.add_assign(delta),
        slot @ None => *slot = Some(delta.clone()),
    }
}

impl<'t> Var<'t> {
    /// The forward value at this node (copied).
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.idx)
    }

    /// `(rows, cols)` of the forward value.
    pub fn shape(&self) -> (usize, usize) {
        self.tape.nodes.borrow()[self.idx].value.shape()
    }

    /// Scalar value of a `1x1` node.
    pub fn item(&self) -> f32 {
        self.value().item()
    }

    fn binary(&self, other: Var<'t>, value: Tensor, op: Op) -> Var<'t> {
        debug_assert!(std::ptr::eq(self.tape, other.tape), "vars from different tapes");
        self.tape.push(value, op)
    }

    pub fn add(&self, other: Var<'t>) -> Var<'t> {
        let v = self.value().add(&other.value());
        self.binary(other, v, Op::Add(self.idx, other.idx))
    }

    /// Adds a `1 x cols` row vector (e.g. a bias) to every row.
    pub fn add_broadcast_row(&self, row: Var<'t>) -> Var<'t> {
        let v = self.value().add_row_broadcast(&row.value());
        self.binary(row, v, Op::AddBroadcastRow(self.idx, row.idx))
    }

    pub fn sub(&self, other: Var<'t>) -> Var<'t> {
        let v = self.value().sub(&other.value());
        self.binary(other, v, Op::Sub(self.idx, other.idx))
    }

    pub fn mul(&self, other: Var<'t>) -> Var<'t> {
        let v = self.value().mul(&other.value());
        self.binary(other, v, Op::Mul(self.idx, other.idx))
    }

    /// `alpha * x + beta` elementwise.
    pub fn affine(&self, alpha: f32, beta: f32) -> Var<'t> {
        let mut v = self.value().scale(alpha);
        for x in v.data_mut() {
            *x += beta;
        }
        self.tape.push(v, Op::Affine { x: self.idx, alpha })
    }

    pub fn scale(&self, alpha: f32) -> Var<'t> {
        self.affine(alpha, 0.0)
    }

    /// `1 - x`, convenient for gate complements.
    pub fn one_minus(&self) -> Var<'t> {
        self.affine(-1.0, 1.0)
    }

    /// Adds a constant tensor (mask / positional encoding); no gradient to it.
    pub fn add_const(&self, c: &Tensor) -> Var<'t> {
        let v = self.value().add(c);
        self.tape.push(v, Op::AddConst(self.idx))
    }

    pub fn matmul(&self, other: Var<'t>) -> Var<'t> {
        let v = self.value().matmul(&other.value());
        self.binary(other, v, Op::MatMul(self.idx, other.idx))
    }

    /// `self @ other^T`.
    pub fn matmul_transpose_b(&self, other: Var<'t>) -> Var<'t> {
        let v = self.value().matmul_transpose_b(&other.value());
        self.binary(other, v, Op::MatMulTransB(self.idx, other.idx))
    }

    pub fn transpose(&self) -> Var<'t> {
        let v = self.value().transpose();
        self.tape.push(v, Op::Transpose(self.idx))
    }

    pub fn row_softmax(&self) -> Var<'t> {
        let v = self.value().row_softmax();
        self.tape.push(v, Op::RowSoftmax(self.idx))
    }

    pub fn row_log_softmax(&self) -> Var<'t> {
        let v = self.value().row_log_softmax();
        self.tape.push(v, Op::RowLogSoftmax(self.idx))
    }

    /// Weighted token-level negative log-likelihood, summed:
    /// `sum_r weights[r] * (-log softmax(self_r)[targets[r]])` -> `1x1`.
    ///
    /// `weights[r] = 0.0` masks padding positions out of the loss.
    pub fn cross_entropy_sum(&self, targets: &[usize], weights: &[f32]) -> Var<'t> {
        self.cross_entropy_sum_smoothed(targets, weights, 0.0)
    }

    /// Cross entropy against the label-smoothed target distribution
    /// `(1-ε)·onehot(target) + ε/V` (the original transformer recipe;
    /// `smoothing = 0` reduces to plain cross entropy).
    pub fn cross_entropy_sum_smoothed(
        &self,
        targets: &[usize],
        weights: &[f32],
        smoothing: f32,
    ) -> Var<'t> {
        assert!((0.0..1.0).contains(&smoothing), "smoothing must be in [0, 1)");
        let logits = self.value();
        assert_eq!(logits.rows(), targets.len(), "one target per logits row");
        assert_eq!(targets.len(), weights.len(), "one weight per target");
        let vocab = logits.cols() as f32;
        let logp = logits.row_log_softmax();
        let mut total = 0.0;
        for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
            assert!(t < logits.cols(), "target {t} out of vocab {}", logits.cols());
            let mut nll = -(1.0 - smoothing) * logp.get(r, t);
            if smoothing > 0.0 {
                let mean_logp: f32 =
                    logp.row_slice(r).iter().sum::<f32>() / vocab;
                nll -= smoothing * mean_logp;
            }
            total += w * nll;
        }
        self.tape.push(
            Tensor::scalar(total),
            Op::CrossEntropySum {
                logits: self.idx,
                targets: targets.to_vec(),
                weights: weights.to_vec(),
                smoothing,
            },
        )
    }

    pub fn relu(&self) -> Var<'t> {
        let mut v = self.value();
        for x in v.data_mut() {
            *x = x.max(0.0);
        }
        self.tape.push(v, Op::Relu(self.idx))
    }

    pub fn sigmoid(&self) -> Var<'t> {
        let mut v = self.value();
        for x in v.data_mut() {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
        self.tape.push(v, Op::Sigmoid(self.idx))
    }

    pub fn tanh(&self) -> Var<'t> {
        let mut v = self.value();
        for x in v.data_mut() {
            *x = x.tanh();
        }
        self.tape.push(v, Op::Tanh(self.idx))
    }

    /// Row-wise layer normalization with learned `1 x cols` gain and bias.
    pub fn layer_norm(&self, gain: Var<'t>, bias: Var<'t>) -> Var<'t> {
        const EPS: f32 = 1e-5;
        let x = self.value();
        let vgain = gain.value();
        let vbias = bias.value();
        assert_eq!(vgain.shape(), (1, x.cols()), "layer_norm gain shape");
        assert_eq!(vbias.shape(), (1, x.cols()), "layer_norm bias shape");
        let n = x.cols() as f32;
        let mut normed = Tensor::zeros(x.rows(), x.cols());
        let mut inv_std = Vec::with_capacity(x.rows());
        let mut out = Tensor::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row_slice(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let istd = 1.0 / (var + EPS).sqrt();
            inv_std.push(istd);
            for (c, &v) in row.iter().enumerate() {
                let xh = (v - mean) * istd;
                normed.set(r, c, xh);
                out.set(r, c, xh * vgain.get(0, c) + vbias.get(0, c));
            }
        }
        self.tape.push(
            out,
            Op::LayerNorm { x: self.idx, gain: gain.idx, bias: bias.idx, normed, inv_std },
        )
    }

    /// Inverted dropout with a caller-supplied 0-or-`1/keep` mask.
    ///
    /// The caller owns randomness so training stays deterministic per seed.
    pub fn dropout_mask(&self, mask: Tensor) -> Var<'t> {
        assert_eq!(self.shape(), mask.shape(), "dropout mask shape");
        let v = self.value().mul(&mask);
        self.tape.push(v, Op::DropoutMask { x: self.idx, mask })
    }

    /// Concatenates nodes left-to-right (multi-head merge).
    pub fn concat_cols(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty());
        let tape = parts[0].tape;
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let v = Tensor::concat_cols(&refs);
        tape.push(v, Op::ConcatCols(parts.iter().map(|p| p.idx).collect()))
    }

    pub fn slice_cols(&self, start: usize, len: usize) -> Var<'t> {
        let v = self.value().slice_cols(start, len);
        self.tape.push(v, Op::SliceCols { x: self.idx, start, len })
    }

    pub fn slice_rows(&self, start: usize, len: usize) -> Var<'t> {
        let v = self.value().slice_rows(start, len);
        self.tape.push(v, Op::SliceRows { x: self.idx, start, len })
    }

    /// Stacks nodes top-to-bottom (RNN step outputs into a sequence).
    pub fn stack_rows(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty());
        let tape = parts[0].tape;
        let values: Vec<Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&Tensor> = values.iter().collect();
        let v = Tensor::stack_rows(&refs);
        tape.push(v, Op::StackRows(parts.iter().map(|p| p.idx).collect()))
    }

    pub fn mean_rows(&self) -> Var<'t> {
        let v = self.value().mean_rows();
        self.tape.push(v, Op::MeanRows(self.idx))
    }

    /// Sum of same-shaped nodes.
    pub fn add_n(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty());
        let tape = parts[0].tape;
        let mut v = parts[0].value();
        for p in &parts[1..] {
            v.add_assign(&p.value());
        }
        tape.push(v, Op::AddN(parts.iter().map(|p| p.idx).collect()))
    }

    /// Numerically stable `log sum exp` over `1x1` scalar nodes.
    ///
    /// This is the reduction at the heart of the cycle-consistency
    /// likelihood: `L_c = log Σ_i exp(log P_f(ŷ_i|x) + log P_b(x|ŷ_i))`.
    pub fn log_sum_exp_scalars(parts: &[Var<'t>]) -> Var<'t> {
        assert!(!parts.is_empty());
        let tape = parts[0].tape;
        let vals: Vec<f32> = parts
            .iter()
            .map(|p| {
                assert_eq!(p.shape(), (1, 1), "log_sum_exp_scalars needs 1x1 nodes");
                p.item()
            })
            .collect();
        let lse = crate::tensor::log_sum_exp(&vals);
        tape.push(Tensor::scalar(lse), Op::LogSumExpScalars(parts.iter().map(|p| p.idx).collect()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_are_eager() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.constant(Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let c = a.add(b);
        assert_eq!(c.value().data(), &[4.0, 6.0]);
        assert_eq!(tape.len(), 3);
    }

    #[test]
    fn simple_param_gradient() {
        // loss = sum over CE of a single logit row is awkward here; use
        // loss = (w * x) summed via matmul with a 1x1 result.
        let w = Param::new("w", Tensor::from_vec(2, 1, vec![3.0, 5.0]));
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 2, vec![2.0, 7.0]));
        let wv = tape.param(&w);
        let loss = x.matmul(wv); // 1x1 = 2*3 + 7*5 = 41
        assert_eq!(loss.item(), 41.0);
        tape.backward(loss);
        assert_eq!(w.grad().data(), &[2.0, 7.0]);
    }

    #[test]
    fn gradient_accumulates_across_tapes() {
        let w = Param::new("w", Tensor::scalar(1.0));
        for _ in 0..3 {
            let tape = Tape::new();
            let x = tape.constant(Tensor::scalar(2.0));
            let loss = x.mul(tape.param(&w));
            tape.backward(loss);
        }
        assert_eq!(w.grad().item(), 6.0);
    }

    #[test]
    fn diamond_graph_sums_both_paths() {
        // loss = x*x + x  => dx = 2x + 1
        let w = Param::new("x", Tensor::scalar(3.0));
        let tape = Tape::new();
        let x = tape.param(&w);
        let loss = x.mul(x).add(x);
        assert_eq!(loss.item(), 12.0);
        tape.backward(loss);
        assert_eq!(w.grad().item(), 7.0);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 3, vec![1., 2., 3., 0., 0., 0.]));
        let loss = logits.cross_entropy_sum(&[2, 0], &[1.0, 1.0]);
        let row0 = -(3.0f32 - crate::tensor::log_sum_exp(&[1., 2., 3.]));
        let row1 = -(0.0f32 - crate::tensor::log_sum_exp(&[0., 0., 0.]));
        assert!((loss.item() - (row0 + row1)).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_weight_masks_row() {
        let tape = Tape::new();
        let logits = tape.constant(Tensor::from_vec(2, 3, vec![1., 2., 3., 9., 9., 9.]));
        let masked = logits.cross_entropy_sum(&[2, 0], &[1.0, 0.0]);
        let row0 = -(3.0f32 - crate::tensor::log_sum_exp(&[1., 2., 3.]));
        assert!((masked.item() - row0).abs() < 1e-5);
    }

    #[test]
    fn log_sum_exp_scalars_value_and_grad() {
        let a = Param::new("a", Tensor::scalar(0.0));
        let b = Param::new("b", Tensor::scalar(0.0));
        let tape = Tape::new();
        let va = tape.param(&a);
        let vb = tape.param(&b);
        let lse = Var::log_sum_exp_scalars(&[va, vb]);
        assert!((lse.item() - (2.0f32).ln()).abs() < 1e-6);
        tape.backward(lse);
        // Softmax weights are 0.5 each.
        assert!((a.grad().item() - 0.5).abs() < 1e-6);
        assert!((b.grad().item() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn one_minus_and_affine() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(1, 2, vec![0.25, 0.75]));
        assert_eq!(x.one_minus().value().data(), &[0.75, 0.25]);
        assert_eq!(x.affine(2.0, 1.0).value().data(), &[1.5, 2.5]);
    }

    #[test]
    fn gather_rows_scatters_grads() {
        let emb = Param::new("emb", Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let tape = Tape::new();
        let x = tape.gather_rows(&emb, &[2, 0, 2]);
        assert_eq!(x.value().data(), &[5., 6., 1., 2., 5., 6.]);
        // loss = sum of all entries via matmul with ones.
        let ones = tape.constant(Tensor::from_vec(2, 1, vec![1.0, 1.0]));
        let rows = x.matmul(ones); // 3x1
        let colones = tape.constant(Tensor::from_vec(1, 3, vec![1.0; 3]));
        let loss = colones.matmul(rows);
        tape.backward(loss);
        let g = emb.grad();
        assert_eq!(g.row_slice(0), &[1.0, 1.0]);
        assert_eq!(g.row_slice(1), &[0.0, 0.0]);
        assert_eq!(g.row_slice(2), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros(2, 2));
        tape.backward(x);
    }

    #[test]
    fn gradients_inspectable_for_non_params() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::scalar(4.0));
        let y = x.mul(x);
        let grads = tape.backward(y);
        assert_eq!(grads.get(x).unwrap().item(), 8.0);
    }
}
