//! Dense row-major `f32` matrices.
//!
//! Everything in this reproduction operates on rank-2 tensors: a sequence of
//! `n` tokens embedded in `d` dimensions is an `n x d` matrix, a single
//! hidden state is `1 x d`, and a scalar loss is `1 x 1`. Keeping the type
//! rank-2 (instead of rank-generic) keeps every operation's shape rule
//! checkable at one call site and keeps the autodiff tape simple.

use std::fmt;

/// A dense row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor[{}x{}]", self.rows, self.cols)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Tensor {
    /// A `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { data: vec![0.0; rows * cols], rows, cols }
    }

    /// A `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor { data: vec![value; rows * cols], rows, cols }
    }

    /// Builds a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer of length {} cannot be shaped {rows}x{cols}",
            data.len()
        );
        Tensor { data, rows, cols }
    }

    /// A `1 x 1` tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], rows: 1, cols: 1 }
    }

    /// A `1 x n` row tensor.
    pub fn row(data: Vec<f32>) -> Self {
        let cols = data.len();
        Tensor { data, rows: 1, cols }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a `1 x 1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1 x 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row_slice(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_slice_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reinterprets the buffer with a new shape of the same element count.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(self.data.len(), rows * cols, "reshape must preserve element count");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// `self + other`, same shape.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// In-place `self += other`, same shape.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other`, same shape.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self - other`, same shape.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// Elementwise product, same shape.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "mul: shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Tensor { data, rows: self.rows, cols: self.cols }
    }

    /// Adds the `1 x cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast: column mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (a, b) in out.row_slice_mut(r).iter_mut().zip(&row.data) {
                *a += b;
            }
        }
        out
    }

    /// Matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// Runs a blocked kernel, row-parallel over `std::thread::scope` above
    /// [`PAR_MIN_WORK`] multiply-accumulates. Every output row is computed
    /// by exactly one thread with the same accumulation order as the naive
    /// triple loop, so results are bitwise identical to the serial path.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        parallel_rows(m, m * k * n, &mut out.data, n, |row0, a_rows, out_chunk| {
            matmul_kernel(&self.data[row0 * k..(row0 + a_rows) * k], &other.data, out_chunk, k, n);
        });
        out
    }

    /// Matrix product with the second operand transposed:
    /// `self[m,k] @ other[n,k]^T -> [m,n]`.
    ///
    /// This is the natural layout for attention scores `Q K^T` where both
    /// `Q` and `K` are stored row-major per token. Parallelizes over output
    /// rows like [`Tensor::matmul`].
    pub fn matmul_transpose_b(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b: {}x{} @ ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        parallel_rows(m, m * k * n, &mut out.data, n, |row0, a_rows, out_chunk| {
            matmul_tb_kernel(&self.data[row0 * k..(row0 + a_rows) * k], &other.data, out_chunk, k, n);
        });
        out
    }

    /// Matrix product with the first operand transposed:
    /// `self[k,m]^T @ other[k,n] -> [m,n]`.
    ///
    /// Used by matmul backward passes (`dW = X^T dY`). Parallelizes over
    /// output rows (columns of `self`) like [`Tensor::matmul`].
    pub fn matmul_transpose_a(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a: ({}x{})^T @ {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        parallel_rows(m, m * k * n, &mut out.data, n, |row0, a_cols, out_chunk| {
            matmul_ta_kernel(&self.data, &other.data, out_chunk, row0, a_cols, m, k, n);
        });
        out
    }

    /// Fused `act(self @ w + bias)`: one output allocation, bias add and
    /// activation applied in a single epilogue pass over the product.
    /// Produces exactly the same values as `matmul` + broadcast-add +
    /// activation applied separately (the bias is added after the full
    /// accumulation, preserving rounding).
    pub fn matmul_bias_act(&self, w: &Tensor, bias: &Tensor, act: Activation) -> Tensor {
        assert_eq!(bias.rows, 1, "matmul_bias_act: bias must be a row vector");
        assert_eq!(bias.cols, w.cols, "matmul_bias_act: bias/weight column mismatch");
        let mut out = self.matmul(w);
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            match act {
                Activation::Identity => {
                    for (o, &b) in row.iter_mut().zip(&bias.data) {
                        *o += b;
                    }
                }
                Activation::Relu => {
                    for (o, &b) in row.iter_mut().zip(&bias.data) {
                        *o = (*o + b).max(0.0);
                    }
                }
            }
        }
        out
    }

    /// Appends one row, growing the tensor in place (amortized O(cols)).
    /// The receiver may have zero rows but must already have the right
    /// column count.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row: column mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// An empty (`0 x cols`) tensor with room for `rows_cap` rows, for
    /// incremental [`Tensor::push_row`] growth without reallocation.
    pub fn with_row_capacity(rows_cap: usize, cols: usize) -> Tensor {
        Tensor { data: Vec::with_capacity(rows_cap * cols), rows: 0, cols }
    }

    /// Full transpose copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Row-wise softmax (numerically stable).
    pub fn row_softmax(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            softmax_in_place(out.row_slice_mut(r));
        }
        out
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn row_log_softmax(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            log_softmax_in_place(out.row_slice_mut(r));
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over rows -> `1 x cols`.
    pub fn mean_rows(&self) -> Tensor {
        assert!(self.rows > 0, "mean_rows on empty tensor");
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row_slice(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for o in out.data.iter_mut() {
            *o *= inv;
        }
        out
    }

    /// Concatenates tensors left-to-right; all must share the row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = parts[0].rows;
        assert!(parts.iter().all(|p| p.rows == rows), "concat_cols: row mismatch");
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_slice_mut(r)[off..off + p.cols].copy_from_slice(p.row_slice(r));
                off += p.cols;
            }
        }
        out
    }

    /// Stacks `1 x cols` rows top-to-bottom.
    pub fn stack_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "stack_rows of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "stack_rows: column mismatch");
            data.extend_from_slice(&p.data);
        }
        Tensor { data, rows, cols }
    }

    /// Copies a column range `[start, start+len)`.
    pub fn slice_cols(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.cols, "slice_cols out of bounds");
        let mut out = Tensor::zeros(self.rows, len);
        for r in 0..self.rows {
            out.row_slice_mut(r).copy_from_slice(&self.row_slice(r)[start..start + len]);
        }
        out
    }

    /// Copies a row range `[start, start+len)`.
    pub fn slice_rows(&self, start: usize, len: usize) -> Tensor {
        assert!(start + len <= self.rows, "slice_rows out of bounds");
        let data = self.data[start * self.cols..(start + len) * self.cols].to_vec();
        Tensor { data, rows: len, cols: self.cols }
    }

    /// Frobenius (L2) norm of all entries.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Fills with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }
}

/// Activation applied by the fused [`Tensor::matmul_bias_act`] epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// No activation: plain `x W + b`.
    Identity,
    /// `max(0, x W + b)`.
    Relu,
}

/// Multiply-accumulate count above which matmuls fan out over threads.
/// Below it, thread-spawn overhead (~tens of µs) exceeds the arithmetic —
/// the serving-time single-row vocabulary projections stay serial.
pub const PAR_MIN_WORK: usize = 1 << 21;

/// Output-row tile height of the blocked kernel: `TILE_I x TILE_J` output
/// values (4 KiB at 8x128) plus one `TILE_J` stripe of `b` stay resident
/// in L1 while the k-loop streams over `b` rows.
const TILE_I: usize = 8;
/// Output-column tile width (one 512-byte stripe of `b` per k-step).
const TILE_J: usize = 128;

fn matmul_threads(rows: usize, work: usize) -> usize {
    if rows < 2 || work < PAR_MIN_WORK {
        return 1;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get()).min(rows)
}

/// Runs `f(first_row, row_count, out_rows)` over disjoint row chunks of
/// `out`, in parallel when the work justifies it. Each output row is
/// written by exactly one invocation, so the split cannot change results.
fn parallel_rows(
    m: usize,
    work: usize,
    out: &mut [f32],
    n: usize,
    f: impl Fn(usize, usize, &mut [f32]) + Sync,
) {
    let threads = matmul_threads(m, work);
    if threads <= 1 || n == 0 {
        f(0, m, out);
        return;
    }
    let chunk_rows = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (ti, out_chunk) in out.chunks_mut(chunk_rows * n).enumerate() {
            let f = &f;
            s.spawn(move || {
                f(ti * chunk_rows, out_chunk.len() / n, out_chunk);
            });
        }
    });
}

/// Blocked `out += a[m,k] @ b[k,n]` over row-major slices (`out` starts
/// zeroed). For every output element the k-accumulation runs ascending
/// from zero — the naive triple loop's order — so results are bitwise
/// identical to it; blocking only reorders *which element* is updated
/// next, never the terms within one element.
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 {
        return;
    }
    let m = a.len() / k;
    for i0 in (0..m).step_by(TILE_I) {
        let i1 = (i0 + TILE_I).min(m);
        for j0 in (0..n).step_by(TILE_J) {
            let j1 = (j0 + TILE_J).min(n);
            for p in 0..k {
                let b_seg = &b[p * n + j0..p * n + j1];
                for i in i0..i1 {
                    let aip = a[i * k + p];
                    let o = &mut out[i * n + j0..i * n + j1];
                    for (ov, &bv) in o.iter_mut().zip(b_seg) {
                        *ov += aip * bv;
                    }
                }
            }
        }
    }
}

/// `out[m,n] = a[m,k] @ b[n,k]^T`: each output value is one row-row dot
/// product, accumulated ascending over k exactly like the naive loop.
fn matmul_tb_kernel(a: &[f32], b: &[f32], out: &mut [f32], k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let m = out.len() / n;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            // Explicit +0.0-seeded fold: `iter::sum::<f32>` seeds with
            // -0.0, which breaks bitwise equality with the naive loop on
            // empty / all-negative-zero reductions.
            let mut sum = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                sum += x * y;
            }
            *o = sum;
        }
    }
}

/// `out[ncols,n] = a[k,m]^T @ b[k,n]` restricted to `a` columns
/// `[col0, col0+ncols)`. The p-loop ascends, matching the naive order.
#[allow(clippy::too_many_arguments)] // flat BLAS-style dims beat a one-off struct here
fn matmul_ta_kernel(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    col0: usize,
    ncols: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    for p in 0..k {
        let a_seg = &a[p * m + col0..p * m + col0 + ncols];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &av) in a_seg.iter().enumerate() {
            let o = &mut out[i * n..(i + 1) * n];
            for (ov, &bv) in o.iter_mut().zip(b_row) {
                *ov += av * bv;
            }
        }
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically stable in-place softmax over a slice.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        // All -inf (fully masked row): define softmax as uniform to avoid NaN.
        let u = 1.0 / xs.len() as f32;
        xs.iter_mut().for_each(|x| *x = u);
        return;
    }
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    xs.iter_mut().for_each(|x| *x *= inv);
}

/// Numerically stable in-place log-softmax over a slice.
pub fn log_softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let lse = max + xs.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
    xs.iter_mut().for_each(|x| *x -= lse);
}

/// Numerically stable `log(sum(exp(xs)))`.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    assert!(!xs.is_empty(), "log_sum_exp of nothing");
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    max + xs.iter().map(|x| (x - max).exp()).sum::<f32>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(1, 2), 6.0);
        assert_eq!(t.row_slice(0), &[1., 2., 3.]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot be shaped")]
    fn from_vec_rejects_bad_shape() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn add_sub_mul_scale() {
        let a = Tensor::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_variants_agree_with_plain_matmul() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 2., -1., 3., 1., 0., 0.5, 2., 2., 1., 1.]);
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transpose_b(&b);
        for (x, y) in via_t.data().iter().zip(direct.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        let c = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let d = Tensor::from_vec(3, 4, vec![0.; 12]).add(&Tensor::full(3, 4, 1.0));
        let via_t2 = c.transpose().matmul(&d);
        let direct2 = c.matmul_transpose_a(&d);
        for (x, y) in via_t2.data().iter().zip(direct2.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_row_add() {
        let x = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::row(vec![10., 20.]);
        assert_eq!(x.add_row_broadcast(&b).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_are_stable() {
        let x = Tensor::from_vec(2, 3, vec![1000., 1001., 1002., -5., 0., 5.]);
        let s = x.row_softmax();
        for r in 0..2 {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.row_slice(r).iter().all(|v| v.is_finite()));
        }
        // Softmax is shift-invariant: the big-offset row equals the small one.
        let y = Tensor::from_vec(1, 3, vec![0., 1., 2.]).row_softmax();
        for c in 0..3 {
            assert!((s.get(0, c) - y.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_fully_masked_row_is_uniform() {
        let x = Tensor::from_vec(1, 4, vec![f32::NEG_INFINITY; 4]);
        let s = x.row_softmax();
        for c in 0..4 {
            assert!((s.get(0, c) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(1, 4, vec![0.1, -2.0, 3.0, 0.5]);
        let a = x.row_log_softmax();
        let b = x.row_softmax();
        for c in 0..4 {
            assert!((a.get(0, c) - b.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - (2.0f32).ln()).abs() < 1e-6);
        let big = log_sum_exp(&[1000.0, 1000.0]);
        assert!((big - (1000.0 + (2.0f32).ln())).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[f32::NEG_INFINITY]), f32::NEG_INFINITY);
    }

    #[test]
    fn concat_and_slice_cols_roundtrip() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(2, 1, vec![5., 6.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.data(), &[1., 2., 5., 3., 4., 6.]);
        assert_eq!(c.slice_cols(0, 2).data(), a.data());
        assert_eq!(c.slice_cols(2, 1).data(), b.data());
    }

    #[test]
    fn stack_and_slice_rows_roundtrip() {
        let a = Tensor::row(vec![1., 2.]);
        let b = Tensor::row(vec![3., 4.]);
        let s = Tensor::stack_rows(&[&a, &b]);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.slice_rows(1, 1).data(), &[3., 4.]);
    }

    #[test]
    fn mean_rows() {
        let x = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(x.mean_rows().data(), &[2., 3.]);
    }

    #[test]
    fn norm_and_nonfinite_detection() {
        let x = Tensor::from_vec(1, 2, vec![3., 4.]);
        assert!((x.norm() - 5.0).abs() < 1e-6);
        assert!(!x.has_non_finite());
        let y = Tensor::from_vec(1, 2, vec![3., f32::NAN]);
        assert!(y.has_non_finite());
    }

    #[test]
    fn transpose_involution() {
        let x = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(x.transpose().transpose(), x);
    }
}
