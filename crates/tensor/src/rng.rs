//! Seeded, dependency-free pseudo-random number generation.
//!
//! The workspace must build with no network access, so the external `rand`
//! crate is replaced by this SplitMix64 generator. The API mirrors the
//! subset of `rand` the repo actually uses (`seed_from_u64`, `gen`,
//! `gen_range`, `gen_bool`, shuffling), so call sites read the same.
//!
//! SplitMix64 (Steele, Lea & Flood 2014) passes BigCrush, has a full 2^64
//! period over its state increment, and is a few instructions per draw —
//! more than enough statistical quality for data generation, sampling
//! decoders, dropout masks and fault injection, all of which only need a
//! deterministic, well-mixed stream per seed.

/// A small deterministic PRNG (SplitMix64 core).
///
/// The name matches the external crate type it replaces, so existing call
/// sites keep their meaning; the streams differ, which only shifts which
/// deterministic sample each seed denotes.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. Equal seeds yield equal
    /// streams on every platform.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// The full internal state. `seed_from_u64(rng.state())` reproduces
    /// this generator exactly — SplitMix64's state *is* its seed — which
    /// is what makes training checkpoints resume bit-for-bit.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample of a [`Standard`] type (`f32`/`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    #[inline]
    pub fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a range. Empty ranges yield the start bound
    /// rather than panicking (the serve path must stay total).
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            xs.swap(i, j);
        }
    }
}

/// Types samplable without an explicit range.
pub trait Standard: Sized {
    fn from_rng(rng: &mut StdRng) -> Self;
}

impl Standard for f32 {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_f32()
    }
}

impl Standard for f64 {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_f64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut StdRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over half-open and closed intervals.
pub trait Uniform: Copy {
    /// Uniform in `[lo, hi)`; returns `lo` when the range is empty.
    fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`; returns `lo` when `hi <= lo`.
    fn sample_range_incl(rng: &mut StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                if hi <= lo {
                    return lo;
                }
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            #[inline]
            fn sample_range_incl(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                if hi <= lo {
                    return lo;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_uniform {
    ($($t:ty => $next:ident),*) => {$(
        impl Uniform for $t {
            #[inline]
            fn sample_range(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                // `partial_cmp` so NaN / degenerate bounds collapse to `lo`.
                if lo.partial_cmp(&hi) != Some(core::cmp::Ordering::Less) {
                    return lo;
                }
                lo + rng.$next() * (hi - lo)
            }
            #[inline]
            fn sample_range_incl(rng: &mut StdRng, lo: Self, hi: Self) -> Self {
                Self::sample_range(rng, lo, hi)
            }
        }
    )*};
}

float_uniform!(f32 => next_f32, f64 => next_f64);

/// Ranges a uniform sample can be drawn from. The single blanket impl per
/// range shape lets the element type flow from the call-site context (e.g.
/// slice indexing infers `usize`), exactly like `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: Uniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: Uniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_range_incl(rng, *self.start(), *self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.next_f32();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&j));
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn empty_range_is_total() {
        let mut rng = StdRng::seed_from_u64(6);
        assert_eq!(rng.gen_range(7usize..7), 7);
        assert_eq!(rng.gen_range(4.0f64..1.0), 4.0);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "50 elements staying in place is vanishingly unlikely");
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..10_000).map(|_| rng.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }
}
