//! Optimizers and learning-rate schedules.
//!
//! The paper trains with Adam (lr = 0.05, β₁ = 0.9, β₂ = 0.999, ε = 1e-8)
//! under the Noam schedule from "Attention Is All You Need" (§IV-A).

use std::collections::HashMap;

use crate::param::{Param, ParamSet};

/// Adam optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        // The paper's §IV-A settings.
        AdamConfig { lr: 0.05, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam with bias correction. Keeps first/second-moment state per parameter
/// id, so the same optimizer instance can drive several [`ParamSet`]s (the
/// forward and backward translation models in joint training).
pub struct Adam {
    config: AdamConfig,
    step: u64,
    state: HashMap<u64, Moments>,
}

impl Adam {
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, step: 0, state: HashMap::new() }
    }

    /// Number of completed optimization steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Restores the completed-step count (bias correction depends on it),
    /// used when resuming from a checkpoint.
    pub fn set_steps(&mut self, steps: u64) {
        self.step = steps;
    }

    /// Exports the first/second moments for every parameter of `params`
    /// that has optimizer state, keyed by parameter name (ids are
    /// process-local and do not survive a restart). Parameters that were
    /// never stepped have no entry — importing none recreates the same
    /// "fresh" state lazily.
    pub fn export_moments(&self, params: &ParamSet) -> Vec<(String, Vec<f32>, Vec<f32>)> {
        params
            .iter()
            .filter_map(|p| {
                self.state
                    .get(&p.id())
                    .map(|mo| (p.name(), mo.m.clone(), mo.v.clone()))
            })
            .collect()
    }

    /// Restores moments exported by [`Adam::export_moments`] into the
    /// state slots of the (freshly-constructed) parameters of `params`,
    /// matched by name. Unknown names and length mismatches are errors —
    /// a moment vector that does not line up with its parameter would
    /// silently corrupt the update rule.
    pub fn import_moments(
        &mut self,
        params: &ParamSet,
        records: &[(String, Vec<f32>, Vec<f32>)],
    ) -> Result<(), String> {
        let by_name: HashMap<String, &Param> =
            params.iter().map(|p| (p.name(), p)).collect();
        for (name, m, v) in records {
            let p = by_name
                .get(name)
                .ok_or_else(|| format!("optimizer state for unknown parameter '{name}'"))?;
            if m.len() != p.len() || v.len() != p.len() {
                return Err(format!(
                    "optimizer state length mismatch for '{name}': moments {}/{}, parameter {}",
                    m.len(),
                    v.len(),
                    p.len()
                ));
            }
            self.state
                .insert(p.id(), Moments { m: m.clone(), v: v.clone() });
        }
        Ok(())
    }

    /// Applies one update to every parameter in `params` using its
    /// accumulated gradient, with learning rate `lr`, then leaves gradients
    /// untouched (call [`ParamSet::zero_grads`] afterwards).
    pub fn step_with_lr(&mut self, params: &ParamSet, lr: f32) {
        self.step += 1;
        let t = self.step as f32;
        let AdamConfig { beta1, beta2, eps, .. } = self.config;
        let bias1 = 1.0 - beta1.powf(t);
        let bias2 = 1.0 - beta2.powf(t);
        for p in params {
            self.update_param(p, lr, beta1, beta2, eps, bias1, bias2);
        }
    }

    /// One update at the configured base learning rate.
    pub fn step(&mut self, params: &ParamSet) {
        self.step_with_lr(params, self.config.lr);
    }

    #[allow(clippy::too_many_arguments)]
    fn update_param(
        &mut self,
        p: &Param,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bias1: f32,
        bias2: f32,
    ) {
        let n = p.len();
        let moments = self
            .state
            .entry(p.id())
            .or_insert_with(|| Moments { m: vec![0.0; n], v: vec![0.0; n] });
        debug_assert_eq!(moments.m.len(), n, "parameter resized mid-training");
        p.update(|value, grad| {
            for i in 0..n {
                let g = grad[i];
                let m = &mut moments.m[i];
                let v = &mut moments.v[i];
                *m = beta1 * *m + (1.0 - beta1) * g;
                *v = beta2 * *v + (1.0 - beta2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

/// The Noam learning-rate schedule:
/// `lr(step) = factor * d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)`.
#[derive(Clone, Copy, Debug)]
pub struct NoamSchedule {
    pub factor: f32,
    pub d_model: usize,
    pub warmup_steps: u64,
}

impl NoamSchedule {
    pub fn new(factor: f32, d_model: usize, warmup_steps: u64) -> Self {
        assert!(warmup_steps > 0, "Noam warmup must be positive");
        NoamSchedule { factor, d_model, warmup_steps }
    }

    /// Learning rate at 1-indexed `step`.
    pub fn lr(&self, step: u64) -> f32 {
        let step = step.max(1) as f32;
        let warmup = self.warmup_steps as f32;
        self.factor
            * (self.d_model as f32).powf(-0.5)
            * step.powf(-0.5).min(step * warmup.powf(-1.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Two optimizers with the same moments and step count produce the
    /// same update — the property full-state training resume relies on.
    #[test]
    fn moment_export_import_reproduces_updates() {
        let mut s1 = ParamSet::new();
        let p1 = s1.add("x", Tensor::scalar(1.0));
        let mut adam = Adam::new(AdamConfig::default());
        for _ in 0..5 {
            s1.zero_grads();
            p1.accumulate_grad(&Tensor::scalar(0.3));
            adam.step(&s1);
        }
        let exported = adam.export_moments(&s1);
        assert_eq!(exported.len(), 1);

        // "Restart": fresh parameter (new id), fresh optimizer.
        let mut s2 = ParamSet::new();
        let p2 = s2.add("x", p1.value());
        let mut resumed = Adam::new(AdamConfig::default());
        resumed.set_steps(adam.steps());
        resumed.import_moments(&s2, &exported).unwrap();

        s1.zero_grads();
        p1.accumulate_grad(&Tensor::scalar(0.3));
        adam.step(&s1);
        s2.zero_grads();
        p2.accumulate_grad(&Tensor::scalar(0.3));
        resumed.step(&s2);
        assert_eq!(p1.value().item().to_bits(), p2.value().item().to_bits());
    }

    #[test]
    fn import_rejects_unknown_and_mismatched_state() {
        let mut set = ParamSet::new();
        set.add("x", Tensor::zeros(1, 2));
        let mut adam = Adam::new(AdamConfig::default());
        let unknown = vec![("y".to_string(), vec![0.0; 2], vec![0.0; 2])];
        assert!(adam.import_moments(&set, &unknown).unwrap_err().contains("unknown"));
        let short = vec![("x".to_string(), vec![0.0; 1], vec![0.0; 2])];
        assert!(adam.import_moments(&set, &short).unwrap_err().contains("length mismatch"));
    }

    /// Minimizing f(x) = (x - 3)^2 should converge to 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut set = ParamSet::new();
        let x = set.add("x", Tensor::scalar(0.0));
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..500 {
            set.zero_grads();
            let v = x.value().item();
            x.accumulate_grad(&Tensor::scalar(2.0 * (v - 3.0)));
            adam.step(&set);
        }
        assert!((x.value().item() - 3.0).abs() < 1e-2, "got {}", x.value().item());
    }

    #[test]
    fn adam_state_survives_across_param_sets() {
        let mut s1 = ParamSet::new();
        let p = s1.add("p", Tensor::scalar(1.0));
        let mut s2 = ParamSet::new();
        s2.push(p.clone());
        let mut adam = Adam::new(AdamConfig::default());
        p.accumulate_grad(&Tensor::scalar(1.0));
        adam.step(&s1);
        let after_one = p.value().item();
        p.zero_grad();
        p.accumulate_grad(&Tensor::scalar(1.0));
        adam.step(&s2); // same moments entry: no state reset
        assert_eq!(adam.steps(), 2);
        assert!(p.value().item() < after_one);
    }

    #[test]
    fn noam_warms_up_then_decays() {
        let s = NoamSchedule::new(1.0, 64, 100);
        assert!(s.lr(10) < s.lr(50));
        assert!(s.lr(50) < s.lr(100));
        assert!(s.lr(100) > s.lr(400));
        // Peak is at warmup.
        let peak = s.lr(100);
        for step in [1, 10, 99, 101, 1000] {
            assert!(s.lr(step) <= peak + 1e-9);
        }
    }

    #[test]
    fn noam_step_zero_is_safe() {
        let s = NoamSchedule::new(1.0, 64, 100);
        assert!(s.lr(0).is_finite());
    }
}
