//! Optimizers and learning-rate schedules.
//!
//! The paper trains with Adam (lr = 0.05, β₁ = 0.9, β₂ = 0.999, ε = 1e-8)
//! under the Noam schedule from "Attention Is All You Need" (§IV-A).

use std::collections::HashMap;

use crate::param::{Param, ParamSet};

/// Adam optimizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        // The paper's §IV-A settings.
        AdamConfig { lr: 0.05, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

struct Moments {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam with bias correction. Keeps first/second-moment state per parameter
/// id, so the same optimizer instance can drive several [`ParamSet`]s (the
/// forward and backward translation models in joint training).
pub struct Adam {
    config: AdamConfig,
    step: u64,
    state: HashMap<u64, Moments>,
}

impl Adam {
    pub fn new(config: AdamConfig) -> Self {
        Adam { config, step: 0, state: HashMap::new() }
    }

    /// Number of completed optimization steps.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update to every parameter in `params` using its
    /// accumulated gradient, with learning rate `lr`, then leaves gradients
    /// untouched (call [`ParamSet::zero_grads`] afterwards).
    pub fn step_with_lr(&mut self, params: &ParamSet, lr: f32) {
        self.step += 1;
        let t = self.step as f32;
        let AdamConfig { beta1, beta2, eps, .. } = self.config;
        let bias1 = 1.0 - beta1.powf(t);
        let bias2 = 1.0 - beta2.powf(t);
        for p in params {
            self.update_param(p, lr, beta1, beta2, eps, bias1, bias2);
        }
    }

    /// One update at the configured base learning rate.
    pub fn step(&mut self, params: &ParamSet) {
        self.step_with_lr(params, self.config.lr);
    }

    #[allow(clippy::too_many_arguments)]
    fn update_param(
        &mut self,
        p: &Param,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        bias1: f32,
        bias2: f32,
    ) {
        let n = p.len();
        let moments = self
            .state
            .entry(p.id())
            .or_insert_with(|| Moments { m: vec![0.0; n], v: vec![0.0; n] });
        debug_assert_eq!(moments.m.len(), n, "parameter resized mid-training");
        p.update(|value, grad| {
            for i in 0..n {
                let g = grad[i];
                let m = &mut moments.m[i];
                let v = &mut moments.v[i];
                *m = beta1 * *m + (1.0 - beta1) * g;
                *v = beta2 * *v + (1.0 - beta2) * g * g;
                let m_hat = *m / bias1;
                let v_hat = *v / bias2;
                value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
    }
}

/// The Noam learning-rate schedule:
/// `lr(step) = factor * d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)`.
#[derive(Clone, Copy, Debug)]
pub struct NoamSchedule {
    pub factor: f32,
    pub d_model: usize,
    pub warmup_steps: u64,
}

impl NoamSchedule {
    pub fn new(factor: f32, d_model: usize, warmup_steps: u64) -> Self {
        assert!(warmup_steps > 0, "Noam warmup must be positive");
        NoamSchedule { factor, d_model, warmup_steps }
    }

    /// Learning rate at 1-indexed `step`.
    pub fn lr(&self, step: u64) -> f32 {
        let step = step.max(1) as f32;
        let warmup = self.warmup_steps as f32;
        self.factor
            * (self.d_model as f32).powf(-0.5)
            * step.powf(-0.5).min(step * warmup.powf(-1.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimizing f(x) = (x - 3)^2 should converge to 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut set = ParamSet::new();
        let x = set.add("x", Tensor::scalar(0.0));
        let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..500 {
            set.zero_grads();
            let v = x.value().item();
            x.accumulate_grad(&Tensor::scalar(2.0 * (v - 3.0)));
            adam.step(&set);
        }
        assert!((x.value().item() - 3.0).abs() < 1e-2, "got {}", x.value().item());
    }

    #[test]
    fn adam_state_survives_across_param_sets() {
        let mut s1 = ParamSet::new();
        let p = s1.add("p", Tensor::scalar(1.0));
        let mut s2 = ParamSet::new();
        s2.push(p.clone());
        let mut adam = Adam::new(AdamConfig::default());
        p.accumulate_grad(&Tensor::scalar(1.0));
        adam.step(&s1);
        let after_one = p.value().item();
        p.zero_grad();
        p.accumulate_grad(&Tensor::scalar(1.0));
        adam.step(&s2); // same moments entry: no state reset
        assert_eq!(adam.steps(), 2);
        assert!(p.value().item() < after_one);
    }

    #[test]
    fn noam_warms_up_then_decays() {
        let s = NoamSchedule::new(1.0, 64, 100);
        assert!(s.lr(10) < s.lr(50));
        assert!(s.lr(50) < s.lr(100));
        assert!(s.lr(100) > s.lr(400));
        // Peak is at warmup.
        let peak = s.lr(100);
        for step in [1, 10, 99, 101, 1000] {
            assert!(s.lr(step) <= peak + 1e-9);
        }
    }

    #[test]
    fn noam_step_zero_is_safe() {
        let s = NoamSchedule::new(1.0, 64, 100);
        assert!(s.lr(0).is_finite());
    }
}
