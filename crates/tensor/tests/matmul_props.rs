//! Property tests: the blocked / row-parallel matmul kernels must equal
//! the naive triple loop *exactly* (bitwise), across random shapes
//! including degenerate (0-row, 1-row, zero inner dimension) and
//! non-multiple-of-tile sizes. The kernels keep the per-element
//! k-accumulation in ascending order precisely so this holds; a tolerance
//! here would let accumulation-order drift creep into the KV-cache
//! equivalence guarantees upstream.

use qrw_tensor::rng::StdRng;
use qrw_tensor::{Activation, Tensor, PAR_MIN_WORK};

fn random(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Naive `a[m,k] @ b[k,n]`, the reference accumulation order.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, sum);
        }
    }
    out
}

/// Naive `a[m,k] @ b[n,k]^T`.
fn naive_tb(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.rows();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a.get(i, p) * b.get(j, p);
            }
            out.set(i, j, sum);
        }
    }
    out
}

/// Naive `a[k,m]^T @ b[k,n]`.
fn naive_ta(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a.get(p, i) * b.get(p, j);
            }
            out.set(i, j, sum);
        }
    }
    out
}

fn assert_bitwise_eq(got: &Tensor, want: &Tensor, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs: {g} vs {w}"
        );
    }
}

/// Shapes chosen to straddle the 8x128 tile: degenerate rows, single
/// rows/cols, tile-exact sizes, and off-by-one around tile boundaries.
fn shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (0, 3, 4),
        (3, 0, 4),
        (3, 4, 0),
        (1, 1, 1),
        (1, 64, 3000),
        (2, 5, 1),
        (7, 9, 127),
        (8, 16, 128),
        (9, 17, 129),
        (16, 8, 256),
        (33, 31, 65),
    ]
}

#[test]
fn matmul_matches_naive_exactly() {
    let mut rng = StdRng::seed_from_u64(1);
    for (m, k, n) in shapes() {
        let a = random(&mut rng, m, k);
        let b = random(&mut rng, k, n);
        assert_bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b), &format!("matmul {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_transpose_b_matches_naive_exactly() {
    let mut rng = StdRng::seed_from_u64(2);
    for (m, k, n) in shapes() {
        let a = random(&mut rng, m, k);
        let b = random(&mut rng, n, k);
        assert_bitwise_eq(&a.matmul_transpose_b(&b), &naive_tb(&a, &b), &format!("tb {m}x{k}x{n}"));
    }
}

#[test]
fn matmul_transpose_a_matches_naive_exactly() {
    let mut rng = StdRng::seed_from_u64(3);
    for (m, k, n) in shapes() {
        let a = random(&mut rng, k, m);
        let b = random(&mut rng, k, n);
        assert_bitwise_eq(&a.matmul_transpose_a(&b), &naive_ta(&a, &b), &format!("ta {m}x{k}x{n}"));
    }
}

/// A shape big enough to cross [`PAR_MIN_WORK`] and take the threaded
/// path; per-row results must still be bitwise identical to naive.
#[test]
fn parallel_path_is_bitwise_identical() {
    let (m, k, n) = (64, 96, 512);
    assert!(m * k * n >= PAR_MIN_WORK, "shape must trigger the parallel path");
    let mut rng = StdRng::seed_from_u64(4);
    let a = random(&mut rng, m, k);
    let b = random(&mut rng, k, n);
    assert_bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b), "parallel matmul");
    let bt = random(&mut rng, n, k);
    assert_bitwise_eq(&a.matmul_transpose_b(&bt), &naive_tb(&a, &bt), "parallel tb");
    let at = random(&mut rng, k, m);
    assert_bitwise_eq(&at.matmul_transpose_a(&b), &naive_ta(&at, &b), "parallel ta");
}

/// Random fuzz over many irregular shapes (seeded loop, no external
/// proptest): every draw must agree bitwise with naive.
#[test]
fn fuzzed_shapes_match_naive() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..40 {
        let m = rng.gen_range(0..20);
        let k = rng.gen_range(0..20);
        let n = rng.gen_range(0..140);
        let a = random(&mut rng, m, k);
        let b = random(&mut rng, k, n);
        assert_bitwise_eq(&a.matmul(&b), &naive_matmul(&a, &b), &format!("fuzz {m}x{k}x{n}"));
    }
}

#[test]
fn fused_bias_act_matches_unfused() {
    let mut rng = StdRng::seed_from_u64(6);
    for (m, k, n) in [(1, 8, 40), (5, 16, 33), (0, 4, 9)] {
        let x = random(&mut rng, m, k);
        let w = random(&mut rng, k, n);
        let b = random(&mut rng, 1, n);
        let plain = x.matmul(&w).add_row_broadcast(&b);
        assert_bitwise_eq(
            &x.matmul_bias_act(&w, &b, Activation::Identity),
            &plain,
            "fused identity",
        );
        let mut relued = plain.clone();
        for v in relued.data_mut() {
            *v = v.max(0.0);
        }
        assert_bitwise_eq(&x.matmul_bias_act(&w, &b, Activation::Relu), &relued, "fused relu");
    }
}

#[test]
fn push_row_grows_incrementally() {
    let mut t = Tensor::with_row_capacity(4, 3);
    assert_eq!(t.shape(), (0, 3));
    t.push_row(&[1.0, 2.0, 3.0]);
    t.push_row(&[4.0, 5.0, 6.0]);
    assert_eq!(t.shape(), (2, 3));
    assert_eq!(t.row_slice(1), &[4.0, 5.0, 6.0]);
}
