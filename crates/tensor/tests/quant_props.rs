//! Property tests for the i8 quantization path (`qrw_tensor::quant`):
//! round-trip error bounds derived from the per-row scale, saturation
//! edge cases at the i8 boundary, and bitwise determinism of the
//! quantized matmul across thread counts — the properties the distilled
//! student's serving guarantees rest on.

use qrw_tensor::quant::{dot_i8, quantize_row, QuantizedMatrix, QuantizedRows};
use qrw_tensor::rng::StdRng;
use qrw_tensor::Tensor;

fn random_tensor(rows: usize, cols: usize, seed: u64, spread: f32) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * spread)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Round-to-nearest symmetric quantization: every element's round-trip
/// error is at most half the row's scale, for rows across many
/// magnitudes (1e-6 … 1e6) and shapes.
#[test]
fn roundtrip_error_bounded_by_half_row_scale() {
    for (seed, spread) in [(1u64, 1e-6f32), (2, 0.01), (3, 1.0), (4, 300.0), (5, 1e6)] {
        let t = random_tensor(7, 33, seed, spread);
        let q = QuantizedMatrix::from_rows(&t);
        let back = q.dequantize();
        for r in 0..t.rows() {
            let half_step = q.scales()[r] / 2.0;
            for c in 0..t.cols() {
                let err = (t.get(r, c) - back.get(r, c)).abs();
                // f32 rounding of the scale itself adds a hair of slack.
                assert!(
                    err <= half_step * 1.0001 + f32::EPSILON,
                    "spread {spread} ({r},{c}): err {err} > half-step {half_step}"
                );
            }
        }
    }
}

/// The row scale is exactly `max|row| / 127`, so the largest-magnitude
/// element always round-trips to itself (up to f32 rounding).
#[test]
fn row_max_survives_roundtrip() {
    let t = random_tensor(5, 24, 9, 2.5);
    let q = QuantizedMatrix::from_rows(&t);
    let back = q.dequantize();
    for r in 0..t.rows() {
        let (c_max, x_max) = (0..t.cols())
            .map(|c| (c, t.get(r, c)))
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        let rel = ((back.get(r, c_max) - x_max) / x_max).abs();
        assert!(rel < 1e-5, "row {r}: max element {x_max} came back {}", back.get(r, c_max));
    }
}

/// Saturation edge cases: the quantizer clamps to ±127 and never emits
/// -128 (so negating a quantized row is always exact), zero rows get a
/// zero scale and zero payload, and a single subnormal outlier cannot
/// produce out-of-range codes.
#[test]
fn saturation_edges() {
    // Extreme values clamp cleanly.
    let (q, s) = quantize_row(&[f32::MAX, -f32::MAX, 0.0]);
    assert_eq!(q, vec![127, -127, 0]);
    assert!(s.is_finite() && s > 0.0);

    // A dominant value with a tiny opposite-sign tail: tail rounds to 0.
    let (q, _) = quantize_row(&[1.0, -1e-12]);
    assert_eq!(q, vec![127, 0]);

    // All-zero (and negative-zero) rows: scale 0, payload 0 — and the
    // integer kernel then produces exact zeros rather than NaN.
    let (q, s) = quantize_row(&[0.0, -0.0, 0.0]);
    assert_eq!(s, 0.0);
    assert!(q.iter().all(|&v| v == 0));
    let m = QuantizedMatrix::from_rows(&Tensor::zeros(3, 8));
    let y = m.matmul(&random_tensor(2, 8, 10, 1.0), None);
    assert!(y.data().iter().all(|&v| v == 0.0));

    // No code ever reaches -128 across a magnitude sweep.
    for seed in 0..20u64 {
        let t = random_tensor(3, 40, seed, 10f32.powi((seed % 9) as i32 - 4));
        let m = QuantizedMatrix::from_rows(&t);
        assert!(m.data().iter().all(|&v| v > -128), "seed {seed} hit -128");
    }
}

/// `i8 × i8 → i32` accumulation cannot overflow for any realistic row
/// width: worst case per term is 127² = 16129, and the kernel's i32
/// accumulator holds 2³¹⁻¹ / 16129 ≈ 133k terms. Check the worst case
/// at a width far beyond any model dimension here.
#[test]
fn integer_accumulation_never_overflows_at_model_widths() {
    let n = 65_536;
    let a = vec![127i8; n];
    let b = vec![127i8; n];
    assert_eq!(dot_i8(&a, &b), 127 * 127 * n as i32);
    let c = vec![-127i8; n];
    assert_eq!(dot_i8(&a, &c), -127 * 127 * n as i32);
}

/// Bitwise determinism across thread counts: the integer inner loop is
/// associative and the f32 epilogue is per-element, so a 4-thread (or
/// any-thread) row split must equal the single-thread result exactly —
/// not approximately.
#[test]
fn quantized_matmul_bitwise_deterministic_across_threads() {
    for (rows, cols, outs, seed) in [(1usize, 64usize, 3000usize, 1u64), (64, 48, 96, 2), (7, 33, 17, 3)] {
        let x = random_tensor(rows, cols, seed, 1.0);
        let w = random_tensor(cols, outs, seed + 100, 0.5);
        let q = QuantizedMatrix::from_weight(&w);
        let bias: Vec<f32> = (0..outs).map(|i| (i as f32).sin()).collect();
        let one = q.matmul_with_threads(&x, Some(&bias), 1);
        let four = q.matmul_with_threads(&x, Some(&bias), 4);
        assert_eq!(one, four, "{rows}x{cols}x{outs}: 1-thread vs 4-thread bits diverged");
        for t in [2, 3, 8] {
            assert_eq!(one, q.matmul_with_threads(&x, Some(&bias), t), "{t} threads diverged");
        }
        // And across repeated runs (no hidden global state).
        assert_eq!(one, q.matmul_with_threads(&x, Some(&bias), 1));
    }
}

/// The auto-selecting entry point agrees with the explicit-thread one.
#[test]
fn auto_thread_selection_matches_serial_bits() {
    // Big enough to cross PAR_MIN_WORK (2^21 MACs): 128×128×256 = 2^22.
    let x = random_tensor(128, 128, 5, 1.0);
    let w = random_tensor(128, 256, 6, 1.0);
    let q = QuantizedMatrix::from_weight(&w);
    assert_eq!(q.matmul(&x, None), q.matmul_with_threads(&x, None, 1));
}

/// Quantized attention scores are shift-free linear maps of integer
/// dots: repeated evaluation and row-incremental growth give identical
/// bits.
#[test]
fn attention_key_cache_scores_deterministic() {
    let keys = random_tensor(12, 32, 8, 1.0);
    let all_at_once = QuantizedRows::from_tensor(&keys);
    let mut grown = QuantizedRows::new(32);
    for r in 0..keys.rows() {
        grown.push_row(keys.row_slice(r));
    }
    let (qv, qs) = quantize_row(random_tensor(1, 32, 9, 1.0).row_slice(0));
    let (mut s1, mut s2) = (Vec::new(), Vec::new());
    all_at_once.scores_into(&qv, qs, 0.25, &mut s1);
    grown.scores_into(&qv, qs, 0.25, &mut s2);
    assert_eq!(s1, s2);
    let mut s3 = Vec::new();
    all_at_once.scores_into(&qv, qs, 0.25, &mut s3);
    assert_eq!(s1, s3);
}
