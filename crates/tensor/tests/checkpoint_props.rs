//! Hostile-input property tests for `serialize::parse` / `serialize::load`.
//!
//! The checkpoint parser is the trust boundary between the filesystem and
//! the model: after a crash, whatever bytes are on disk get fed to it.
//! These tests follow the seeded-loop style of `matmul_props.rs` — random
//! parameter sets, then systematic hostility: truncation at every byte
//! boundary, every single-bit flip, oversized length prefixes, NaN
//! payloads behind valid CRCs, wrong magic/version, and plain random
//! garbage. The invariant throughout: `parse` returns a typed
//! [`CheckpointError`] or a faithful record list — it never panics and
//! never silently yields wrong tensors.

use qrw_tensor::param::ParamSet;
use qrw_tensor::rng::StdRng;
use qrw_tensor::serialize::{self, crc32, CheckpointError};
use qrw_tensor::Tensor;

/// A random parameter set: 1–5 params, random names, shapes up to 6×6.
fn random_set(rng: &mut StdRng) -> ParamSet {
    let mut set = ParamSet::new();
    let n_params = 1 + (rng.next_u64() % 5) as usize;
    for i in 0..n_params {
        let rows = 1 + (rng.next_u64() % 6) as usize;
        let cols = 1 + (rng.next_u64() % 6) as usize;
        let data = (0..rows * cols).map(|_| rng.gen::<f32>() * 8.0 - 4.0).collect();
        // Exercise non-ASCII names too: the format stores UTF-8.
        let name = if i == 0 { format!("wé.{i}") } else { format!("layer{i}.w") };
        set.add(&name, Tensor::from_vec(rows, cols, data));
    }
    set
}

#[test]
fn roundtrip_is_bitwise_exact_for_random_sets() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..50 {
        let src = random_set(&mut rng);
        let bytes = serialize::save(&src);
        let records = serialize::parse(&bytes).unwrap();
        assert_eq!(records.len(), src.len());
        for (p, (name, tensor)) in src.iter().zip(&records) {
            assert_eq!(&p.name(), name);
            // Bitwise, not approximate: resume guarantees depend on it.
            let a: Vec<u32> = p.value().data().iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = tensor.data().iter().map(|x| x.to_bits()).collect();
            assert_eq!(a, b);
        }
    }
}

#[test]
fn truncation_at_every_byte_boundary_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..10 {
        let bytes = serialize::save(&random_set(&mut rng));
        for cut in 0..bytes.len() {
            assert!(
                serialize::parse(&bytes[..cut]).is_err(),
                "prefix of length {cut}/{} parsed successfully",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for _ in 0..3 {
        let bytes = serialize::save(&random_set(&mut rng));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    serialize::parse(&corrupt).is_err(),
                    "bit flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }
}

#[test]
fn oversized_length_prefixes_fail_cleanly_without_allocation_blowup() {
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let bytes = serialize::save(&random_set(&mut rng));
    // Each u32 position in the buffer, patched to huge values: record
    // count, name lengths, rows, cols — whichever this offset happens to
    // be, the parser must neither panic nor try to reserve 4 GiB.
    for offset in (8..bytes.len().saturating_sub(4)).step_by(4) {
        for huge in [u32::MAX, u32::MAX / 2, 1 << 30] {
            let mut patched = bytes.clone();
            patched[offset..offset + 4].copy_from_slice(&huge.to_le_bytes());
            assert!(serialize::parse(&patched).is_err(), "huge prefix at {offset} accepted");
        }
    }
}

#[test]
fn wrong_magic_and_versions_are_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0x514);
    let good = serialize::save(&random_set(&mut rng));
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"ELF\x7f");
    assert_eq!(serialize::parse(&bad_magic).unwrap_err(), CheckpointError::BadMagic);
    for v in [0u32, 3, 4, 255, u32::MAX] {
        let mut bad_version = good.clone();
        bad_version[4..8].copy_from_slice(&v.to_le_bytes());
        assert_eq!(
            serialize::parse(&bad_version).unwrap_err(),
            CheckpointError::UnsupportedVersion(v)
        );
    }
}

/// Hand-rolls a v2 buffer (per the documented layout) holding a single
/// 1×2 record with an arbitrary payload, CRCs valid.
fn craft_v2(name: &str, payload: [f32; 2]) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(b"QRWT");
    buf.extend_from_slice(&2u32.to_le_bytes());
    buf.extend_from_slice(&1u32.to_le_bytes());
    let mut record = Vec::new();
    record.extend_from_slice(&(name.len() as u32).to_le_bytes());
    record.extend_from_slice(name.as_bytes());
    record.extend_from_slice(&1u32.to_le_bytes());
    record.extend_from_slice(&2u32.to_le_bytes());
    for x in payload {
        record.extend_from_slice(&x.to_le_bytes());
    }
    let rec_crc = crc32(&record);
    record.extend_from_slice(&rec_crc.to_le_bytes());
    buf.extend_from_slice(&record);
    let file_crc = crc32(&buf);
    buf.extend_from_slice(&file_crc.to_le_bytes());
    buf
}

#[test]
fn nan_and_inf_payloads_are_rejected_even_with_valid_crcs() {
    // The finiteness gate must fire on its own — these buffers pass every
    // checksum.
    for evil in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        for slot in 0..2 {
            let mut payload = [1.0f32, -2.0];
            payload[slot] = evil;
            let err = serialize::parse(&craft_v2("w", payload)).unwrap_err();
            assert_eq!(err, CheckpointError::NonFinite { name: "w".into() });
        }
    }
    // Control: the crafted layout itself is valid.
    assert_eq!(serialize::parse(&craft_v2("w", [1.0, -2.0])).unwrap().len(), 1);
}

#[test]
fn trailing_bytes_after_exact_frame_are_rejected() {
    let mut buf = craft_v2("w", [0.5, 0.5]);
    buf.extend_from_slice(b"junk");
    // Appending garbage breaks the file CRC position; whichever typed
    // error fires, the buffer must not parse.
    assert!(serialize::parse(&buf).is_err());
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for _ in 0..2000 {
        let len = (rng.next_u64() % 256) as usize;
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = serialize::parse(&garbage); // must return, not panic
    }
    // Garbage behind a valid header prefix, too.
    for _ in 0..2000 {
        let len = (rng.next_u64() % 256) as usize;
        let mut buf = b"QRWT\x02\x00\x00\x00".to_vec();
        buf.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
        let _ = serialize::parse(&buf);
    }
}

#[test]
fn load_rejects_corrupt_buffers_without_mutating_params() {
    let mut rng = StdRng::seed_from_u64(0x5AFE);
    for _ in 0..10 {
        let src = random_set(&mut rng);
        let mut bytes = serialize::save(&src);
        let victim = (rng.next_u64() as usize) % bytes.len();
        bytes[victim] ^= 0x08;
        let dst = random_set(&mut rng);
        let before: Vec<Vec<u32>> = dst
            .iter()
            .map(|p| p.value().data().iter().map(|x| x.to_bits()).collect())
            .collect();
        assert!(serialize::load(&dst, &bytes).is_err());
        let after: Vec<Vec<u32>> = dst
            .iter()
            .map(|p| p.value().data().iter().map(|x| x.to_bits()).collect())
            .collect();
        assert_eq!(before, after, "corrupt load mutated parameters");
    }
}
