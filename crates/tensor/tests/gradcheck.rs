//! Finite-difference gradient checks for every tape op.
//!
//! For each op we build a scalar loss through it, compute analytic parameter
//! gradients with `Tape::backward`, and compare against central differences.
//! Shapes and values are randomized (seeded, reproducible) where it adds
//! coverage.

use qrw_tensor::rng::StdRng;

use qrw_tensor::init;
use qrw_tensor::tape::{Tape, Var};
use qrw_tensor::tensor::Tensor;
use qrw_tensor::Param;

/// Central-difference check: for every scalar in every param, perturb and
/// compare the analytic gradient. `f` must rebuild the loss from scratch.
fn check_grads(params: &[Param], f: &dyn Fn() -> f32, compute_analytic: &dyn Fn(), tol: f32) {
    for p in params {
        p.zero_grad();
    }
    compute_analytic();
    const H: f32 = 1e-2;
    for p in params {
        let analytic = p.grad();
        let base = p.value();
        for i in 0..base.len() {
            let mut plus = base.clone();
            plus.data_mut()[i] += H;
            p.set_value(plus);
            let f_plus = f();
            let mut minus = base.clone();
            minus.data_mut()[i] -= H;
            p.set_value(minus);
            let f_minus = f();
            p.set_value(base.clone());
            let numeric = (f_plus - f_minus) / (2.0 * H);
            let a = analytic.data()[i];
            let denom = 1.0f32.max(a.abs()).max(numeric.abs());
            assert!(
                (a - numeric).abs() / denom < tol,
                "param '{}' [{}]: analytic {a}, numeric {numeric}",
                p.name(),
                i
            );
        }
    }
}

/// Reduce any matrix node to a scalar via a fixed quadratic form, so the
/// gradient exercises every entry with distinct weights.
fn to_scalar<'t>(tape: &'t Tape, x: Var<'t>) -> Var<'t> {
    let (r, c) = x.shape();
    let weights: Vec<f32> = (0..r * c).map(|i| 0.1 * (i as f32 + 1.0)).collect();
    let w = tape.constant(Tensor::from_vec(c, 1, weights[..c].to_vec()));
    let col = x.matmul(w); // r x 1
    let picker: Vec<f32> = (0..r).map(|i| 0.3 * (i as f32 + 1.0)).collect();
    let pick = tape.constant(Tensor::from_vec(1, r, picker));
    pick.matmul(col)
}

fn rand_param(seed: u64, name: &str, rows: usize, cols: usize) -> Param {
    let mut rng = StdRng::seed_from_u64(seed);
    Param::new(name, init::uniform(&mut rng, rows, cols, 1.0))
}

macro_rules! gradcheck {
    ($name:ident, $params:expr, $build:expr) => {
        #[test]
        fn $name() {
            let params: Vec<Param> = $params;
            let build: for<'t> fn(&'t Tape, &[Param]) -> Var<'t> = $build;
            let f = || {
                let tape = Tape::new();
                build(&tape, &params).item()
            };
            let analytic = || {
                let tape = Tape::new();
                let loss = build(&tape, &params);
                tape.backward(loss);
            };
            check_grads(&params, &f, &analytic, 2e-2);
        }
    };
}

gradcheck!(add_grad, vec![rand_param(1, "a", 2, 3), rand_param(2, "b", 2, 3)], |tape: &Tape,
                                                                                ps: &[Param]| {
    let a = tape.param(&ps[0]);
    let b = tape.param(&ps[1]);
    to_scalar(tape, a.add(b))
});

gradcheck!(sub_grad, vec![rand_param(3, "a", 2, 2), rand_param(4, "b", 2, 2)], |tape: &Tape,
                                                                                ps: &[Param]| {
    let a = tape.param(&ps[0]);
    let b = tape.param(&ps[1]);
    to_scalar(tape, a.sub(b))
});

gradcheck!(mul_grad, vec![rand_param(5, "a", 3, 2), rand_param(6, "b", 3, 2)], |tape: &Tape,
                                                                                ps: &[Param]| {
    let a = tape.param(&ps[0]);
    let b = tape.param(&ps[1]);
    to_scalar(tape, a.mul(b))
});

gradcheck!(
    add_broadcast_row_grad,
    vec![rand_param(7, "x", 3, 4), rand_param(8, "row", 1, 4)],
    |tape: &Tape, ps: &[Param]| {
        let x = tape.param(&ps[0]);
        let row = tape.param(&ps[1]);
        to_scalar(tape, x.add_broadcast_row(row))
    }
);

gradcheck!(affine_grad, vec![rand_param(9, "x", 2, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.affine(1.7, -0.3))
});

gradcheck!(
    matmul_grad,
    vec![rand_param(10, "a", 2, 3), rand_param(11, "b", 3, 4)],
    |tape: &Tape, ps: &[Param]| {
        let a = tape.param(&ps[0]);
        let b = tape.param(&ps[1]);
        to_scalar(tape, a.matmul(b))
    }
);

gradcheck!(
    matmul_transpose_b_grad,
    vec![rand_param(12, "a", 2, 3), rand_param(13, "b", 4, 3)],
    |tape: &Tape, ps: &[Param]| {
        let a = tape.param(&ps[0]);
        let b = tape.param(&ps[1]);
        to_scalar(tape, a.matmul_transpose_b(b))
    }
);

gradcheck!(transpose_grad, vec![rand_param(14, "x", 2, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.transpose())
});

gradcheck!(softmax_grad, vec![rand_param(15, "x", 2, 4)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.row_softmax())
});

gradcheck!(log_softmax_grad, vec![rand_param(16, "x", 2, 4)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.row_log_softmax())
});

gradcheck!(cross_entropy_grad, vec![rand_param(17, "logits", 3, 5)], |tape: &Tape,
                                                                      ps: &[Param]| {
    let logits = tape.param(&ps[0]);
    logits.cross_entropy_sum(&[2, 0, 4], &[1.0, 0.5, 1.0])
});

gradcheck!(
    cross_entropy_smoothed_grad,
    vec![rand_param(45, "logits", 3, 5)],
    |tape: &Tape, ps: &[Param]| {
        let logits = tape.param(&ps[0]);
        logits.cross_entropy_sum_smoothed(&[2, 0, 4], &[1.0, 0.5, 1.0], 0.1)
    }
);

gradcheck!(relu_grad, vec![rand_param(18, "x", 2, 4)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    // Shift away from the kink at 0 so finite differences are valid.
    to_scalar(tape, x.affine(1.0, 0.3).relu())
});

gradcheck!(sigmoid_grad, vec![rand_param(19, "x", 2, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.sigmoid())
});

gradcheck!(tanh_grad, vec![rand_param(20, "x", 2, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.tanh())
});

gradcheck!(
    layer_norm_grad,
    vec![rand_param(21, "x", 3, 6), rand_param(22, "gain", 1, 6), rand_param(23, "bias", 1, 6)],
    |tape: &Tape, ps: &[Param]| {
        let x = tape.param(&ps[0]);
        let gain = tape.param(&ps[1]);
        let bias = tape.param(&ps[2]);
        to_scalar(tape, x.layer_norm(gain, bias))
    }
);

gradcheck!(
    concat_cols_grad,
    vec![rand_param(24, "a", 2, 2), rand_param(25, "b", 2, 3)],
    |tape: &Tape, ps: &[Param]| {
        let a = tape.param(&ps[0]);
        let b = tape.param(&ps[1]);
        to_scalar(tape, Var::concat_cols(&[a, b]))
    }
);

gradcheck!(slice_cols_grad, vec![rand_param(26, "x", 2, 5)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.slice_cols(1, 3))
});

gradcheck!(slice_rows_grad, vec![rand_param(27, "x", 4, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.slice_rows(1, 2))
});

gradcheck!(
    stack_rows_grad,
    vec![rand_param(28, "a", 1, 3), rand_param(29, "b", 2, 3)],
    |tape: &Tape, ps: &[Param]| {
        let a = tape.param(&ps[0]);
        let b = tape.param(&ps[1]);
        to_scalar(tape, Var::stack_rows(&[a, b]))
    }
);

gradcheck!(mean_rows_grad, vec![rand_param(30, "x", 3, 4)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    to_scalar(tape, x.mean_rows())
});

gradcheck!(
    add_n_grad,
    vec![rand_param(31, "a", 2, 2), rand_param(32, "b", 2, 2), rand_param(33, "c", 2, 2)],
    |tape: &Tape, ps: &[Param]| {
        let vars: Vec<_> = ps.iter().map(|p| tape.param(p)).collect();
        to_scalar(tape, Var::add_n(&vars))
    }
);

gradcheck!(
    log_sum_exp_scalars_grad,
    vec![rand_param(34, "a", 1, 1), rand_param(35, "b", 1, 1), rand_param(36, "c", 1, 1)],
    |tape: &Tape, ps: &[Param]| {
        let vars: Vec<_> = ps.iter().map(|p| tape.param(p)).collect();
        Var::log_sum_exp_scalars(&vars)
    }
);

gradcheck!(gather_rows_grad, vec![rand_param(37, "emb", 5, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.gather_rows(&ps[0], &[4, 1, 1, 0]);
    to_scalar(tape, x)
});

gradcheck!(dropout_mask_grad, vec![rand_param(38, "x", 2, 4)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    let mask = Tensor::from_vec(2, 4, vec![2.0, 0.0, 2.0, 2.0, 0.0, 2.0, 2.0, 0.0]);
    to_scalar(tape, x.dropout_mask(mask))
});

gradcheck!(add_const_grad, vec![rand_param(39, "x", 2, 3)], |tape: &Tape, ps: &[Param]| {
    let x = tape.param(&ps[0]);
    let c = Tensor::from_vec(2, 3, vec![0.5, -0.25, 1.0, 0.0, 2.0, -1.0]);
    to_scalar(tape, x.add_const(&c))
});

// A composed check resembling one attention head: the kind of graph the
// models actually build.
gradcheck!(
    attention_composite_grad,
    vec![rand_param(40, "q", 3, 4), rand_param(41, "k", 5, 4), rand_param(42, "v", 5, 4)],
    |tape: &Tape, ps: &[Param]| {
        let q = tape.param(&ps[0]);
        let k = tape.param(&ps[1]);
        let v = tape.param(&ps[2]);
        let scores = q.matmul_transpose_b(k).scale(0.5);
        let attn = scores.row_softmax();
        to_scalar(tape, attn.matmul(v))
    }
);

// Matmul gradients hold across random shapes (16 seeded cases).
#[test]
fn prop_matmul_gradcheck() {
    let mut rng = StdRng::seed_from_u64(0x3A73);
    for _ in 0..16 {
        let m = rng.gen_range(1usize..4);
        let k = rng.gen_range(1usize..4);
        let n = rng.gen_range(1usize..4);
        let seed = rng.gen_range(0u64..1000);
        let a = rand_param(seed, "a", m, k);
        let b = rand_param(seed.wrapping_add(1), "b", k, n);
        let params = vec![a, b];
        let build: for<'t> fn(&'t Tape, &[Param]) -> Var<'t> = |tape, ps| {
            let a = tape.param(&ps[0]);
            let b = tape.param(&ps[1]);
            to_scalar(tape, a.matmul(b))
        };
        let f = || {
            let t = Tape::new();
            build(&t, &params).item()
        };
        let analytic = || {
            let t = Tape::new();
            let l = build(&t, &params);
            t.backward(l);
        };
        check_grads(&params, &f, &analytic, 3e-2);
    }
}

// Softmax rows always sum to 1 on tape values too.
#[test]
fn prop_tape_softmax_rows_sum_to_one() {
    let mut rng = StdRng::seed_from_u64(0x50F7);
    for _ in 0..16 {
        let rows = rng.gen_range(1usize..5);
        let cols = rng.gen_range(1usize..6);
        let p = rand_param(rng.gen_range(0u64..1000), "x", rows, cols);
        let tape = Tape::new();
        let s = tape.param(&p).row_softmax().value();
        for r in 0..rows {
            let sum: f32 = s.row_slice(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }
}

// Cross-entropy via the fused op equals -sum(w * log_softmax[target]).
#[test]
fn prop_cross_entropy_consistent() {
    let mut rng = StdRng::seed_from_u64(0xCE11);
    for _ in 0..16 {
        let rows = rng.gen_range(1usize..4);
        let cols = rng.gen_range(2usize..6);
        let seed = rng.gen_range(0u64..1000);
        let p = rand_param(seed, "logits", rows, cols);
        let targets: Vec<usize> = (0..rows).map(|r| (seed as usize + r) % cols).collect();
        let weights = vec![1.0; rows];
        let tape = Tape::new();
        let logits = tape.param(&p);
        let fused = logits.cross_entropy_sum(&targets, &weights).item();
        let logp = p.value().row_log_softmax();
        let manual: f32 = targets.iter().enumerate().map(|(r, &t)| -logp.get(r, t)).sum();
        assert!((fused - manual).abs() < 1e-4);
    }
}
