//! Figure 5 / §III-H bench: retrieval cost of separate syntax trees vs the
//! merged tree over the synthetic item index.

use qrw_bench::harness::{bench, group};
use qrw_data::{ClickLog, LogConfig};
use qrw_search::{InvertedIndex, QueryTree};

fn setup() -> (InvertedIndex, Vec<Vec<String>>) {
    let log = ClickLog::generate(&LogConfig::default());
    let index =
        InvertedIndex::build(log.catalog.items.iter().map(|i| i.title_tokens.clone()));
    // An original query plus rewrites sharing most tokens (the production
    // pattern §III-H exploits).
    let queries = vec![
        toks("red shoes men"),
        toks("red footwear men"),
        toks("red shoes senior"),
        toks("black shoes men"),
    ];
    (index, queries)
}

fn toks(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn main() {
    let (index, queries) = setup();

    group("fig5_retrieval");
    let trees: Vec<QueryTree> = queries.iter().map(|q| QueryTree::and_of_tokens(q)).collect();
    bench("separate_trees", 3, 30, || {
        for t in &trees {
            std::hint::black_box(t.evaluate(&index));
        }
    });
    let positional = QueryTree::merge_positional(&queries);
    bench("merged_positional", 3, 30, || {
        std::hint::black_box(positional.evaluate(&index));
    });
    let factored = QueryTree::merge_factored(&queries);
    bench("merged_factored", 3, 30, || {
        std::hint::black_box(factored.evaluate(&index));
    });

    group("fig5_construction");
    bench("merge_positional", 3, 30, || {
        std::hint::black_box(QueryTree::merge_positional(&queries));
    });
    bench("merge_factored", 3, 30, || {
        std::hint::black_box(QueryTree::merge_factored(&queries));
    });
}
