//! Figure 5 / §III-H bench: retrieval cost of separate syntax trees vs the
//! merged tree over the synthetic item index.

use criterion::{criterion_group, criterion_main, Criterion};

use qrw_data::{ClickLog, LogConfig};
use qrw_search::{InvertedIndex, QueryTree};

fn setup() -> (InvertedIndex, Vec<Vec<String>>) {
    let log = ClickLog::generate(&LogConfig::default());
    let index =
        InvertedIndex::build(log.catalog.items.iter().map(|i| i.title_tokens.clone()));
    // An original query plus rewrites sharing most tokens (the production
    // pattern §III-H exploits).
    let queries = vec![
        toks("red shoes men"),
        toks("red footwear men"),
        toks("red shoes senior"),
        toks("black shoes men"),
    ];
    (index, queries)
}

fn toks(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn bench_tree_strategies(c: &mut Criterion) {
    let (index, queries) = setup();
    let mut group = c.benchmark_group("fig5_retrieval");

    group.bench_function("separate_trees", |b| {
        let trees: Vec<QueryTree> =
            queries.iter().map(|q| QueryTree::and_of_tokens(q)).collect();
        b.iter(|| {
            for t in &trees {
                std::hint::black_box(t.evaluate(&index));
            }
        });
    });

    group.bench_function("merged_positional", |b| {
        let merged = QueryTree::merge_positional(&queries);
        b.iter(|| std::hint::black_box(merged.evaluate(&index)));
    });

    group.bench_function("merged_factored", |b| {
        let merged = QueryTree::merge_factored(&queries);
        b.iter(|| std::hint::black_box(merged.evaluate(&index)));
    });

    group.finish();
}

fn bench_tree_construction(c: &mut Criterion) {
    let (_, queries) = setup();
    let mut group = c.benchmark_group("fig5_construction");
    group.bench_function("merge_positional", |b| {
        b.iter(|| std::hint::black_box(QueryTree::merge_positional(&queries)));
    });
    group.bench_function("merge_factored", |b| {
        b.iter(|| std::hint::black_box(QueryTree::merge_factored(&queries)));
    });
    group.finish();
}

criterion_group!(benches, bench_tree_strategies, bench_tree_construction);
criterion_main!(benches);
