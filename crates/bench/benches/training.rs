//! Training-cost ablation bench: one warm-up step (L_f + L_b only) vs one
//! cyclic step (adds sampling k synthetic titles and the L_c term) —
//! quantifying why Algorithm 1 defers the cyclic term ("we find this step
//! is much more time consuming than other steps", §III-D).

use qrw_bench::experiment::{make_joint, ExperimentData, Scale};
use qrw_bench::harness::{bench, group};
use qrw_core::{CyclicTrainer, TrainConfig, TrainMode};

fn main() {
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);

    // A "step" here is a full single-step training run, isolating the
    // marginal cost of the cyclic term via the warm-up boundary.
    let one_step = |warmup: u64, batch_size: usize, parallel: bool| {
        let model = make_joint(data.vocab_size(), 9);
        let cfg = TrainConfig {
            steps: 1,
            warmup_steps: warmup,
            batch_size,
            eval_every: 0,
            top_n: 6,
            parallel,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, model.forward.config().d_model);
        let eval = data.eval_pairs(2);
        trainer.train(&model, &data.dataset.q2t, &eval, TrainMode::Joint);
    };

    group("algorithm1_step");
    bench("warmup_step_lf_lb_only", 1, 10, || one_step(10, 4, false)); // step 1 <= warmup 10
    bench("cyclic_step_with_lc", 1, 10, || one_step(0, 4, false)); // warmup over: cyclic active

    group("parallel_batch");
    bench("serial_batch8", 1, 10, || one_step(0, 8, false));
    bench("parallel_batch8", 1, 10, || one_step(0, 8, true));
}
