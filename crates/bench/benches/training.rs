//! Training-cost ablation bench: one warm-up step (L_f + L_b only) vs one
//! cyclic step (adds sampling k synthetic titles and the L_c term) —
//! quantifying why Algorithm 1 defers the cyclic term ("we find this step
//! is much more time consuming than other steps", §III-D).

use criterion::{criterion_group, criterion_main, Criterion};

use qrw_bench::experiment::{make_joint, ExperimentData, Scale};
use qrw_core::{CyclicTrainer, TrainConfig, TrainMode};

fn bench_training_steps(c: &mut Criterion) {
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);
    let mut group = c.benchmark_group("algorithm1_step");
    group.sample_size(10);

    // A "step" here is a full single-step training run, isolating the
    // marginal cost of the cyclic term via the warm-up boundary.
    let one_step = |warmup: u64, mode: TrainMode| {
        let model = make_joint(data.vocab_size(), 9);
        let cfg = TrainConfig {
            steps: 1,
            warmup_steps: warmup,
            batch_size: 4,
            eval_every: 0,
            top_n: 6,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, model.forward.config().d_model);
        let eval = data.eval_pairs(2);
        trainer.train(&model, &data.dataset.q2t, &eval, mode);
    };

    group.bench_function("warmup_step_lf_lb_only", |b| {
        b.iter(|| one_step(10, TrainMode::Joint)); // step 1 <= warmup 10
    });

    group.bench_function("cyclic_step_with_lc", |b| {
        b.iter(|| one_step(0, TrainMode::Joint)); // warmup over: cyclic active
    });

    group.finish();
}

/// Serial vs crossbeam-parallel batch execution of one cyclic step.
fn bench_parallel_batch(c: &mut Criterion) {
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);
    let mut group = c.benchmark_group("parallel_batch");
    group.sample_size(10);

    let one_step = |parallel: bool| {
        let model = make_joint(data.vocab_size(), 9);
        let cfg = TrainConfig {
            steps: 1,
            warmup_steps: 0,
            batch_size: 8,
            eval_every: 0,
            top_n: 6,
            parallel,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, model.forward.config().d_model);
        let eval = data.eval_pairs(2);
        trainer.train(&model, &data.dataset.q2t, &eval, TrainMode::Joint);
    };

    group.bench_function("serial_batch8", |b| b.iter(|| one_step(false)));
    group.bench_function("parallel_batch8", |b| b.iter(|| one_step(true)));
    group.finish();
}

criterion_group!(benches, bench_training_steps, bench_parallel_batch);
criterion_main!(benches);
