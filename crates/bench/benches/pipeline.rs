//! §III-G serving bench: the two-hop neural pipeline vs the distilled
//! direct q2q model vs the precomputed KV cache — the latency ladder that
//! motivates the paper's online architecture.

use criterion::{criterion_group, criterion_main, Criterion};

use qrw_bench::experiment::{make_joint, ExperimentData, Scale};
use qrw_core::{Q2QRewriter, QueryRewriter, RewritePipeline};
use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_search::RewriteCache;

fn bench_serving_ladder(c: &mut Criterion) {
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);
    let vocab = &data.dataset.vocab;
    let joint = make_joint(data.vocab_size(), 5);
    let q2q = Seq2Seq::new(ModelConfig::hybrid(data.vocab_size()), 6);

    let query = data.log.queries[0].tokens.clone();

    let mut group = c.benchmark_group("serving_ladder");
    group.sample_size(10);

    group.bench_function("two_hop_pipeline", |b| {
        let pipeline = RewritePipeline::new(&joint, vocab, 3, 8, 1);
        b.iter(|| std::hint::black_box(pipeline.rewrite(&query, 3)));
    });

    group.bench_function("q2q_direct_hybrid", |b| {
        let rw = Q2QRewriter::new(&q2q, vocab, 8, 2);
        b.iter(|| std::hint::black_box(rw.rewrite(&query, 3)));
    });

    group.bench_function("kv_cache_hit", |b| {
        let cache = RewriteCache::new();
        cache.insert(&query, vec![vec!["senior".to_string(), "smartphone".to_string()]]);
        b.iter(|| std::hint::black_box(cache.get(&query)));
    });

    group.finish();
}

criterion_group!(benches, bench_serving_ladder);
criterion_main!(benches);
