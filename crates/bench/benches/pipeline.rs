//! §III-G serving bench: the two-hop neural pipeline vs the distilled
//! direct q2q model vs the precomputed KV cache — the latency ladder that
//! motivates the paper's online architecture.

use qrw_bench::experiment::{make_joint, ExperimentData, Scale};
use qrw_bench::harness::{bench, group};
use qrw_core::{Q2QRewriter, QueryRewriter, RewritePipeline};
use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_search::RewriteCache;

fn main() {
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);
    let vocab = &data.dataset.vocab;
    let joint = make_joint(data.vocab_size(), 5);
    let q2q = Seq2Seq::new(ModelConfig::hybrid(data.vocab_size()), 6);

    let query = data.log.queries[0].tokens.clone();

    group("serving_ladder");

    let pipeline = RewritePipeline::new(&joint, vocab, 3, 8, 1);
    bench("two_hop_pipeline", 1, 10, || {
        std::hint::black_box(pipeline.rewrite(&query, 3));
    });

    let rw = Q2QRewriter::new(&q2q, vocab, 8, 2);
    bench("q2q_direct_hybrid", 1, 10, || {
        std::hint::black_box(rw.rewrite(&query, 3));
    });

    let cache = RewriteCache::new();
    cache.insert(&query, vec![vec!["senior".to_string(), "smartphone".to_string()]]);
    bench("kv_cache_hit", 10, 100, || {
        std::hint::black_box(cache.get(&query));
    });
}
