//! Table V bench: encoder/decoder latency of RNN / GRU / Transformer
//! components at the paper's measurement configuration (1 layer,
//! vocabulary 3000, beam 3, max 15 decode steps).

use qrw_bench::harness::{bench, group};
use qrw_nmt::{ComponentKind, ModelConfig, Seq2Seq};
use qrw_text::BOS;

fn latency_models() -> Vec<(ComponentKind, Seq2Seq)> {
    [ComponentKind::Rnn, ComponentKind::Gru, ComponentKind::Transformer]
        .into_iter()
        .map(|kind| (kind, Seq2Seq::new(ModelConfig::latency_bench(kind, kind), 99)))
        .collect()
}

fn main() {
    let src: Vec<usize> = (10..22).collect();

    group("table5_encoder");
    for (kind, model) in latency_models() {
        bench(&format!("encode/{kind:?}"), 2, 20, || {
            std::hint::black_box(model.encode(&src));
        });
    }

    group("table5_decoder");
    for (kind, model) in latency_models() {
        let memory = model.encode(&src);
        bench(&format!("decode/{kind:?}"), 1, 10, || {
            // Beam 3 x 15 steps, the Table V decoding workload.
            for beam in 0..3usize {
                let mut state = model.start_state(&memory);
                let mut prefix = vec![BOS];
                for step in 0..15usize {
                    let lp = model.next_log_probs(&memory, &mut state, &prefix);
                    std::hint::black_box(&lp);
                    prefix.push(10 + ((step + beam) % 12));
                }
            }
        });
    }
}
