//! Table V bench: encoder/decoder latency of RNN / GRU / Transformer
//! components at the paper's measurement configuration (1 layer,
//! vocabulary 3000, beam 3, max 15 decode steps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qrw_nmt::{ComponentKind, ModelConfig, Seq2Seq};
use qrw_text::BOS;

fn latency_models() -> Vec<(ComponentKind, Seq2Seq)> {
    [ComponentKind::Rnn, ComponentKind::Gru, ComponentKind::Transformer]
        .into_iter()
        .map(|kind| (kind, Seq2Seq::new(ModelConfig::latency_bench(kind, kind), 99)))
        .collect()
}

fn bench_encoders(c: &mut Criterion) {
    let src: Vec<usize> = (10..22).collect();
    let mut group = c.benchmark_group("table5_encoder");
    for (kind, model) in latency_models() {
        group.bench_with_input(BenchmarkId::from_parameter(kind), &model, |b, m| {
            b.iter(|| std::hint::black_box(m.encode(&src)));
        });
    }
    group.finish();
}

fn bench_decoders(c: &mut Criterion) {
    let src: Vec<usize> = (10..22).collect();
    let mut group = c.benchmark_group("table5_decoder");
    group.sample_size(10);
    for (kind, model) in latency_models() {
        let memory = model.encode(&src);
        group.bench_with_input(BenchmarkId::from_parameter(kind), &model, |b, m| {
            b.iter(|| {
                // Beam 3 x 15 steps, the Table V decoding workload.
                for beam in 0..3usize {
                    let mut state = m.start_state(&memory);
                    let mut prefix = vec![BOS];
                    for step in 0..15usize {
                        let lp = m.next_log_probs(&memory, &mut state, &prefix);
                        std::hint::black_box(&lp);
                        prefix.push(10 + ((step + beam) % 12));
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encoders, bench_decoders);
criterion_main!(benches);
