//! # qrw-bench
//!
//! The experiment harness of the reproduction: [`experiment`] builds and
//! trains every model once, [`tables`] and [`figures`] regenerate each of
//! the paper's tables (I–VIII) and figures (5–9). The `repro` binary
//! drives them; the dependency-free [`harness`] times the benches under
//! `benches/` covering the latency-sensitive pieces (Table V, Figure 5,
//! §III-G serving).

pub mod ablations;
pub mod experiment;
pub mod figures;
pub mod harness;
pub mod tables;

pub use experiment::{ExperimentData, Scale, System};
