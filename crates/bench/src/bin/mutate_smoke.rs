//! Mutate-while-serving smoke run, persisting `BENCH_mutate.json`.
//!
//! Wired into `scripts/verify.sh --mutate-smoke`. Four stages:
//!
//! * **frozen vs pinned** — the same request sequence served sequentially
//!   against a frozen `InvertedIndex` engine and an epoch-pinned live
//!   catalog with no churn. Responses must be byte-identical (both serve
//!   epoch 0) and the pin protocol's overhead must stay inside a generous
//!   in-run bar ([`MAX_PIN_OVERHEAD`]).
//! * **churn** — a paced writer publishes a deterministic mutation-batch
//!   stream while the reader serves; per-request latency percentiles and
//!   the epoch lifecycle counters (published / reclaimed) are recorded.
//!   Every response is then re-derived against a serial rebuild of the
//!   epoch it pinned and must match **byte for byte** — the torn-read
//!   invariant, enforced on real bench traffic.
//! * **recovery** — the commit stream is killed mid-epoch; the time for
//!   `CatalogWriter::recover` to restore the last sealed epoch (verified
//!   bit-for-bit by fingerprint) is recorded.
//! * **kill-point sweep** (`--sweep`, gated under the verify time
//!   budget) — kills a small catalog's commit stream at *every* byte
//!   offset and requires recovery to restore the last durable epoch each
//!   time.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use qrw_bench::harness::{group, validate_mutate_json, BenchRecord, Sample};
use qrw_search::segment::replay;
use qrw_search::{
    CatalogError, CatalogWriter, ChurnFaultInjector, DeadlineBudget, IndexSnapshot, InvertedIndex,
    MutationBatch, RewriteCache, RewriteLadder, SearchEngine, Segment, ServingConfig,
    SnapshotStore,
};
use qrw_serve::{mutation_batches, synthetic_docs, ChurnMix, MixConfig, Workload};
use qrw_text::Vocab;

/// Ceiling on pinned-vs-frozen sequential serve time (best-of-reps
/// ratio). The pin protocol is two atomic RMWs + an `Arc` clone per
/// request — microseconds of serving amortise it to noise, so 2x is a
/// generous structural bar (the ISSUE's <5% p99 criterion is checked on
/// far longer runs; an in-run ratio keeps the smoke immune to cross-run
/// host noise).
const MAX_PIN_OVERHEAD: f64 = 2.0;

const VOCAB_WORDS: usize = 24;
const DOCS: usize = 120;
const REQUESTS: usize = 48;
const MIX_SEED: u64 = 13;
const CHURN_SEED: u64 = 17;
const REPS: usize = 5;
const CHURN_BATCHES: usize = 24;
/// Serve passes over the request mix during the churn stage.
const CHURN_PASSES: usize = 3;

fn main() -> ExitCode {
    let (out_dir, sweep) = parse_args();
    let vocab = build_vocab();
    let docs = synthetic_docs(&vocab, DOCS, 11);
    let mix = Workload::generate(&vocab, &MixConfig::head_heavy(REQUESTS, MIX_SEED));
    let cache = Arc::new(prefilled_cache(&mix.head));
    let mut record = BenchRecord::new("mutate");

    // --- Frozen vs epoch-pinned, no churn: identical bytes, bounded cost.
    group("frozen vs pinned (no churn)");
    let frozen = SearchEngine::new(InvertedIndex::build(docs.clone()));
    let (live_store, _live_writer) = CatalogWriter::bootstrap(docs.clone());
    let pinned_engine = SearchEngine::live(live_store);
    let mut frozen_ns = Vec::new();
    let mut pinned_ns = Vec::new();
    for rep in 0..=REPS {
        let (f_total, f_resp) = run_sequential(&frozen, &cache, &mix.requests);
        let (p_total, p_resp) = run_sequential(&pinned_engine, &cache, &mix.requests);
        if f_resp != p_resp {
            eprintln!("mutate_smoke: pinned responses diverge from the frozen engine's");
            return ExitCode::FAILURE;
        }
        if rep == 0 {
            continue; // warmup
        }
        frozen_ns.push(f_total / mix.requests.len() as u128);
        pinned_ns.push(p_total / mix.requests.len() as u128);
    }
    let frozen_sample = to_sample(&mut frozen_ns);
    let pinned_sample = to_sample(&mut pinned_ns);
    print_sample("frozen/serve_ns_per_req", frozen_sample);
    print_sample("pinned/serve_ns_per_req", pinned_sample);
    record.push("frozen/serve_ns_per_req", frozen_sample);
    record.push("pinned/serve_ns_per_req", pinned_sample);
    let overhead = pinned_sample.min_ns as f64 / frozen_sample.min_ns.max(1) as f64;
    println!("pin-protocol overhead (best-of-reps): {overhead:.3}x");
    if overhead > MAX_PIN_OVERHEAD {
        eprintln!(
            "mutate_smoke: pinned serving {overhead:.2}x over frozen exceeds the \
             {MAX_PIN_OVERHEAD}x bar (frozen best {} ns/req, pinned best {} ns/req)",
            frozen_sample.min_ns, pinned_sample.min_ns
        );
        return ExitCode::FAILURE;
    }

    // --- Serve under writer churn; verify the torn-read invariant on
    // every response afterwards.
    group("serving under writer churn");
    let batches = mutation_batches(&vocab, DOCS, &ChurnMix::feed(CHURN_BATCHES, CHURN_SEED));
    let (store, mut writer) = CatalogWriter::bootstrap(docs.clone());
    let engine = SearchEngine::live(Arc::clone(&store));
    let served = Arc::new(AtomicU64::new(0));
    let total_serves = (mix.requests.len() * CHURN_PASSES) as u64;
    // Pace the writer off reader progress so epochs interleave with
    // serving instead of finishing before the first request.
    let per_batch = (total_serves / (CHURN_BATCHES as u64 + 1)).max(1);
    let writer_progress = Arc::clone(&served);
    let writer_batches = batches.clone();
    let writer_thread = std::thread::spawn(move || {
        for (i, batch) in writer_batches.into_iter().enumerate() {
            while writer_progress.load(Ordering::SeqCst) < (i as u64 + 1) * per_batch {
                std::thread::yield_now();
            }
            writer.apply(batch).expect("in-memory publish cannot fail");
            writer.reclaim();
        }
        writer
    });
    let mut latencies: Vec<u128> = Vec::with_capacity(total_serves as usize);
    let mut observed: Vec<(Vec<String>, u64, String)> = Vec::with_capacity(total_serves as usize);
    let mut j = 0u64;
    for _pass in 0..CHURN_PASSES {
        for q in &mix.requests {
            // Bidirectional pacing: the writer waits for reader progress
            // (above) and the reader waits for writer progress here, so
            // the interleaving is schedule-independent — without this, a
            // fast reader drains the whole mix before the writer thread
            // is even scheduled and every response pins epoch 0.
            let target = (j / per_batch).min(CHURN_BATCHES as u64);
            while store.current_epoch() < target {
                std::thread::yield_now();
            }
            let t0 = Instant::now();
            let (epoch, rendered) = serve(&engine, &cache, q);
            latencies.push(t0.elapsed().as_nanos());
            observed.push((q.clone(), epoch, rendered));
            served.fetch_add(1, Ordering::SeqCst);
            j += 1;
        }
    }
    let writer = writer_thread.join().expect("writer must not panic");
    drop(writer);
    latencies.sort_unstable();
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let name = format!("churn/latency_{label}");
        let s = point_sample(percentile(&latencies, q));
        print_sample(&name, s);
        record.push(name, s);
    }
    let stats = store.churn_stats();
    assert_eq!(stats.epochs_published, CHURN_BATCHES as u64);
    for (name, v) in [
        ("churn/epochs_published", stats.epochs_published),
        ("churn/epochs_reclaimed", stats.epochs_reclaimed),
    ] {
        let s = point_sample(v as u128);
        print_sample(name, s);
        record.push(name, s);
    }
    if let Err(e) = check_torn_read_invariant(&docs, &batches, &cache, &observed) {
        eprintln!("mutate_smoke: {e}");
        return ExitCode::FAILURE;
    }
    let distinct: std::collections::BTreeSet<u64> =
        observed.iter().map(|(_, e, _)| *e).collect();
    println!(
        "torn-read invariant held on {} responses across {} distinct epochs",
        observed.len(),
        distinct.len()
    );
    if distinct.len() < 2 {
        eprintln!("mutate_smoke: churn never overlapped serving (epochs {distinct:?})");
        return ExitCode::FAILURE;
    }

    // --- Recovery after a mid-commit kill.
    group("recovery after mid-commit kill");
    match recovery_after_kill(&docs, &batches) {
        Ok(sample) => {
            print_sample("recovery/after_kill_ns", sample);
            record.push("recovery/after_kill_ns", sample);
        }
        Err(e) => {
            eprintln!("mutate_smoke: {e}");
            return ExitCode::FAILURE;
        }
    }

    // --- Optional exhaustive kill-point sweep (gated under the verify
    // time budget by the caller).
    if sweep {
        group("kill-point sweep (every commit byte)");
        match kill_point_sweep(&vocab) {
            Ok(offsets) => println!("swept {offsets} kill points, all recovered"),
            Err(e) => {
                eprintln!("mutate_smoke: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    // --- Persist + re-validate against the mutate schema.
    let path = out_dir.join("BENCH_mutate.json");
    if let Err(e) = record.write_validated(&path) {
        eprintln!("mutate_smoke: {e}");
        return ExitCode::FAILURE;
    }
    let text = std::fs::read_to_string(&path).expect("re-read bench file");
    match validate_mutate_json(&text) {
        Ok(_) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("mutate_smoke: {} is malformed: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_args() -> (PathBuf, bool) {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    let mut sweep = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--sweep" => sweep = true,
            other => panic!("unknown argument {other:?} (usage: mutate_smoke [--out DIR] [--sweep])"),
        }
    }
    (out, sweep)
}

fn build_vocab() -> Arc<Vocab> {
    let mut v = Vocab::new();
    for i in 0..VOCAB_WORDS {
        v.insert(&format!("w{i}"));
    }
    Arc::new(v)
}

/// Fixed rewrites for the head queries: a read-only cache rung keeps the
/// ladder fully deterministic, so responses depend on the pinned epoch
/// alone.
fn prefilled_cache(head: &[Vec<String>]) -> RewriteCache {
    let cache = RewriteCache::new();
    for q in head {
        cache.insert(q, vec![vec!["w3".to_string(), "w5".to_string()]]);
    }
    cache
}

fn serve(engine: &SearchEngine, cache: &RewriteCache, query: &[String]) -> (u64, String) {
    let ladder = RewriteLadder { cache: Some(cache), ..RewriteLadder::default() };
    let resp = engine.search_resilient(
        query,
        ladder,
        &ServingConfig::default(),
        &DeadlineBudget::unlimited(),
        None,
    );
    (resp.epoch, format!("{resp:?}"))
}

fn run_sequential(
    engine: &SearchEngine,
    cache: &RewriteCache,
    requests: &[Vec<String>],
) -> (u128, Vec<String>) {
    let t0 = Instant::now();
    let responses = requests.iter().map(|q| serve(engine, cache, q).1).collect();
    (t0.elapsed().as_nanos(), responses)
}

/// The index of epoch `e`: base corpus + the first `e` batches, replayed
/// serially.
fn epoch_index(docs: &[Vec<String>], batches: &[MutationBatch], e: usize) -> InvertedIndex {
    let mut segments = vec![Segment::base_of(docs.iter().map(Vec::as_slice))];
    segments.extend(batches[..e].iter().cloned().map(Segment::seal));
    replay(&segments)
}

/// Re-derives every observed response on a serial engine pinned to the
/// epoch the response claims; any byte of divergence is an error.
fn check_torn_read_invariant(
    docs: &[Vec<String>],
    batches: &[MutationBatch],
    cache: &RewriteCache,
    observed: &[(Vec<String>, u64, String)],
) -> Result<(), String> {
    let mut serial: Vec<Option<SearchEngine>> = (0..=batches.len()).map(|_| None).collect();
    for (query, epoch, rendered) in observed {
        let e = *epoch as usize;
        if e >= serial.len() {
            return Err(format!("response claims unpublished epoch {e}"));
        }
        let engine = serial[e].get_or_insert_with(|| {
            let index = epoch_index(docs, batches, e);
            SearchEngine::live(SnapshotStore::new(IndexSnapshot::new(e as u64, index)))
        });
        let (_, expected) = serve(engine, cache, query);
        if &expected != rendered {
            return Err(format!(
                "torn read at epoch {e}: concurrent response diverges from serial replay\n\
                 expected: {expected}\n\
                 observed: {rendered}"
            ));
        }
    }
    Ok(())
}

/// Kills the commit stream ~60% into the batch sequence, then times
/// `CatalogWriter::recover` and verifies the recovered epoch bit-for-bit
/// against its serial replay.
fn recovery_after_kill(
    docs: &[Vec<String>],
    batches: &[MutationBatch],
) -> Result<Sample, String> {
    let tmp = TempDir::new("qrw-mutate-smoke-kill");
    // Probe: bytes of a full run, to aim the kill mid-stream.
    let probe = ChurnFaultInjector::none();
    {
        let probe_tmp = TempDir::new("qrw-mutate-smoke-probe");
        let (_s, mut w) =
            CatalogWriter::with_injector(docs.to_vec(), probe_tmp.path(), Arc::clone(&probe))
                .map_err(|e| format!("probe bootstrap: {e}"))?;
        for b in batches {
            w.apply(b.clone()).map_err(|e| format!("probe apply: {e}"))?;
        }
    }
    let kill_at = probe.total_bytes() * 3 / 5;

    let injector = ChurnFaultInjector::kill_at_byte(kill_at);
    let (_store, mut writer) =
        CatalogWriter::with_injector(docs.to_vec(), tmp.path(), Arc::clone(&injector))
            .map_err(|e| format!("bootstrap before kill point: {e}"))?;
    let mut last_ok = 0u64;
    for b in batches {
        match writer.apply(b.clone()) {
            Ok(epoch) => last_ok = epoch,
            Err(CatalogError::Io(_)) => break,
            Err(e) => return Err(format!("unexpected apply error: {e}")),
        }
    }
    if !injector.killed() {
        return Err("kill never fired; probe sizing is wrong".into());
    }
    drop(writer);

    let t0 = Instant::now();
    let (store, _writer) =
        CatalogWriter::recover(tmp.path()).map_err(|e| format!("recovery failed: {e}"))?;
    let elapsed = t0.elapsed().as_nanos();
    let got = store.current_epoch();
    // A kill during the LATEST write can land after the manifest rename:
    // the in-flight epoch is then legitimately durable.
    if got != last_ok && got != last_ok + 1 {
        return Err(format!("recovered epoch {got}, expected {last_ok} or {}", last_ok + 1));
    }
    let expect = epoch_index(docs, batches, got as usize).fingerprint();
    if store.pin().index().fingerprint() != expect {
        return Err(format!("epoch {got} not recovered bit-for-bit"));
    }
    println!(
        "killed at byte {kill_at}, recovered epoch {got} of {} in {:.3}ms",
        batches.len(),
        elapsed as f64 / 1e6
    );
    Ok(point_sample(elapsed))
}

/// Exhaustive crash sweep on a small catalog: every byte offset of the
/// commit stream is a kill point; each run must recover the last durable
/// epoch bit-for-bit (or nothing, if the kill predates the first commit).
fn kill_point_sweep(vocab: &Arc<Vocab>) -> Result<u64, String> {
    let docs = synthetic_docs(vocab, 6, 3);
    let batches = mutation_batches(vocab, docs.len(), &ChurnMix::feed(3, 29));
    let fp: Vec<u64> =
        (0..=batches.len()).map(|e| epoch_index(&docs, &batches, e).fingerprint()).collect();

    let probe = ChurnFaultInjector::none();
    let bootstrap_bytes;
    {
        let tmp = TempDir::new("qrw-mutate-sweep-probe");
        let (_s, mut w) = CatalogWriter::with_injector(docs.clone(), tmp.path(), Arc::clone(&probe))
            .map_err(|e| format!("sweep probe bootstrap: {e}"))?;
        bootstrap_bytes = probe.total_bytes();
        for b in &batches {
            w.apply(b.clone()).map_err(|e| format!("sweep probe apply: {e}"))?;
        }
    }
    let total = probe.total_bytes();

    for offset in 0..total {
        let tmp = TempDir::new("qrw-mutate-sweep");
        let injector = ChurnFaultInjector::kill_at_byte(offset);
        let boot = CatalogWriter::with_injector(docs.clone(), tmp.path(), Arc::clone(&injector));
        let mut last_ok: Option<u64> = None;
        let mut in_flight = 0u64;
        match boot {
            Err(CatalogError::Io(_)) if offset < bootstrap_bytes => {}
            Err(e) => return Err(format!("offset {offset}: unexpected bootstrap error {e}")),
            Ok((_s, mut writer)) => {
                last_ok = Some(0);
                for b in &batches {
                    in_flight = last_ok.unwrap() + 1;
                    match writer.apply(b.clone()) {
                        Ok(epoch) => last_ok = Some(epoch),
                        Err(CatalogError::Io(_)) => break,
                        Err(e) => return Err(format!("offset {offset}: apply error {e}")),
                    }
                }
            }
        }
        match (last_ok, CatalogWriter::recover(tmp.path())) {
            (acked, Ok((store, _w))) => {
                let got = store.current_epoch();
                let floor = acked.unwrap_or(0);
                if got != floor && got != in_flight {
                    return Err(format!(
                        "offset {offset}: recovered epoch {got}, expected {floor} or {in_flight}"
                    ));
                }
                if store.pin().index().fingerprint() != fp[got as usize] {
                    return Err(format!("offset {offset}: epoch {got} not bit-for-bit"));
                }
            }
            (Some(epoch), Err(e)) => {
                return Err(format!("offset {offset}: durable epoch {epoch} failed recovery: {e}"));
            }
            (None, Err(_)) => {}
        }
    }
    Ok(total)
}

// ------------------------------------------------------------- helpers

fn to_sample(values: &mut [u128]) -> Sample {
    values.sort_unstable();
    Sample {
        median_ns: values[values.len() / 2],
        min_ns: values[0],
        max_ns: values[values.len() - 1],
    }
}

fn point_sample(v: u128) -> Sample {
    Sample { median_ns: v, min_ns: v, max_ns: v }
}

fn percentile(sorted: &[u128], q: f64) -> u128 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn print_sample(name: &str, s: Sample) {
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}",
        s.median_ns, s.min_ns, s.max_ns
    );
}

/// Self-cleaning unique temp directory (std-only).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::SeqCst);
        let dir = std::env::temp_dir().join(format!("{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &std::path::Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
