//! Small-scale load-generation run for the concurrent serving runtime,
//! persisting throughput and latency percentiles as `BENCH_serve.json`.
//!
//! Wired into `scripts/verify.sh --load-smoke`. Replays a seeded request
//! mix (KV-hit-heavy head + decode-heavy tail) three ways:
//!
//! * **sequential** — one request at a time through `search_resilient`,
//!   the pre-runtime serving mode (the baseline);
//! * **open-loop** — all requests submitted up front, drained by the
//!   runtime's worker pool in dynamic micro-batches;
//! * **closed-loop** — a fixed number of driver threads, each blocking on
//!   its request before issuing the next.
//!
//! Fails unless (a) the runtime's responses on the tail mix are
//! byte-identical to the sequential baseline's, (b) `BENCH_serve.json`
//! re-validates against the harness schema, and (c) open-loop micro-batched
//! throughput on the decode-heavy tail mix is at least
//! [`MIN_BATCHED_SPEEDUP`]x the sequential baseline. It also drives the
//! runtime into overload (queue capacity below the offered load) and
//! requires the typed reject/shed accounting to surface in
//! `health_report()`.
//!
//! The `sched_scaling/*` section sweeps the mailbox scheduler at shard
//! counts {1, 2, 4} (wired as `scripts/verify.sh --sched-smoke`):
//! responses must stay byte-identical to the sequential baseline at every
//! count, and the deterministic virtual-cost p99 (computed from the
//! scheduler's own minted `batch_form` spans — see [`virtual_p99`]) at 4
//! shards must not exceed the 1-shard value on the burst mix.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use qrw_bench::harness::{
    group, validate_bench_json, validate_sched_json, validate_shard_json, BenchRecord, Sample,
};
use qrw_core::QueryRewriter;
use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_obs::{taxonomy, SpanRecord, Tracer};
use qrw_search::{
    DeadlineBudget, InvertedIndex, RewriteCache, RewriteLadder, SearchEngine, ServeError,
    ServingConfig, ShardFaultInjector,
};
use qrw_serve::{
    synthetic_docs, BatchedQ2Q, MixConfig, Outcome, Runtime, RuntimeConfig, ServeStack, Workload,
};
use qrw_text::Vocab;

/// Minimum open-loop batched-vs-sequential throughput ratio accepted on
/// the decode-heavy tail mix (the PR's acceptance criterion). The margin
/// comes from micro-batch stacking plus coalescing of identical in-flight
/// tail queries.
const MIN_BATCHED_SPEEDUP: f64 = 2.0;

const VOCAB_WORDS: usize = 24;
const REQUESTS: usize = 48;
const DOCS: usize = 120;
const MODEL_SEED: u64 = 41;
const REWRITE_SEED: u64 = 7;
const MIX_SEED: u64 = 13;
const REPS: usize = 5;
const CLOSED_LOOP_DRIVERS: usize = 4;

fn main() -> ExitCode {
    let (out_dir, full_sweep) = parse_args();
    let vocab = build_vocab();
    let tail = Workload::generate(&vocab, &MixConfig::tail_heavy(REQUESTS, MIX_SEED));
    let head = Workload::generate(&vocab, &MixConfig::head_heavy(REQUESTS, MIX_SEED));
    let mut record = BenchRecord::new("serve");

    // --- Decode-heavy tail mix: sequential baseline vs open-loop runtime.
    group("tail mix (decode-heavy, open-loop)");
    let mut seq_ns = Vec::new();
    let mut bat_ns = Vec::new();
    let mut bat_latencies: Vec<u128> = Vec::new();
    let mut engine_report = None;
    for rep in 0..=REPS {
        let warmup = rep == 0;

        let stack = build_stack(&vocab, &tail.head);
        let (seq_total, seq_responses) = run_sequential(&stack, &tail.requests);

        let stack = build_stack(&vocab, &tail.head);
        let engine = Arc::clone(&stack.engine);
        let runtime = Runtime::new(stack, open_loop_config());
        let t0 = Instant::now();
        let records = runtime.execute(
            tail.requests.iter().map(|q| (q.clone(), DeadlineBudget::unlimited())).collect(),
        );
        let bat_total = t0.elapsed();

        let bat_responses: Vec<String> = records
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Served(resp) => format!("{resp:?}"),
                other => panic!("tail request {} not served: {other:?}", r.id),
            })
            .collect();
        if seq_responses != bat_responses {
            eprintln!("load_smoke: batched responses diverge from the sequential baseline");
            return ExitCode::FAILURE;
        }
        if warmup {
            continue;
        }
        seq_ns.push(seq_total.as_nanos() / REQUESTS as u128);
        bat_ns.push(bat_total.as_nanos() / REQUESTS as u128);
        bat_latencies = records.iter().map(|r| r.latency.as_nanos()).collect();
        engine_report = Some(engine.health_report());
    }
    let seq_sample = to_sample(&mut seq_ns);
    let bat_sample = to_sample(&mut bat_ns);
    print_sample("tail/sequential_ns_per_req", seq_sample);
    print_sample("tail/batched_open_loop_ns_per_req", bat_sample);
    record.push("tail/sequential_ns_per_req", seq_sample);
    record.push("tail/batched_open_loop_ns_per_req", bat_sample);

    bat_latencies.sort_unstable();
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let name = format!("tail/open_loop_latency_{label}");
        let s = point_sample(percentile(&bat_latencies, q));
        print_sample(&name, s);
        record.push(name, s);
    }

    // The same percentiles as the engine's mergeable log-bucketed
    // histogram reports them (µs buckets, so ns for the record): what
    // `health_report()` would surface in production, persisted alongside
    // the exact per-record numbers for cross-checking.
    let report = engine_report.expect("at least one measured rep");
    assert_eq!(report.latency_count, REQUESTS as u64, "one histogram sample per served request");
    for (label, us) in [
        ("p50", report.latency_p50_us),
        ("p95", report.latency_p95_us),
        ("p99", report.latency_p99_us),
    ] {
        let name = format!("tail/hist_latency_{label}_us");
        let s = point_sample(us as u128);
        print_sample(&name, s);
        record.push(name, s);
    }

    // --- Closed-loop latency on the same mix: each driver waits for its
    // response before sending the next request.
    group("tail mix (closed-loop)");
    let stack = build_stack(&vocab, &tail.head);
    let runtime = Runtime::new(stack, open_loop_config());
    let records = runtime.run(|rt| {
        std::thread::scope(|scope| {
            for d in 0..CLOSED_LOOP_DRIVERS {
                let requests = &tail.requests;
                scope.spawn(move || {
                    for q in requests.iter().skip(d).step_by(CLOSED_LOOP_DRIVERS) {
                        let rec = rt.call(q.clone(), DeadlineBudget::unlimited());
                        assert!(
                            matches!(rec.outcome, Outcome::Served(_)),
                            "closed-loop request must be served"
                        );
                    }
                });
            }
        });
    });
    let mut closed_latencies: Vec<u128> =
        records.iter().map(|r| r.latency.as_nanos()).collect();
    closed_latencies.sort_unstable();
    for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
        let name = format!("tail/closed_loop_latency_{label}");
        let s = point_sample(percentile(&closed_latencies, q));
        print_sample(&name, s);
        record.push(name, s);
    }

    // --- KV-hit-heavy head mix through the runtime, for trajectory
    // context: most requests are answered from the sharded rewrite cache.
    group("head mix (KV-hit-heavy, open-loop)");
    let mut head_ns = Vec::new();
    for _ in 0..REPS {
        let stack = build_stack(&vocab, &head.head);
        let runtime = Runtime::new(stack, open_loop_config());
        let t0 = Instant::now();
        let records = runtime.execute(
            head.requests.iter().map(|q| (q.clone(), DeadlineBudget::unlimited())).collect(),
        );
        head_ns.push(t0.elapsed().as_nanos() / REQUESTS as u128);
        assert!(records.iter().all(|r| matches!(r.outcome, Outcome::Served(_))));
    }
    let head_sample = to_sample(&mut head_ns);
    print_sample("head/batched_open_loop_ns_per_req", head_sample);
    record.push("head/batched_open_loop_ns_per_req", head_sample);

    // --- Shard-scaling sweep: the scatter-gather tier at increasing
    // shard counts (byte-identical to the monolith at every count) plus
    // the partial-results rate under a permanently poisoned shard.
    if let Err(e) = shard_scaling(&vocab, &tail, full_sweep, &mut record) {
        eprintln!("load_smoke: {e}");
        return ExitCode::FAILURE;
    }

    // --- Scheduler-scaling sweep: the mailbox scheduler at shard counts
    // {1, 2, 4} (byte-identical to the sequential baseline at every
    // count) plus the deterministic virtual-cost p99 scaling bar.
    if let Err(e) = sched_scaling(&vocab, &tail, &mut record) {
        eprintln!("load_smoke: {e}");
        return ExitCode::FAILURE;
    }

    // --- Persist + re-validate against the harness schema (general +
    // the shard-scaling entry contract).
    let path = out_dir.join("BENCH_serve.json");
    match record.write_validated(&path) {
        Ok(_) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("load_smoke: {e}");
            return ExitCode::FAILURE;
        }
    }
    let text = std::fs::read_to_string(&path).expect("re-read bench file");
    if let Err(e) = validate_bench_json(&text) {
        eprintln!("load_smoke: {} is malformed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_shard_json(&text) {
        eprintln!("load_smoke: {} misses the shard-scaling contract: {e}", path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_sched_json(&text) {
        eprintln!("load_smoke: {} misses the sched-scaling contract: {e}", path.display());
        return ExitCode::FAILURE;
    }

    // --- The acceptance bar. Best-of-reps on both sides: the mins are the
    // runs least disturbed by the host, so their ratio is the stable
    // estimate of the structural speedup (a one-core box shows ~2.5x from
    // stacking + coalescing; multi-core adds worker parallelism on top).
    let speedup = seq_sample.min_ns as f64 / bat_sample.min_ns.max(1) as f64;
    println!("micro-batched open-loop speedup over sequential (tail mix): {speedup:.2}x");
    if speedup < MIN_BATCHED_SPEEDUP {
        eprintln!(
            "load_smoke: batched throughput {speedup:.2}x below the {MIN_BATCHED_SPEEDUP}x bar \
             (sequential best {} ns/req, batched best {} ns/req)",
            seq_sample.min_ns, bat_sample.min_ns
        );
        return ExitCode::FAILURE;
    }

    // --- Overload: offered load beyond queue capacity must shed with
    // typed errors and show up in the health counters, not queue
    // unboundedly.
    if let Err(e) = overload_demo(&vocab, &tail) {
        eprintln!("load_smoke: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_args() -> (PathBuf, bool) {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    let mut full_sweep = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--shard-sweep-full" => full_sweep = true,
            other => panic!(
                "unknown argument {other:?} (usage: load_smoke [--out DIR] [--shard-sweep-full])"
            ),
        }
    }
    (out, full_sweep)
}

fn build_vocab() -> Arc<Vocab> {
    let mut v = Vocab::new();
    for i in 0..VOCAB_WORDS {
        v.insert(&format!("w{i}"));
    }
    Arc::new(v)
}

/// Engine + prefilled cache + batched online model, rebuilt identically
/// (same seeds) for every measurement so no run inherits warm state.
fn build_stack(vocab: &Arc<Vocab>, head: &[Vec<String>]) -> ServeStack {
    let docs = synthetic_docs(vocab, DOCS, 11);
    let engine = Arc::new(SearchEngine::new(InvertedIndex::build(docs)));
    let model = Arc::new(Seq2Seq::new(ModelConfig::tiny_transformer(vocab.len()), MODEL_SEED));
    let online = Arc::new(BatchedQ2Q::new(model, Arc::clone(vocab), 40, REWRITE_SEED));
    let cache = Arc::new(RewriteCache::new());
    for q in head {
        cache.insert(q, online.rewrite(q, ServingConfig::default().max_rewrites));
    }
    ServeStack { engine, cache: Some(cache), student: None, online: Some(online), baseline: None, models: None }
}

fn open_loop_config() -> RuntimeConfig {
    RuntimeConfig {
        queue_capacity: REQUESTS,
        max_batch: 16,
        workers: 2,
        ..RuntimeConfig::default()
    }
}

/// The pre-runtime serving mode: one request at a time on one thread.
fn run_sequential(stack: &ServeStack, requests: &[Vec<String>]) -> (Duration, Vec<String>) {
    let cfg = ServingConfig::default();
    let online = stack.online.as_deref().map(|o| o as &dyn QueryRewriter);
    let t0 = Instant::now();
    let responses = requests
        .iter()
        .map(|q| {
            let ladder = RewriteLadder {
                cache: stack.cache.as_deref(),
                student: stack.student.as_deref().map(|s| s as &dyn QueryRewriter),
                online,
                baseline: None,
            };
            let resp =
                stack.engine.search_resilient(q, ladder, &cfg, &DeadlineBudget::unlimited(), None);
            format!("{resp:?}")
        })
        .collect();
    (t0.elapsed(), responses)
}

/// Like [`build_stack`], but the engine serves through the scatter-gather
/// tier at `shards` shards.
fn build_sharded_stack(vocab: &Arc<Vocab>, head: &[Vec<String>], shards: usize) -> ServeStack {
    let docs = synthetic_docs(vocab, DOCS, 11);
    let engine = Arc::new(SearchEngine::sharded(InvertedIndex::build(docs), shards));
    let model = Arc::new(Seq2Seq::new(ModelConfig::tiny_transformer(vocab.len()), MODEL_SEED));
    let online = Arc::new(BatchedQ2Q::new(model, Arc::clone(vocab), 40, REWRITE_SEED));
    let cache = Arc::new(RewriteCache::new());
    for q in head {
        cache.insert(q, online.rewrite(q, ServingConfig::default().max_rewrites));
    }
    ServeStack { engine, cache: Some(cache), student: None, online: Some(online), baseline: None, models: None }
}

/// Sweeps shard counts, requiring byte-identical responses at every
/// count, then measures serving with one shard permanently poisoned: the
/// partial-results rate must be exactly 1000‰ (every response ranked,
/// stamped `shards_ok = N-1`, never an error).
fn shard_scaling(
    vocab: &Arc<Vocab>,
    tail: &Workload,
    full_sweep: bool,
    record: &mut BenchRecord,
) -> Result<(), String> {
    let counts: &[usize] = if full_sweep { &[1, 2, 4, 8] } else { &[1, 4] };
    group(if full_sweep {
        "shard scaling (counts 1/2/4/8, byte-transparency enforced)"
    } else {
        "shard scaling (counts 1/4, byte-transparency enforced; full sweep under QRW_VERIFY_BUDGET=full)"
    });

    let mono = build_stack(vocab, &tail.head);
    let (_, mono_responses) = run_sequential(&mono, &tail.requests);

    for &shards in counts {
        let mut ns = Vec::new();
        for rep in 0..=REPS {
            let stack = build_sharded_stack(vocab, &tail.head, shards);
            let (total, responses) = run_sequential(&stack, &tail.requests);
            if responses != mono_responses {
                return Err(format!(
                    "sharded responses at {shards} shards diverge from the monolith"
                ));
            }
            if rep > 0 {
                ns.push(total.as_nanos() / REQUESTS as u128);
            }
        }
        let s = to_sample(&mut ns);
        let name = format!("shard_scaling/s{shards}_ns_per_req");
        print_sample(&name, s);
        record.push(name, s);
    }

    // Fault-injected run: poison one shard of the largest swept tier and
    // serve the whole mix. Every response must degrade to partial
    // results — never an error, never an empty shard accounting.
    let shards = *counts.last().expect("non-empty sweep");
    let stack = build_sharded_stack(vocab, &tail.head, shards);
    stack.engine.set_shard_faults(Some(ShardFaultInjector::poison_shard(0)));
    let cfg = ServingConfig::default();
    let t0 = Instant::now();
    let mut partial = 0usize;
    for q in &tail.requests {
        let ladder = RewriteLadder {
            cache: stack.cache.as_deref(),
            student: None,
            online: stack.online.as_deref().map(|o| o as &dyn QueryRewriter),
            baseline: None,
        };
        let resp =
            stack.engine.search_resilient(q, ladder, &cfg, &DeadlineBudget::unlimited(), None);
        if resp.shards_ok != shards - 1 || resp.shards_total != shards {
            return Err(format!(
                "poisoned tier served {}/{} shards, expected {}/{}",
                resp.shards_ok,
                resp.shards_total,
                shards - 1,
                shards
            ));
        }
        if !resp
            .degradations
            .iter()
            .any(|e| matches!(e, ServeError::PartialResults { .. }))
        {
            return Err("partial response without a PartialResults degradation".into());
        }
        partial += 1;
    }
    let total = t0.elapsed();
    let rate_permille = (partial * 1000 / tail.requests.len()) as u128;
    let partial_sample = point_sample(total.as_nanos() / REQUESTS as u128);
    print_sample("shard_scaling/partial_ns_per_req", partial_sample);
    record.push("shard_scaling/partial_ns_per_req", partial_sample);
    let rate_sample = point_sample(rate_permille);
    print_sample("shard_scaling/partial_rate_permille", rate_sample);
    record.push("shard_scaling/partial_rate_permille", rate_sample);
    if rate_permille != 1000 {
        return Err(format!(
            "expected every request partial under a permanently poisoned shard, got {rate_permille}‰"
        ));
    }
    let report = stack.engine.health_report();
    if report.partial_results != tail.requests.len() as u64 {
        return Err("health_report() partial_results disagrees with the served count".into());
    }
    Ok(())
}

/// Relative cost of a request that needs a neural decode vs a cache hit
/// in the virtual service-cost model (decode dominates a batch's latency;
/// the exact weight only has to keep decode-heavy work visibly heavy).
const DECODE_VCOST_WEIGHT: u128 = 8;

/// Like [`build_stack`], but with a logical-clock tracer on the engine so
/// the scheduler mints `batch_form` spans to compute virtual costs from.
fn build_traced_stack(vocab: &Arc<Vocab>, head: &[Vec<String>], tracer: &Tracer) -> ServeStack {
    let docs = synthetic_docs(vocab, DOCS, 11);
    let engine =
        Arc::new(SearchEngine::new(InvertedIndex::build(docs)).with_tracer(tracer.clone()));
    let model = Arc::new(Seq2Seq::new(ModelConfig::tiny_transformer(vocab.len()), MODEL_SEED));
    let online = Arc::new(BatchedQ2Q::new(model, Arc::clone(vocab), 40, REWRITE_SEED));
    let cache = Arc::new(RewriteCache::new());
    for q in head {
        cache.insert(q, online.rewrite(q, ServingConfig::default().max_rewrites));
    }
    ServeStack { engine, cache: Some(cache), student: None, online: Some(online), baseline: None, models: None }
}

/// Deterministic virtual p99 from the scheduler's minted `batch_form`
/// spans: per worker, the cumulative service cost (`size +
/// DECODE_VCOST_WEIGHT × decode_requests` per batch) in batch-formation
/// order; every request in a batch completes at its worker's cumulative
/// cost after that batch; p99 over requests. Per-request costs are
/// scheduling-invariant (each request contributes `1 + weight` or `1`
/// wherever it runs), so the per-worker sums are a pure partition of a
/// fixed workload — the metric measures how evenly the scheduler spreads
/// work, independent of host core count or wall-clock noise.
fn virtual_p99(spans: &[SpanRecord]) -> u128 {
    let mut cum: std::collections::BTreeMap<i64, u128> = std::collections::BTreeMap::new();
    let mut completions: Vec<u128> = Vec::new();
    // The snapshot is sorted by start tick, so each worker's batches
    // appear in formation order.
    for s in spans.iter().filter(|s| s.name == taxonomy::BATCH_FORM) {
        let worker = s.attr("worker").and_then(|v| v.as_int()).expect("batch_form worker attr");
        let size = s.attr("size").and_then(|v| v.as_int()).expect("batch_form size attr") as u128;
        // Absent on batches that shed everything (the attr is recorded
        // with the decode plan).
        let decodes = s.attr("decode_requests").and_then(|v| v.as_int()).unwrap_or(0) as u128;
        let c = cum.entry(worker).or_insert(0);
        *c += size + DECODE_VCOST_WEIGHT * decodes;
        for _ in 0..size {
            completions.push(*c);
        }
    }
    completions.sort_unstable();
    percentile(&completions, 0.99)
}

/// Sweeps the mailbox scheduler over shard counts {1, 2, 4} (workers ==
/// shards) on the decode-heavy burst mix, requiring byte-identical
/// responses to the sequential baseline at every count, and records both
/// wall-clock ns/req (informational) and the deterministic virtual-cost
/// p99. Fails unless virtual p99 at 4 shards ≤ virtual p99 at 1 shard —
/// the scheduler-scaling bar, re-enforced at read time by
/// `validate_sched_json`.
fn sched_scaling(
    vocab: &Arc<Vocab>,
    tail: &Workload,
    record: &mut BenchRecord,
) -> Result<(), String> {
    group("scheduler scaling (mailbox shards 1/2/4, byte-transparency + virtual-p99 bar)");
    let mono = build_stack(vocab, &tail.head);
    let (_, baseline) = run_sequential(&mono, &tail.requests);

    let mut vcosts: Vec<(usize, u128)> = Vec::new();
    for &shards in &[1usize, 2, 4] {
        let tracer = Tracer::logical();
        let stack = build_traced_stack(vocab, &tail.head, &tracer);
        let runtime = Runtime::new(
            stack,
            RuntimeConfig {
                queue_capacity: REQUESTS,
                max_batch: 16,
                workers: shards,
                shards,
                ..RuntimeConfig::default()
            },
        );
        let t0 = Instant::now();
        let records = runtime.execute(
            tail.requests.iter().map(|q| (q.clone(), DeadlineBudget::unlimited())).collect(),
        );
        let total = t0.elapsed();
        let responses: Vec<String> = records
            .iter()
            .map(|r| match &r.outcome {
                Outcome::Served(resp) => format!("{resp:?}"),
                other => panic!("sched request {} not served: {other:?}", r.id),
            })
            .collect();
        if responses != baseline {
            return Err(format!(
                "scheduler responses at {shards} shards diverge from the sequential baseline"
            ));
        }
        let p99v = virtual_p99(&tracer.snapshot());
        let ns = point_sample(total.as_nanos() / REQUESTS as u128);
        let name = format!("sched_scaling/s{shards}_ns_per_req");
        print_sample(&name, ns);
        record.push(name, ns);
        let vs = point_sample(p99v);
        let name = format!("sched_scaling/s{shards}_p99_vcost");
        print_sample(&name, vs);
        record.push(name, vs);
        vcosts.push((shards, p99v));
    }

    let v1 = vcosts.iter().find(|(s, _)| *s == 1).expect("swept").1;
    let v4 = vcosts.iter().find(|(s, _)| *s == 4).expect("swept").1;
    println!("virtual p99 (service units): 1 shard {v1}, 4 shards {v4}");
    if v4 > v1 {
        return Err(format!(
            "virtual p99 at 4 shards ({v4}) exceeds 1 shard ({v1}) on the burst mix"
        ));
    }
    Ok(())
}

fn overload_demo(vocab: &Arc<Vocab>, tail: &Workload) -> Result<(), String> {
    group("overload (offered load 6x queue capacity)");
    let capacity = REQUESTS / 6;
    let stack = build_stack(vocab, &tail.head);
    let runtime = Runtime::new(
        stack.clone(),
        RuntimeConfig { queue_capacity: capacity, ..open_loop_config() },
    );
    // Half the admitted requests carry an already-expired synthetic budget:
    // they must be shed at dequeue, deterministically.
    let records = runtime.execute(
        tail.requests
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let budget = if i % 2 == 0 {
                    DeadlineBudget::synthetic(Duration::from_secs(60))
                } else {
                    DeadlineBudget::synthetic(Duration::ZERO)
                };
                (q.clone(), budget)
            })
            .collect(),
    );
    let served = records.iter().filter(|r| matches!(r.outcome, Outcome::Served(_))).count();
    let shed = records.iter().filter(|r| matches!(r.outcome, Outcome::Shed(_))).count();
    let rejected = records.iter().filter(|r| matches!(r.outcome, Outcome::Rejected(_))).count();
    let report = stack.engine.health_report();
    println!(
        "capacity {capacity}: served {served}, shed {shed}, rejected {rejected} \
         (health: rejections {}, sheds {}, peak depth {})",
        report.queue_rejections, report.queue_sheds, report.queue_peak_depth
    );
    if rejected != tail.requests.len() - capacity {
        return Err(format!(
            "expected exactly the overflow beyond capacity rejected, got {rejected}"
        ));
    }
    if shed == 0 || served == 0 {
        return Err(format!("expected a mix of served and shed, got {served}/{shed}"));
    }
    if report.queue_rejections != rejected as u64 || report.queue_sheds != shed as u64 {
        return Err("health_report() counters disagree with the observed outcomes".to_string());
    }
    if report.queue_peak_depth != capacity as u64 {
        return Err(format!(
            "peak queue depth {} should equal capacity {capacity}",
            report.queue_peak_depth
        ));
    }
    Ok(())
}

fn to_sample(values: &mut [u128]) -> Sample {
    values.sort_unstable();
    Sample {
        median_ns: values[values.len() / 2],
        min_ns: values[0],
        max_ns: values[values.len() - 1],
    }
}

fn point_sample(v: u128) -> Sample {
    Sample { median_ns: v, min_ns: v, max_ns: v }
}

fn percentile(sorted: &[u128], q: f64) -> u128 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

fn print_sample(name: &str, s: Sample) {
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}",
        s.median_ns, s.min_ns, s.max_ns
    );
}
