//! Smoke-sized benchmark run persisting the decode / matmul perf
//! trajectory as machine-readable JSON.
//!
//! Runs in seconds (it is wired into `scripts/verify.sh --bench-smoke`),
//! writes `BENCH_decode.json` and `BENCH_matmul.json` into the output
//! directory (`--out DIR`, default `.`), re-validates both files against
//! the schema, and enforces three bars before overwriting anything:
//!
//! * the KV-cached decode path is at least 3x faster than the
//!   prefix-recompute baseline measured in the same run (the fast-decode
//!   PR's acceptance bar, kept as a regression gate);
//! * the quantized student decodes at least 2x the tokens/s of the
//!   KV-cached teacher (the distill-and-quantize PR's bar);
//! * no entry shared with the committed `BENCH_*.json` regressed its
//!   median by more than 20%.

use std::path::PathBuf;
use std::process::ExitCode;

use qrw_bench::harness::{
    bench, group, median_regressions, validate_bench_json, BenchRecord, Derived,
};
use qrw_nmt::{ComponentKind, ModelConfig, QuantStudent, Seq2Seq, TransformerDecodeMode};
use qrw_tensor::rng::StdRng;
use qrw_tensor::Tensor;
use qrw_text::BOS;

/// Minimum cached-vs-recompute median speedup accepted for the
/// max-length transformer decode (the fast-decode acceptance criterion).
const MIN_DECODE_SPEEDUP: f64 = 3.0;

/// Minimum student-vs-teacher tokens/s ratio (the distilled fast path's
/// acceptance criterion: ≥2x over the KV-cached teacher decode).
const MIN_STUDENT_SPEEDUP: f64 = 2.0;

/// Maximum accepted median slowdown against the committed BENCH files.
const MAX_MEDIAN_REGRESSION: f64 = 0.20;

fn main() -> ExitCode {
    let out_dir = parse_out_dir();
    let decode = bench_decode();
    let matmul = bench_matmul();

    for rec in [&decode, &matmul] {
        let path = out_dir.join(format!("BENCH_{}.json", rec.bench));
        // Regression gate: compare against the committed trajectory before
        // overwriting it. A missing file is fine (first run); a malformed
        // one is not.
        if let Ok(text) = std::fs::read_to_string(&path) {
            let committed = match validate_bench_json(&text) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("bench_smoke: committed {} is malformed: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = median_regressions(&committed, rec, MAX_MEDIAN_REGRESSION) {
                eprintln!("bench_smoke: regression vs committed {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        match rec.write_validated(&path) {
            Ok(_) => println!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("bench_smoke: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Belt and braces: the persisted bytes themselves must re-validate.
        let text = std::fs::read_to_string(&path).expect("re-read bench file");
        if let Err(e) = validate_bench_json(&text) {
            eprintln!("bench_smoke: {} is malformed: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    let recompute = decode.entry("transformer_decode_maxlen/prefix_recompute").unwrap();
    let cached = decode.entry("transformer_decode_maxlen/kv_cache").unwrap();
    let speedup = recompute.median_ns as f64 / cached.median_ns.max(1) as f64;
    println!("\nkv-cache median speedup over prefix recompute: {speedup:.1}x");
    if speedup < MIN_DECODE_SPEEDUP {
        eprintln!(
            "bench_smoke: decode speedup {speedup:.2}x below the {MIN_DECODE_SPEEDUP}x bar \
             (recompute median {} ns, cached median {} ns)",
            recompute.median_ns, cached.median_ns
        );
        return ExitCode::FAILURE;
    }

    let (vs, ratio) = decode
        .derived("student_quantized")
        .and_then(|d| d.speedup_vs.clone())
        .expect("student_quantized carries speedup_vs");
    println!("quantized student tokens/s speedup over {vs}: {ratio:.1}x");
    if ratio < MIN_STUDENT_SPEEDUP {
        let student = decode.entry("student_quantized").unwrap();
        eprintln!(
            "bench_smoke: student speedup {ratio:.2}x below the {MIN_STUDENT_SPEEDUP}x bar \
             (teacher kv median {} ns, student median {} ns)",
            cached.median_ns, student.median_ns
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_out_dir() -> PathBuf {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown argument {other:?} (usage: bench_smoke [--out DIR])"),
        }
    }
    out
}

/// Decode throughput implied by a max-length decode sample: `steps`
/// tokens emitted per measured iteration.
fn tokens_per_s(s: qrw_bench::harness::Sample, steps: usize) -> f64 {
    steps as f64 * 1e9 / s.median_ns.max(1) as f64
}

/// Max-length decode (15 steps, Table V measurement config) through both
/// transformer decode modes, the quantized student fast path, plus the
/// hybrid RNN-decoder reference point.
fn bench_decode() -> BenchRecord {
    let src: Vec<usize> = (10..22).collect();
    let mut record = BenchRecord::new("decode");

    group("decode_maxlen (latency_bench config, 15 steps)");
    let mut kv_sample = None;
    for (label, mode) in [
        ("prefix_recompute", TransformerDecodeMode::PrefixRecompute),
        ("kv_cache", TransformerDecodeMode::KvCache),
    ] {
        let mut model = Seq2Seq::new(
            ModelConfig::latency_bench(ComponentKind::Transformer, ComponentKind::Transformer),
            99,
        );
        model.set_decode_mode(mode);
        let memory = model.encode(&src);
        let max_len = model.config().max_tgt_len;
        let s = bench(&format!("transformer_decode_maxlen/{label}"), 1, 9, || {
            let mut state = model.start_state(&memory);
            let mut prefix = vec![BOS];
            for step in 0..max_len {
                let lp = model.next_log_probs(&memory, &mut state, &prefix);
                std::hint::black_box(&lp);
                prefix.push(10 + (step % 12));
            }
        });
        let derived = if label == "kv_cache" {
            kv_sample = Some((s, max_len));
            Derived { tokens_per_s: Some(tokens_per_s(s, max_len)), speedup_vs: None }
        } else {
            Derived::default()
        };
        record.push_derived(format!("transformer_decode_maxlen/{label}"), s, derived);
    }

    // The distilled fast path: a quantized student at its serving config
    // (half the teacher's width, same vocab, i8 kernels + fused epilogue),
    // decoding through its incremental cache. The acceptance bar — ≥2x
    // the teacher's KV-cached tokens/s — is recorded in `speedup_vs`.
    let vocab =
        ModelConfig::latency_bench(ComponentKind::Transformer, ComponentKind::Transformer).vocab;
    let student =
        QuantStudent::from_seq2seq(&Seq2Seq::new(ModelConfig::student(vocab), 99)).unwrap();
    let memory = student.encode(&src);
    let max_len = student.max_tgt_len();
    let s = bench("student_quantized", 1, 9, || {
        let mut cache = student.start_cache(&memory);
        let mut token = BOS;
        for step in 0..max_len {
            let logits = student.step_logits(&mut cache, token);
            std::hint::black_box(&logits);
            token = 10 + (step % 12);
        }
    });
    let (kv, kv_steps) = kv_sample.expect("kv_cache benched above");
    let student_tps = tokens_per_s(s, max_len);
    record.push_derived(
        "student_quantized",
        s,
        Derived {
            tokens_per_s: Some(student_tps),
            speedup_vs: Some((
                "transformer_decode_maxlen/kv_cache".into(),
                student_tps / tokens_per_s(kv, kv_steps),
            )),
        },
    );

    // The paper's §III-G serving trick (transformer encoder + RNN decoder)
    // for trajectory context next to the cached transformer numbers.
    let hybrid = Seq2Seq::new(
        ModelConfig::latency_bench(ComponentKind::Transformer, ComponentKind::Rnn),
        99,
    );
    let memory = hybrid.encode(&src);
    let max_len = hybrid.config().max_tgt_len;
    let s = bench("hybrid_rnn_decode_maxlen", 1, 9, || {
        let mut state = hybrid.start_state(&memory);
        let mut prefix = vec![BOS];
        for step in 0..max_len {
            let lp = hybrid.next_log_probs(&memory, &mut state, &prefix);
            std::hint::black_box(&lp);
            prefix.push(10 + (step % 12));
        }
    });
    record.push("hybrid_rnn_decode_maxlen", s);
    record
}

/// Blocked-kernel matmul at serving-relevant shapes, the row-parallel
/// size, and a naive triple loop at 256^3 for the kernel's own trajectory.
fn bench_matmul() -> BenchRecord {
    let mut rng = StdRng::seed_from_u64(42);
    let mut random = |rows: usize, cols: usize| {
        let data = (0..rows * cols).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
        Tensor::from_vec(rows, cols, data)
    };
    let mut record = BenchRecord::new("matmul");

    group("matmul kernels");
    for n in [64usize, 128, 256] {
        let a = random(n, n);
        let b = random(n, n);
        let s = bench(&format!("blocked_{n}"), 1, 7, || {
            std::hint::black_box(a.matmul(&b));
        });
        record.push(format!("blocked_{n}"), s);
    }

    // 256^3 = 16.8M MACs, above PAR_MIN_WORK: exercises the row-parallel
    // path. The naive loop at the same size anchors the kernel speedup.
    let a = random(256, 256);
    let b = random(256, 256);
    let s = bench("naive_256", 1, 7, || {
        std::hint::black_box(naive_matmul(&a, &b));
    });
    record.push("naive_256", s);

    // Fused epilogue at the decoder's per-step shape (1 row x d_ff).
    let x = random(1, 64);
    let w = random(64, 128);
    let bias = random(1, 128);
    // 50 inner iterations: at ~1 µs per call the timer and scheduler noise
    // dominate smaller batches, which makes the 20% regression guard flaky.
    let s = bench("fused_bias_relu_1x64x128", 50, 9, || {
        std::hint::black_box(x.matmul_bias_act(&w, &bias, qrw_tensor::Activation::Relu));
    });
    record.push("fused_bias_relu_1x64x128", s);
    record
}

fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut sum = 0.0f32;
            for p in 0..k {
                sum += a.get(i, p) * b.get(p, j);
            }
            out.set(i, j, sum);
        }
    }
    out
}
