//! Distill-and-quantize smoke check, wired into
//! `scripts/verify.sh --distill-smoke`.
//!
//! End to end, offline and deterministic:
//!
//! 1. **Distill** — build the smoke corpus, train a cyclic teacher, then
//!    distill a quantized student from the teacher's top-n rewrites
//!    through [`qrw_core::distill_student`] (checkpointed into a temp
//!    dir like any other training run).
//! 2. **Artifact round trip** — export the student as the `QRWT` v3
//!    quantized blob + v2 f32 remainder, rebuild via `from_artifacts`,
//!    and require bitwise-identical logits from the reloaded model.
//! 3. **Quality floor** — oracle win/tie/lose of the student against its
//!    teacher on the held-out evaluation queries: wins + ties must be at
//!    least losses (the student may not be meaningfully worse).
//! 4. **Speed bar** — max-length decode of the quantized student vs the
//!    KV-cached teacher on the same hardware: ≥2x tokens/s.
//! 5. **Telemetry** — everything lands in `BENCH_distill.json`,
//!    re-validated against the distill schema.
//!
//! `--full` (set by `QRW_VERIFY_BUDGET=full`) raises the distillation
//! budget and evaluates every held-out query instead of a prefix.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qrw_bench::experiment::{train_joint_model, ExperimentData, Scale};
use qrw_bench::harness::{
    bench, group, median_regressions, validate_distill_json, BenchRecord, Derived, Sample,
};
use qrw_core::{
    distill_student, DistillConfig, QueryRewriter, RewritePipeline, StudentRewriter, TrainMode,
};
use qrw_metrics::oracle;
use qrw_nmt::{QuantStudent, TransformerDecodeMode};
use qrw_text::BOS;

/// The distilled fast path's acceptance bar: student tokens/s over the
/// KV-cached teacher decode.
const MIN_STUDENT_SPEEDUP: f64 = 2.0;

/// Maximum accepted median slowdown against a committed BENCH_distill.json.
const MAX_MEDIAN_REGRESSION: f64 = 0.20;

/// Labeler indifference band for the oracle pairwise judgement.
const TIE_MARGIN: f64 = 0.05;

struct Budget {
    distill_steps: u64,
    distill_queries: usize,
    eval_queries: usize,
}

impl Budget {
    fn quick() -> Self {
        Budget { distill_steps: 120, distill_queries: 24, eval_queries: 24 }
    }

    fn full() -> Self {
        Budget { distill_steps: 360, distill_queries: 64, eval_queries: usize::MAX }
    }
}

fn main() -> ExitCode {
    let (out_dir, budget) = parse_args();
    let work = std::env::temp_dir().join(format!("qrw-distill-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create work dir");
    let result = run(&out_dir, &work, &budget);
    let _ = std::fs::remove_dir_all(&work);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("distill_smoke: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_args() -> (PathBuf, Budget) {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    let mut budget = Budget::quick();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--full" => budget = Budget::full(),
            other => panic!("unknown argument {other:?} (usage: distill_smoke [--out DIR] [--full])"),
        }
    }
    (out, budget)
}

fn run(out_dir: &Path, work: &Path, budget: &Budget) -> Result<(), String> {
    group("teacher (cyclic joint model, smoke scale)");
    let scale = Scale::smoke();
    let data = ExperimentData::build(&scale);
    let vocab = &data.dataset.vocab;
    let (mut teacher, _) = train_joint_model(&data, &scale, TrainMode::Joint, scale.seed);
    println!("teacher trained: vocab {}, {} q2t pairs", vocab.len(), data.dataset.q2t.len());

    // Distillation corpus: distinct q2t sources, training-side only.
    let mut queries: Vec<Vec<usize>> = Vec::new();
    for p in &data.dataset.q2t {
        if !queries.contains(&p.src) {
            queries.push(p.src.clone());
        }
        if queries.len() >= budget.distill_queries {
            break;
        }
    }

    group("distillation (teacher top-n -> quantized student)");
    let mut config = DistillConfig::default();
    config.train.steps = budget.distill_steps;
    let distilled =
        distill_student(&teacher, vocab, &queries, &config, Some(&work.join("ckpts")))?;
    let last = distilled.curve.last().ok_or("distillation produced no curve points")?;
    println!(
        "distilled over {} teacher pairs, {} steps, final student ppl {:.2}",
        distilled.pairs,
        budget.distill_steps,
        last.ppl_q2t
    );

    // QRWT artifact round trip: v3 quantized blob + v2 f32 remainder
    // must rebuild a student with bitwise-identical logits.
    let student = &distilled.student;
    let reloaded = QuantStudent::from_artifacts(
        student.config().clone(),
        &student.export_quantized(),
        &student.export_f32(),
    )
    .map_err(|e| format!("artifact round trip failed: {e}"))?;
    let probe = &queries[0];
    if step_logits_trace(student, probe) != step_logits_trace(&reloaded, probe) {
        return Err("reloaded student logits diverge from the exporter".into());
    }
    println!("artifact round trip: v3+v2 export reloads bitwise-identically");

    group("oracle quality (student vs teacher, held-out queries)");
    let eval: Vec<Vec<String>> =
        data.eval_query_tokens().into_iter().take(budget.eval_queries).collect();
    if eval.is_empty() {
        return Err("no held-out evaluation queries".into());
    }
    let pipeline = RewritePipeline::new(&teacher, vocab, config.k, config.top_n, config.seed)
        .with_name("distill-teacher");
    let student_rw = StudentRewriter::new(student, vocab, config.top_n, config.seed);
    let verdict = oracle::human_eval(
        &data.log.catalog,
        eval.iter(),
        |q| student_rw.rewrite(q, config.k),
        |q| pipeline.rewrite(q, config.k),
        TIE_MARGIN,
    );
    println!("student vs teacher over {} queries: {verdict}", eval.len());
    if verdict.win + verdict.tie < verdict.lose {
        return Err(format!(
            "student loses to the teacher on the held-out set: \
             win {} + tie {} < lose {}",
            verdict.win, verdict.tie, verdict.lose
        ));
    }

    group("decode speed (max-length, same source)");
    let src = &queries[0];
    teacher.forward.set_decode_mode(TransformerDecodeMode::KvCache);
    let fwd = &teacher.forward;
    let memory = fwd.encode(src);
    let teacher_steps = fwd.config().max_tgt_len;
    let teacher_sample = bench("teacher/decode_maxlen", 1, 9, || {
        let mut state = fwd.start_state(&memory);
        let mut prefix = vec![BOS];
        for step in 0..teacher_steps {
            let lp = fwd.next_log_probs(&memory, &mut state, &prefix);
            std::hint::black_box(&lp);
            prefix.push(4 + (step % 8));
        }
    });

    let smem = student.encode(src);
    let student_steps = student.max_tgt_len();
    let student_sample = bench("student/decode_maxlen", 1, 9, || {
        let mut cache = student.start_cache(&smem);
        let mut token = BOS;
        for step in 0..student_steps {
            let logits = student.step_logits(&mut cache, token);
            std::hint::black_box(&logits);
            token = 4 + (step % 8);
        }
    });

    let teacher_tps = tokens_per_s(teacher_sample, teacher_steps);
    let student_tps = tokens_per_s(student_sample, student_steps);
    let speedup = student_tps / teacher_tps;
    println!("teacher {teacher_tps:.0} tokens/s, student {student_tps:.0} tokens/s ({speedup:.1}x)");
    if speedup < MIN_STUDENT_SPEEDUP {
        return Err(format!(
            "student speedup {speedup:.2}x below the {MIN_STUDENT_SPEEDUP}x bar \
             (teacher median {} ns, student median {} ns)",
            teacher_sample.median_ns, student_sample.median_ns
        ));
    }

    // Persist the record, guard against committed regressions, re-validate.
    let mut record = BenchRecord::new("distill");
    record.push_derived(
        "teacher/decode_maxlen",
        teacher_sample,
        Derived { tokens_per_s: Some(teacher_tps), speedup_vs: None },
    );
    record.push_derived(
        "student/decode_maxlen",
        student_sample,
        Derived {
            tokens_per_s: Some(student_tps),
            speedup_vs: Some(("teacher/decode_maxlen".into(), speedup)),
        },
    );
    for (name, n) in
        [("oracle/win", verdict.win), ("oracle/tie", verdict.tie), ("oracle/lose", verdict.lose)]
    {
        let n = n as u128;
        record.push(name, Sample { median_ns: n, min_ns: n, max_ns: n });
    }

    let path = out_dir.join("BENCH_distill.json");
    if let Ok(text) = std::fs::read_to_string(&path) {
        let committed = validate_distill_json(&text)
            .map_err(|e| format!("committed {} is malformed: {e}", path.display()))?;
        // Only the latency entries carry timing semantics; the oracle
        // counters vary with the verdict and are excluded by comparing
        // against a latency-only view.
        let mut latency_only = BenchRecord::new("distill");
        for name in ["teacher/decode_maxlen", "student/decode_maxlen"] {
            if let Some(s) = committed.entry(name) {
                latency_only.push(name, s);
            }
        }
        median_regressions(&latency_only, &record, MAX_MEDIAN_REGRESSION)
            .map_err(|e| format!("regression vs committed {}: {e}", path.display()))?;
    }
    record.write_validated(&path).map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
    validate_distill_json(&text).map_err(|e| format!("{} is malformed: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Greedy max-length logits trace — the bitwise fingerprint used to pin
/// the artifact round trip.
fn step_logits_trace(student: &QuantStudent, src: &[usize]) -> Vec<u32> {
    let memory = student.encode(src);
    let mut cache = student.start_cache(&memory);
    let mut out = Vec::new();
    let mut token = BOS;
    for _ in 0..student.max_tgt_len() {
        let logits = student.step_logits(&mut cache, token);
        let (best, lp) = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .expect("non-empty logits");
        out.extend(logits.iter().map(|l| l.to_bits()));
        let _ = lp;
        token = best;
    }
    out
}

fn tokens_per_s(s: Sample, steps: usize) -> f64 {
    steps as f64 * 1e9 / s.median_ns.max(1) as f64
}
