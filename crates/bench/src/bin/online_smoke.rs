//! Closed-loop online-learning smoke run, persisting `BENCH_online.json`.
//!
//! Wired into `scripts/verify.sh --online-smoke`. Simulates ≥3 days of
//! the paper's deployment loop — serve → click → train → swap — with the
//! trainer running **concurrently with serving** each day:
//!
//! * **day 0 (cold start)** — the `ModelStore` opens on a rewriter that
//!   emits nothing (epoch 1): serving works, pages rank on base
//!   retrieval alone, and the held-out session-oracle relevance is
//!   exactly zero. A bootstrap corpus of historical
//!   `(session-context + query → rewrite)` pairs is harvested offline
//!   from the click log (the paper's original training source).
//! * **each day** — the runtime serves that day's sessions through the
//!   epoch-pinned session path while `OnlineLoop::train_tick` trains on
//!   everything harvested so far and hot-swaps the new model mid-day.
//!   Every request must be served (no serving gap), and every response
//!   must be stamped with exactly one *published* model epoch — the
//!   day's opening epoch or the freshly swapped one, never anything
//!   torn. The day's served pages then go through the deterministic
//!   cascade click model; clicked rewrites feed the next day's tick.
//! * **eval** — after each day, held-out sessions (never served, never
//!   harvested) are rewritten by the pinned model and scored with
//!   `qrw_data::intent_relevance`. The trajectory must never regress
//!   below day 0 — the acceptance bar, re-checked by
//!   `validate_online_json` when the record is read back.
//!
//! `--full` (set by `QRW_VERIFY_BUDGET=full`) extends the run to 5 days
//! with a 2x per-tick step budget.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use qrw_bench::harness::{group, validate_online_json, BenchRecord, Sample};
use qrw_core::{CheckpointStore, QueryRewriter, TrainConfig, TrainMode};
use qrw_data::{
    generate_sessions, intent_relevance, ClickLog, LogConfig, Pair, SessionConfig,
};
use qrw_nmt::ModelConfig;
use qrw_online::{
    encode_session, FeedbackBuffer, FeedbackConfig, OnlineConfig, OnlineLoop, TickReport,
    ONLINE_MODEL_NAME,
};
use qrw_search::{
    DeadlineBudget, InvertedIndex, ModelStore, SearchEngine, SearchResponse, SharedRewriter,
};
use qrw_serve::{Outcome, Runtime, RuntimeConfig, ServeStack};
use qrw_text::Vocab;

const QUICK_DAYS: usize = 3;
const FULL_DAYS: usize = 5;
/// Serving sessions per day (held-out sessions come on top).
const TRAIN_SESSIONS: usize = 48;
const HELD_OUT_SESSIONS: usize = 12;
/// Rewrites requested per query, serving and eval alike.
const REWRITES_K: usize = 3;

fn main() -> ExitCode {
    let (out_dir, full) = parse_args();
    let days = if full { FULL_DAYS } else { QUICK_DAYS };
    let steps_per_tick: u64 = if full { 120 } else { 60 };

    // --- World: intent-structured log, catalog-title index, shared vocab.
    let log = ClickLog::generate(&LogConfig { n_queries: 120, ..LogConfig::default() });
    let engine = Arc::new(SearchEngine::new(InvertedIndex::build(
        log.catalog.items.iter().map(|i| i.title_tokens.clone()),
    )));
    let vocab = build_vocab(&log);
    let sessions = generate_sessions(
        &log,
        &SessionConfig {
            sessions: TRAIN_SESSIONS + HELD_OUT_SESSIONS,
            min_len: 2,
            max_len: 4,
            drift: 0.3,
            seed: 47,
        },
    );
    let (train_sessions, held_out) = sessions.split_at(TRAIN_SESSIONS);

    // --- The store opens cold: epoch 1 serves no rewrites at all.
    let store = ModelStore::new(Arc::new(ColdStart) as SharedRewriter);
    let stack = ServeStack {
        engine: Arc::clone(&engine),
        cache: None,
        student: None,
        online: None,
        baseline: None,
        models: Some(Arc::clone(&store)),
    };
    let runtime = Runtime::new(stack, RuntimeConfig { workers: 4, max_batch: 8, ..RuntimeConfig::default() });

    // --- The online loop around the crash-safe trainer.
    let ckpt_dir = TempDir::new("online_smoke");
    let config = OnlineConfig {
        model: ModelConfig::tiny_transformer(vocab.len()),
        train: TrainConfig {
            steps: steps_per_tick,
            warmup_steps: steps_per_tick / 2,
            batch_size: 8,
            ..TrainConfig::smoke()
        },
        mode: TrainMode::Joint,
        top_n: 8,
        rewriter_seed: 41,
    };
    let mut online = OnlineLoop::new(
        config,
        Arc::clone(&vocab),
        Arc::clone(&store),
        CheckpointStore::new(&ckpt_dir.0),
    );

    // --- Day 0: bootstrap harvest from the historical log + cold eval.
    group("day 0: cold start");
    let bootstrap = bootstrap_pairs(&log, &vocab, train_sessions);
    if bootstrap.is_empty() {
        eprintln!("online_smoke: historical bootstrap harvested nothing");
        return ExitCode::FAILURE;
    }
    println!("bootstrap pairs from the historical log: {}", bootstrap.len());
    let mut record = BenchRecord::new("online");
    let day0 = eval_relevance(&store, &log, held_out);
    if day0 != 0 {
        eprintln!("online_smoke: cold model scored {day0} permille, expected 0");
        return ExitCode::FAILURE;
    }
    print_sample("day0/oracle_permille", point_sample(day0));
    record.push("day0/oracle_permille", point_sample(day0));

    // --- The loop: serve the day while the tick trains and swaps.
    let fb_config = FeedbackConfig::default();
    let mut buffer = FeedbackBuffer::new(4096);
    let mut requests_total = 0u64;
    let mut trajectory = vec![day0];
    for day in 1..=days {
        group(&format!("day {day}: serve || train -> swap -> click -> eval"));
        let epoch_before = store.swap_stats().current_epoch;
        let mut train_data = bootstrap.clone();
        train_data.extend_from_slice(buffer.pairs());

        let mut served: Vec<(usize, usize, Vec<Vec<String>>, SearchResponse)> = Vec::new();
        let mut tick = TickReport::default();
        {
            let online = &mut online;
            let served = &mut served;
            let tick = &mut tick;
            let runtime = &runtime;
            let store = &store;
            std::thread::scope(|scope| {
                let trainer = scope.spawn(move || online.train_tick(&train_data, &train_data));
                *served = serve_day(runtime, store, epoch_before + 1, &log, train_sessions);
                *tick = trainer.join().expect("trainer must not panic");
            });
        }
        if !tick.trained || tick.swap_failed || tick.published_epoch != Some(epoch_before + 1) {
            eprintln!("online_smoke: day {day} tick did not publish (report {tick:?})");
            return ExitCode::FAILURE;
        }

        // Exactly one *published* epoch per response: the day's opening
        // epoch or the mid-day swap — a torn or unpublished stamp fails.
        requests_total += served.len() as u64;
        let mut on_old = 0usize;
        let mut on_new = 0usize;
        for (_, _, _, resp) in &served {
            if resp.model_epoch != epoch_before && resp.model_epoch != epoch_before + 1 {
                eprintln!(
                    "online_smoke: day {day} response stamped unpublished model epoch {} \
                     (published: {} and {})",
                    resp.model_epoch,
                    epoch_before,
                    epoch_before + 1
                );
                return ExitCode::FAILURE;
            }
            if resp.model_epoch == epoch_before + 1 {
                on_new += 1;
            } else {
                on_old += 1;
            }
        }
        if on_old == 0 || on_new == 0 {
            eprintln!(
                "online_smoke: day {day} did not straddle the swap \
                 ({on_old} on epoch {epoch_before}, {on_new} on {})",
                epoch_before + 1
            );
            return ExitCode::FAILURE;
        }
        println!(
            "served {} requests across the swap: {on_old} on epoch {epoch_before}, \
             {on_new} on the freshly swapped epoch {}",
            served.len(),
            epoch_before + 1
        );

        // The day's pages through the cascade click model; a unique user
        // id per (day, session) keeps the common-random-numbers stream
        // fresh across days.
        for (s, qi, context, resp) in &served {
            let user = (day * 10_000 + s) as u64;
            buffer.observe(&log, &vocab, user, context, *qi, resp, &fb_config, None);
        }
        let stats = buffer.stats();
        println!(
            "cascade: {} sessions, {} clicks, {} harvested (cumulative)",
            stats.sessions, stats.clicks, stats.harvested
        );

        let rel = eval_relevance(&store, &log, held_out);
        let name = format!("day{day}/oracle_permille");
        print_sample(&name, point_sample(rel));
        record.push(name, point_sample(rel));
        trajectory.push(rel);
    }

    // --- The acceptance bar, in-run: never below day 0.
    if let Some(bad) = trajectory.iter().position(|&r| r < day0) {
        eprintln!(
            "online_smoke: day {bad} relevance {} regressed below day 0 ({day0})",
            trajectory[bad]
        );
        return ExitCode::FAILURE;
    }
    println!("\noracle trajectory (permille): {trajectory:?}");

    // --- Loop accounting: one swap per day, none failed, nothing pinned.
    let swaps = store.swap_stats();
    if swaps.epochs_published != days as u64 || swaps.swap_failures != 0 || swaps.pinned_now != 0
    {
        eprintln!("online_smoke: swap accounting off: {swaps:?}");
        return ExitCode::FAILURE;
    }
    let health = online.health_report();
    if health.train.checkpoints_written != days as u64 {
        eprintln!(
            "online_smoke: expected {days} checkpoints, wrote {}",
            health.train.checkpoints_written
        );
        return ExitCode::FAILURE;
    }
    for (name, v) in [
        ("serve/requests_total", u128::from(requests_total)),
        ("serve/harvested_total", u128::from(buffer.stats().harvested)),
        ("swap/epochs_published", u128::from(swaps.epochs_published)),
        ("swap/swap_failures", u128::from(swaps.swap_failures)),
    ] {
        print_sample(name, point_sample(v));
        record.push(name, point_sample(v));
    }

    // --- Persist + re-validate against the online schema.
    let path = out_dir.join("BENCH_online.json");
    if let Err(e) = record.write_validated(&path) {
        eprintln!("online_smoke: {e}");
        return ExitCode::FAILURE;
    }
    let text = std::fs::read_to_string(&path).expect("re-read bench file");
    match validate_online_json(&text) {
        Ok(_) => println!("\nwrote {}", path.display()),
        Err(e) => {
            eprintln!("online_smoke: {} is malformed: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Epoch 1 of every deployment: a model that has learned nothing yet and
/// rewrites nothing. Serving works (base retrieval only) and the held-out
/// oracle scores exactly zero, anchoring the trajectory bar.
struct ColdStart;

impl QueryRewriter for ColdStart {
    fn rewrite(&self, _query: &[String], _k: usize) -> Vec<Vec<String>> {
        Vec::new()
    }
    fn name(&self) -> &str {
        ONLINE_MODEL_NAME
    }
}

fn parse_args() -> (PathBuf, bool) {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    let mut full = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            "--full" => full = true,
            other => panic!("unknown argument {other:?} (usage: online_smoke [--out DIR] [--full])"),
        }
    }
    (out, full)
}

fn build_vocab(log: &ClickLog) -> Arc<Vocab> {
    let mut v = Vocab::new();
    for q in &log.queries {
        for t in &q.tokens {
            v.insert(t);
        }
    }
    for item in &log.catalog.items {
        for t in &item.title_tokens {
            v.insert(t);
        }
    }
    Arc::new(v)
}

/// The title-register phrasing of a query's ground-truth intent — the
/// rewrite a historical click implicitly endorsed.
fn oracle_rewrite(log: &ClickLog, qi: usize) -> Vec<String> {
    let q = &log.queries[qi];
    let mut rw = Vec::new();
    if let Some(aud) = q.audience {
        rw.push(log.catalog.audience(aud).title_terms[0].clone());
    }
    if let Some(b) = q.brand {
        rw.push(log.catalog.brand(b).formal.clone());
    }
    rw.push(log.catalog.category(q.category).title_terms[0].clone());
    rw
}

/// Historical bootstrap: session-encoded `(context + query → rewrite)`
/// pairs over the serving sessions, the offline corpus the paper trains
/// its initial model from before any online feedback exists.
fn bootstrap_pairs(log: &ClickLog, vocab: &Vocab, sessions: &[Vec<usize>]) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for session in sessions {
        let mut context: Vec<Vec<String>> = Vec::new();
        for &qi in session {
            let q = &log.queries[qi];
            let src = encode_session(vocab, &context, &q.tokens);
            let tgt = vocab.encode(&oracle_rewrite(log, qi));
            if !src.is_empty() && !tgt.is_empty() {
                pairs.push(Pair { src, tgt, weight: 1 });
            }
            context.push(q.tokens.clone());
        }
    }
    pairs
}

/// Serves one day of sessions through the runtime's epoch-pinned session
/// path. Every request must come back `Served` — any shed, rejection, or
/// panic is a serving gap and aborts the bench. Halfway through, the
/// driver waits for the concurrent tick's hot-swap to land
/// (`swap_epoch`), so every day's traffic provably straddles the swap:
/// requests keep serving before, during, and after the model changes.
fn serve_day(
    runtime: &Runtime,
    store: &Arc<ModelStore>,
    swap_epoch: u64,
    log: &ClickLog,
    sessions: &[Vec<usize>],
) -> Vec<(usize, usize, Vec<Vec<String>>, SearchResponse)> {
    let mut served = Vec::new();
    let out = &mut served;
    runtime.run(|rt| {
        for (s, session) in sessions.iter().enumerate() {
            if s == sessions.len() / 2 {
                wait_for_epoch(store, swap_epoch);
            }
            let mut context: Vec<Vec<String>> = Vec::new();
            for &qi in session {
                let tokens = log.queries[qi].tokens.clone();
                let rec =
                    rt.call_session(tokens.clone(), context.clone(), DeadlineBudget::unlimited());
                match rec.outcome {
                    Outcome::Served(resp) => out.push((s, qi, context.clone(), resp)),
                    other => panic!("serving gap: request {} not served: {other:?}", rec.id),
                }
                context.push(tokens);
            }
        }
    });
    served
}

/// Spins (bounded) until the store has published `epoch`.
fn wait_for_epoch(store: &Arc<ModelStore>, epoch: u64) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    while store.swap_stats().current_epoch < epoch {
        assert!(
            std::time::Instant::now() < deadline,
            "trainer never published epoch {epoch} (swap lost?)"
        );
        std::thread::yield_now();
    }
}

/// Held-out session-oracle relevance of the store's current model, in
/// permille: each held-out query (with its running session context) is
/// rewritten by the pinned model and scored with the best
/// `intent_relevance` over its rewrites, averaged over all queries.
fn eval_relevance(store: &Arc<ModelStore>, log: &ClickLog, held_out: &[Vec<usize>]) -> u128 {
    let pin = store.pin();
    let mut total = 0.0f64;
    let mut n = 0usize;
    for session in held_out {
        let mut context: Vec<Vec<String>> = Vec::new();
        for &qi in session {
            let q = &log.queries[qi];
            let best = pin
                .rewriter()
                .rewrite_with_context(&context, &q.tokens, REWRITES_K)
                .iter()
                .map(|rw| f64::from(intent_relevance(&log.catalog, &q.tokens, rw)))
                .fold(0.0f64, f64::max);
            total += best;
            n += 1;
            context.push(q.tokens.clone());
        }
    }
    assert!(n > 0, "held-out set must be non-empty");
    ((total / n as f64) * 1000.0).round() as u128
}

fn point_sample(v: u128) -> Sample {
    Sample { median_ns: v, min_ns: v, max_ns: v }
}

fn print_sample(name: &str, s: Sample) {
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}",
        s.median_ns, s.min_ns, s.max_ns
    );
}

/// Self-cleaning unique temp directory (std-only).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("qrw_{tag}_{}_{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}
