//! Hyper-parameter sweep over the Algorithm 1 training setup, used to
//! pick the default `Scale::paper()` settings. Runs each configuration
//! for both the transformer and the attention-RNN architecture and prints
//! final eval metrics side by side.
//!
//! ```text
//! cargo run --release -p qrw-bench --bin sweep
//! ```

use qrw_bench::experiment::{train_architecture, ExperimentData, Scale};
use qrw_core::TrainMode;
use qrw_nmt::ComponentKind;

fn main() {
    let base = Scale::paper();
    let data = ExperimentData::build(&base);
    println!("vocab {}, q2t pairs {}", data.vocab_size(), data.dataset.q2t.len());
    println!(
        "{:<34} {:>12} {:>12} {:>10} {:>10}",
        "config", "tf:pplQ2T", "rnn:pplQ2T", "tf:logP", "rnn:logP"
    );

    let grid: Vec<(&str, f32, u64, u64)> = vec![
        // (label, lr_factor, noam_warmup, steps)
        ("factor 0.6 warm 60 steps 320", 0.6, 60, 320),
        ("factor 0.3 warm 120 steps 320", 0.3, 120, 320),
        ("factor 1.0 warm 120 steps 320", 1.0, 120, 320),
        ("factor 0.6 warm 60 steps 640", 0.6, 60, 640),
        ("factor 0.3 warm 120 steps 640", 0.3, 120, 640),
        ("factor 1.2 warm 200 steps 640", 1.2, 200, 640),
    ];

    for (label, factor, warm, steps) in grid {
        let mut scale = base.clone();
        scale.train.lr_factor = factor;
        scale.train.noam_warmup = warm;
        scale.train.steps = steps;
        scale.train.warmup_steps = steps / 2;
        scale.train.eval_every = 0;
        let run = |enc: ComponentKind, dec: ComponentKind| {
            let (_m, curve) =
                train_architecture(&data, &scale, enc, dec, TrainMode::Joint, 7);
            *curve.last().expect("curve has a final point")
        };
        let tf = run(ComponentKind::Transformer, ComponentKind::Transformer);
        let rnn = run(ComponentKind::Rnn, ComponentKind::Rnn);
        println!(
            "{:<34} {:>12.3} {:>12.3} {:>10.2} {:>10.2}",
            label, tf.ppl_q2t, rnn.ppl_q2t, tf.log_prob, rnn.log_prob
        );
    }
}
