//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--smoke] [table1..table8 | fig5..fig9 | ablation-decoding |
//!        ablation-sampling | ablation-lambda | ablation-lm | all]
//! ```
//!
//! `--smoke` uses the tiny test scale (seconds); the default scale takes
//! minutes. Output prints our measured values next to the paper's.

use std::time::Instant;

use qrw_bench::experiment::{ExperimentData, Scale, System};
use qrw_bench::{figures, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let targets: Vec<&str> = args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let targets: Vec<&str> = if targets.is_empty() { vec!["all"] } else { targets };

    let scale = if smoke { Scale::smoke() } else { Scale::paper() };
    let wants = |name: &str| targets.iter().any(|t| *t == name || *t == "all");

    // Table 5 and Figure 5 need no trained models.
    if wants("table5") {
        section("Table V — latency (ms) of translation components");
        let reps = if smoke { 3 } else { 10 };
        println!("{}", tables::format_table5(&tables::table5(reps)));
    }

    let needs_system = ["table1", "table2", "table3", "table4", "table6", "table7", "table8",
        "fig5", "fig6", "fig7", "fig8", "ablation-decoding", "ablation-lm",
        "ablation-sampling", "ablation-lambda"]
        .iter()
        .any(|t| wants(t));
    let needs_data_only = wants("fig9");

    if !needs_system && !needs_data_only {
        return;
    }

    let t0 = Instant::now();
    if needs_system {
        eprintln!("[repro] building corpus and training joint + separate models…");
        let sys = System::build(scale.clone());
        eprintln!("[repro] training done in {:.1}s", t0.elapsed().as_secs_f32());

        if wants("table1") {
            section("Table I — dataset statistics");
            println!("{}", tables::table1(&sys));
            println!("paper: 5.6e9 pairs, avg 6.12 query words / 49.96 title words\n");
        }
        if wants("table2") {
            section("Table II — model hyper-parameters (scaled)");
            println!("{}\n", tables::table2(&sys));
        }
        if wants("table3") {
            section("Table III — good cases from the separately trained models");
            println!("{}", tables::format_examples(&tables::example_cases(&sys, &sys.separate, 4)));
        }
        if wants("table4") {
            section("Table IV — good cases from the jointly trained model");
            println!("{}", tables::format_examples(&tables::example_cases(&sys, &sys.joint, 4)));
        }
        if wants("table6") {
            section("Table VI — oracle (\"human\") relevancy evaluation");
            println!("{}\n", tables::table6(&sys));
        }
        if wants("table7") {
            section("Table VII — lexical diversity vs semantic relevancy");
            println!("{}", tables::format_table7(&tables::table7(&sys)));
        }
        if wants("table8") {
            section("Table VIII — A/B user-simulation (relative deltas)");
            let sessions = if smoke { 400 } else { 4000 };
            println!("{}", tables::table8(&sys, sessions));
            println!("paper: UCVR +0.5219%, GMV +1.1054%, QRR -0.0397%\n");
        }
        if wants("fig5") {
            section("Figure 5 — merged syntax tree");
            println!("{}\n", figures::fig5(&sys));
        }
        if wants("fig6") {
            section("Figure 6 — attention heat maps");
            println!("{}", figures::fig6(&sys));
        }
        if wants("fig7") {
            section("Figure 7 — separate vs joint convergence");
            println!("{}", figures::fig7(&sys));
        }
        if wants("fig8") {
            section("Figure 8 — transformer vs attention-RNN");
            eprintln!("[repro] training attention-RNN ablation…");
            println!("{}", figures::fig8(&sys));
        }
        if wants("fig9") || wants("all") {
            section("Figure 9 — q2q: pure RNN vs hybrid");
            eprintln!("[repro] training q2q ablations…");
            println!("{}", figures::fig9(&sys.data, &sys.scale));
        }
        if wants("ablation-decoding") {
            section("Ablation — decoding strategies (§III-F)");
            let n = if smoke { 4 } else { 16 };
            println!("{}", qrw_bench::ablations::format_decoding(
                &qrw_bench::ablations::decoding_ablation(&sys, n)));
        }
        if wants("ablation-sampling") {
            section("Ablation — inference sampling pool size (§III-F n)");
            let n = if smoke { 4 } else { 24 };
            println!("{}", qrw_bench::ablations::format_sampling(
                &qrw_bench::ablations::sampling_ablation(&sys, n)));
        }
        if wants("ablation-lambda") {
            section("Ablation — cycle-consistency weight λ");
            eprintln!("[repro] training λ sweep…");
            let lambdas: &[f32] = if smoke { &[0.0, 0.1] } else { &[0.0, 0.05, 0.1, 0.3] };
            println!("{}", qrw_bench::ablations::format_lambda(
                &qrw_bench::ablations::lambda_ablation(&sys, lambdas)));
        }
        if wants("ablation-lm") {
            section("Ablation — GPT-style single LM vs joint pipeline (§V)");
            eprintln!("[repro] training the GPT-style LM…");
            let n = if smoke { 4 } else { 24 };
            let (rows, curve) = qrw_bench::ablations::lm_ablation(&sys, n);
            println!("{}", qrw_bench::ablations::format_lm_ablation(&rows, &curve));
        }
    } else if needs_data_only {
        let data = ExperimentData::build(&scale);
        section("Figure 9 — q2q: pure RNN vs hybrid");
        println!("{}", figures::fig9(&data, &scale));
    }
    eprintln!("[repro] total {:.1}s", t0.elapsed().as_secs_f32());
}

fn section(title: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("{title}");
    println!("────────────────────────────────────────────────────────────────");
}
