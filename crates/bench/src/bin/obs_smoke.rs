//! Observability smoke run, wired into `scripts/verify.sh --obs-smoke`.
//!
//! Replays the `load_smoke` request mixes (decode-heavy tail +
//! KV-hit-heavy head) through the serving runtime with a logical-clock
//! [`Tracer`] attached, then checks the observability layer end to end:
//!
//! * the exported trace JSONL re-validates against the harness schema
//!   ([`validate_trace_jsonl`]);
//! * span-tree invariants hold — every admitted request's trace ends in
//!   exactly one terminal span, and no span was dropped by the ring
//!   buffer during the run;
//! * the engine's latency histogram totals equal the served request
//!   counts (every served request is measured exactly once);
//! * tracing overhead on the tail mix stays under [`MAX_OVERHEAD`]
//!   (min-of-reps traced vs untraced, the same estimator `load_smoke`
//!   uses for its speedup bar).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use qrw_bench::harness::{group, validate_trace_jsonl};
use qrw_core::QueryRewriter;
use qrw_obs::{Tracer, MINTED_TRACE_BIT};
use qrw_search::{
    DeadlineBudget, InvertedIndex, RewriteCache, SearchEngine, ServingConfig,
};
use qrw_serve::{
    synthetic_docs, BatchedQ2Q, MixConfig, Outcome, Runtime, RuntimeConfig, ServeStack, Workload,
};
use qrw_text::Vocab;

/// Maximum accepted traced-vs-untraced slowdown on the tail mix
/// (the PR's tracing-overhead acceptance bar: < 5%).
const MAX_OVERHEAD: f64 = 0.05;

const VOCAB_WORDS: usize = 24;
const REQUESTS: usize = 48;
const DOCS: usize = 120;
const MODEL_SEED: u64 = 41;
const REWRITE_SEED: u64 = 7;
const MIX_SEED: u64 = 13;
const REPS: usize = 7;

fn main() -> ExitCode {
    let vocab = build_vocab();
    let tail = Workload::generate(&vocab, &MixConfig::tail_heavy(REQUESTS, MIX_SEED));
    let head = Workload::generate(&vocab, &MixConfig::head_heavy(REQUESTS, MIX_SEED));

    for (label, workload) in [("tail", &tail), ("head", &head)] {
        if let Err(e) = traced_mix(label, &vocab, workload) {
            eprintln!("obs_smoke: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = overhead_bar(&vocab, &tail) {
        eprintln!("obs_smoke: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn build_vocab() -> Arc<Vocab> {
    let mut v = Vocab::new();
    for i in 0..VOCAB_WORDS {
        v.insert(&format!("w{i}"));
    }
    Arc::new(v)
}

/// Engine + prefilled cache + batched online model, identical seeds to
/// `load_smoke` so the two smoke runs exercise the same traffic.
fn build_stack(vocab: &Arc<Vocab>, head: &[Vec<String>], tracer: Option<Tracer>) -> ServeStack {
    let docs = synthetic_docs(vocab, DOCS, 11);
    let mut engine = SearchEngine::new(InvertedIndex::build(docs));
    if let Some(t) = tracer {
        engine = engine.with_tracer(t);
    }
    let engine = Arc::new(engine);
    let model = Arc::new(qrw_nmt::Seq2Seq::new(
        qrw_nmt::ModelConfig::tiny_transformer(vocab.len()),
        MODEL_SEED,
    ));
    let online = Arc::new(BatchedQ2Q::new(model, Arc::clone(vocab), 40, REWRITE_SEED));
    let cache = Arc::new(RewriteCache::new());
    for q in head {
        cache.insert(q, online.rewrite(q, ServingConfig::default().max_rewrites));
    }
    ServeStack { engine, cache: Some(cache), student: None, online: Some(online), baseline: None, models: None }
}

fn runtime_config() -> RuntimeConfig {
    RuntimeConfig {
        queue_capacity: REQUESTS,
        max_batch: 16,
        workers: 2,
        ..RuntimeConfig::default()
    }
}

/// Runs one traced mix through the runtime and checks the exported
/// trace plus the histogram/served-count accounting.
fn traced_mix(label: &str, vocab: &Arc<Vocab>, workload: &Workload) -> Result<(), String> {
    group(&format!("{label} mix (traced, open-loop)"));
    let tracer = Tracer::logical();
    let stack = build_stack(vocab, &workload.head, Some(tracer.clone()));
    let engine = Arc::clone(&stack.engine);
    let runtime = Runtime::new(stack, runtime_config());
    let records = runtime.execute(
        workload.requests.iter().map(|q| (q.clone(), DeadlineBudget::unlimited())).collect(),
    );
    let served = records.iter().filter(|r| matches!(r.outcome, Outcome::Served(_))).count();
    if served != workload.requests.len() {
        return Err(format!("{label}: expected every request served, got {served}"));
    }

    // The exported JSONL must re-validate against the harness schema.
    let jsonl = tracer.export_jsonl();
    let lines = validate_trace_jsonl(&jsonl)
        .map_err(|e| format!("{label}: exported trace JSONL is malformed: {e}"))?;
    if tracer.dropped() != 0 {
        return Err(format!(
            "{label}: ring buffer dropped {} spans during a {REQUESTS}-request run",
            tracer.dropped()
        ));
    }

    // Every admitted request's trace (trace id = request id; minted traces
    // hold batch-level spans) must end in exactly one terminal span.
    let mut request_traces = std::collections::BTreeMap::new();
    for l in &lines {
        if l.trace & MINTED_TRACE_BIT == 0 {
            let terminal = matches!(l.name.as_str(), "served" | "shed" | "rejected");
            *request_traces.entry(l.trace).or_insert(0usize) += usize::from(terminal);
        }
    }
    if request_traces.len() != workload.requests.len() {
        return Err(format!(
            "{label}: {} request traces for {} requests",
            request_traces.len(),
            workload.requests.len()
        ));
    }
    if let Some((trace, n)) = request_traces.iter().find(|(_, n)| **n != 1) {
        return Err(format!("{label}: trace {trace} has {n} terminal spans, want exactly 1"));
    }

    // Histogram totals equal the served request counts: the engine
    // measures each served request exactly once.
    let hist = engine.latency_histogram();
    if hist.count() != served as u64 {
        return Err(format!(
            "{label}: latency histogram holds {} samples for {served} served requests",
            hist.count()
        ));
    }
    let report = engine.health_report();
    if report.latency_count != served as u64 {
        return Err(format!(
            "{label}: health_report latency_count {} != served {served}",
            report.latency_count
        ));
    }
    println!(
        "{label}: {served} served, {} spans across {} request traces, \
         latency p50/p95/p99 = {}/{}/{} us",
        lines.len(),
        request_traces.len(),
        report.latency_p50_us,
        report.latency_p95_us,
        report.latency_p99_us
    );
    Ok(())
}

/// Min-of-reps traced vs untraced throughput on the tail mix. The mins
/// are the runs least disturbed by the host, so their ratio isolates the
/// structural cost of tracing.
fn overhead_bar(vocab: &Arc<Vocab>, tail: &Workload) -> Result<(), String> {
    group("tracing overhead (tail mix)");
    let mut plain_ns = Vec::new();
    let mut traced_ns = Vec::new();
    for rep in 0..=REPS {
        for (traced, out) in [(false, &mut plain_ns), (true, &mut traced_ns)] {
            let tracer = traced.then(Tracer::logical);
            let stack = build_stack(vocab, &tail.head, tracer.clone());
            let runtime = Runtime::new(stack, runtime_config());
            let t0 = Instant::now();
            let records = runtime.execute(
                tail.requests.iter().map(|q| (q.clone(), DeadlineBudget::unlimited())).collect(),
            );
            let elapsed = t0.elapsed();
            assert!(records.iter().all(|r| matches!(r.outcome, Outcome::Served(_))));
            if let Some(t) = &tracer {
                assert!(!t.snapshot().is_empty(), "traced run must record spans");
            }
            if rep > 0 {
                out.push(elapsed.as_nanos() / REQUESTS as u128);
            }
        }
    }
    let plain = *plain_ns.iter().min().expect("reps") as f64;
    let traced = *traced_ns.iter().min().expect("reps") as f64;
    let overhead = traced / plain.max(1.0) - 1.0;
    println!(
        "untraced best {plain:.0} ns/req, traced best {traced:.0} ns/req, \
         overhead {:.2}%",
        overhead * 100.0
    );
    if overhead >= MAX_OVERHEAD {
        return Err(format!(
            "tracing overhead {:.2}% is over the {:.0}% bar",
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        ));
    }
    Ok(())
}
