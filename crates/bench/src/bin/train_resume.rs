//! Crash-safe training smoke check, wired into
//! `scripts/verify.sh --train-resume`.
//!
//! Three scenarios, all offline and deterministic:
//!
//! 1. **Resume equivalence** — train N steps uninterrupted; train N/2
//!    steps, "kill" the process (drop the trainer), resume from the
//!    checkpoint directory into a differently-initialised model and train
//!    the rest. The accumulated curve and the final weights must be
//!    bit-for-bit identical.
//! 2. **Torn-commit recovery** — repeat the run with a fault-injecting
//!    sink that kills the writer mid-way through the second checkpoint
//!    commit; resume must land on the first (intact) checkpoint.
//! 3. **Telemetry** — the resumed curve, sentinel counters included, is
//!    persisted as `CURVE_train_resume.json` and re-validated.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use qrw_bench::harness::{curve_to_json, validate_curve_json};
use qrw_core::{
    CheckpointStore, CyclicTrainer, JointModel, TrainConfig, TrainFaultInjector, TrainMode,
};
use qrw_data::Pair;
use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_tensor::serialize;

fn main() -> ExitCode {
    let out_dir = parse_out_dir();
    let work = std::env::temp_dir().join(format!("qrw-train-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work);
    std::fs::create_dir_all(&work).expect("create work dir");
    let result = run(&out_dir, &work);
    let _ = std::fs::remove_dir_all(&work);
    result
}

fn run(out_dir: &Path, work: &Path) -> ExitCode {
    let pairs = toy_pairs();
    let eval = &pairs[..2];
    let mode = TrainMode::Joint;

    // Scenario 1a: the uninterrupted reference run.
    let model_a = joint(1);
    let mut trainer_a = CyclicTrainer::new(config(6), 32);
    let curve_a = trainer_a.train(&model_a, &pairs, eval, mode);
    println!("uninterrupted: {} steps, {} curve points", 6, curve_a.points.len());

    // Scenario 1b: train half, kill, resume, train the rest.
    let ckpt_dir = work.join("ckpts");
    {
        let model_b = joint(1);
        let mut trainer_b = CyclicTrainer::new(config(3), 32)
            .with_checkpoints(CheckpointStore::new(&ckpt_dir));
        trainer_b.train(&model_b, &pairs, eval, mode);
        // The trainer and model drop here: that is the "kill".
    }
    let model_b = joint(777); // fresh init, overwritten by the resume
    let (mut resumed, resumed_mode) = match CyclicTrainer::resume(&ckpt_dir, &model_b) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("train_resume: resume failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("resumed at step {} ({resumed_mode:?})", resumed.step_count());
    let curve_b = resumed.train(&model_b, &pairs, eval, resumed_mode);

    if curve_b != curve_a {
        eprintln!("train_resume: resumed curve diverged from the uninterrupted run");
        return ExitCode::FAILURE;
    }
    if weights(&model_b) != weights(&model_a) {
        eprintln!("train_resume: resumed weights are not bitwise-identical");
        return ExitCode::FAILURE;
    }
    println!("resume equivalence: curve and weights are bit-for-bit identical");

    // Scenario 2: kill the writer inside the second checkpoint commit.
    // The first commit's size is the sum of its four files plus the
    // LATEST pointer (training is deterministic, so the torn run's
    // layout matches the clean run's).
    let first = ckpt_dir.join("ckpt-000000000003");
    let mut base = "ckpt-000000000003".len() as u64;
    for name in ["forward.qrw", "backward.qrw", "trainer.qrws", "MANIFEST"] {
        base += std::fs::metadata(first.join(name)).expect("read checkpoint member").len();
    }
    let torn_dir = work.join("torn");
    {
        let sink = TrainFaultInjector::kill_at_byte(base + 1000);
        let model_c = joint(1);
        let mut trainer_c = CyclicTrainer::new(config(6), 32)
            .with_checkpoints(CheckpointStore::with_sink(&torn_dir, Box::new(sink)));
        trainer_c.train(&model_c, &pairs, eval, mode);
    }
    let model_c = joint(888);
    match CyclicTrainer::resume(&torn_dir, &model_c) {
        Ok((t, _)) if t.step_count() == 3 => {
            println!("torn commit: recovered cleanly at step 3");
        }
        Ok((t, _)) => {
            eprintln!("train_resume: torn commit resumed at step {}, expected 3", t.step_count());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("train_resume: torn commit failed to resume: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Scenario 3: persist + re-validate the curve with its counters.
    let text = curve_to_json("train_resume", &curve_b);
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("train_resume: creating {} failed: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let path = out_dir.join("CURVE_train_resume.json");
    if let Err(e) = std::fs::write(&path, &text) {
        eprintln!("train_resume: writing {} failed: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let reread = std::fs::read_to_string(&path).expect("re-read curve file");
    match validate_curve_json(&reread) {
        Ok((_, parsed)) if parsed == curve_b => println!("wrote {}", path.display()),
        Ok(_) => {
            eprintln!("train_resume: {} did not round-trip the curve", path.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("train_resume: {} is malformed: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn parse_out_dir() -> PathBuf {
    let mut args = std::env::args().skip(1);
    let mut out = PathBuf::from(".");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out needs a directory")),
            other => panic!("unknown argument {other:?} (usage: train_resume [--out DIR])"),
        }
    }
    out
}

/// The toy language used by the core training tests.
fn toy_pairs() -> Vec<Pair> {
    let mut pairs = Vec::new();
    for cat in 4..8usize {
        pairs.push(Pair { src: vec![10, cat], tgt: vec![20, cat, 21], weight: 3 });
        pairs.push(Pair { src: vec![11, cat], tgt: vec![20, cat, 22], weight: 2 });
    }
    pairs
}

fn joint(seed: u64) -> JointModel {
    let cfg = ModelConfig::tiny_transformer(24);
    JointModel::new(Seq2Seq::new(cfg.clone(), seed), Seq2Seq::new(cfg, seed + 1))
}

fn config(steps: u64) -> TrainConfig {
    TrainConfig {
        steps,
        warmup_steps: 2,
        batch_size: 2,
        beam_width: 2,
        top_n: 4,
        eval_every: 3,
        checkpoint_every: 3,
        ..Default::default()
    }
}

fn weights(model: &JointModel) -> (Vec<u8>, Vec<u8>) {
    (serialize::save(model.forward.params()), serialize::save(model.backward.params()))
}
