//! A tiny manual benchmark harness (no external deps, works offline).
//!
//! Criterion replacement for hermetic builds: warm up, sample the closure
//! wall-clock a fixed number of times, report median / min / max. The
//! numbers are not statistically rigorous — they exist so `cargo bench`
//! still surfaces the paper's latency ladders without crates.io access.

use std::time::{Duration, Instant};

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    pub median_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
}

/// Times `f` for `samples` runs after `warmup` unrecorded runs and prints a
/// one-line summary. Returns the summary for programmatic assertions.
pub fn bench(name: &str, warmup: usize, samples: usize, mut f: impl FnMut()) -> Sample {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let s = Sample {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        max_ns: times[times.len() - 1],
    };
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}",
        fmt_ns(s.median_ns),
        fmt_ns(s.min_ns),
        fmt_ns(s.max_ns)
    );
    s
}

/// Prints a group header, mirroring Criterion's visual grouping.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

fn fmt_ns(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let s = bench("noop", 1, 5, || {
            std::hint::black_box(2 + 2);
        });
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }
}
