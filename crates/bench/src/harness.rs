//! A tiny manual benchmark harness (no external deps, works offline).
//!
//! Criterion replacement for hermetic builds: warm up, sample the closure
//! wall-clock a fixed number of times, report median / min / max. The
//! numbers are not statistically rigorous — they exist so `cargo bench`
//! still surfaces the paper's latency ladders without crates.io access.

use std::time::{Duration, Instant};

/// One benchmark's timing summary (nanoseconds per iteration).
#[derive(Clone, Copy, Debug)]
pub struct Sample {
    pub median_ns: u128,
    pub min_ns: u128,
    pub max_ns: u128,
}

/// Times `f` for `samples` runs after `warmup` unrecorded runs and prints a
/// one-line summary. Returns the summary for programmatic assertions.
pub fn bench(name: &str, warmup: usize, samples: usize, mut f: impl FnMut()) -> Sample {
    for _ in 0..warmup {
        f();
    }
    let mut times: Vec<u128> = Vec::with_capacity(samples.max(1));
    for _ in 0..samples.max(1) {
        let t0 = Instant::now();
        f();
        times.push(t0.elapsed().as_nanos());
    }
    times.sort_unstable();
    let s = Sample {
        median_ns: times[times.len() / 2],
        min_ns: times[0],
        max_ns: times[times.len() - 1],
    };
    println!(
        "{name:<40} median {:>12}   min {:>12}   max {:>12}",
        fmt_ns(s.median_ns),
        fmt_ns(s.min_ns),
        fmt_ns(s.max_ns)
    );
    s
}

/// Prints a group header, mirroring Criterion's visual grouping.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

/// Optional per-entry derived metrics alongside the raw nanosecond
/// [`Sample`]: decode throughput, and a throughput ratio against another
/// entry in the same record (the distilled-student speedup bar).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Derived {
    /// Decode throughput in tokens per second (from the median).
    pub tokens_per_s: Option<f64>,
    /// `(reference entry name, ratio)` — how many times faster this entry
    /// is than the named reference, which must exist in the same record.
    pub speedup_vs: Option<(String, f64)>,
}

/// A machine-readable benchmark trajectory: one named [`Sample`] per
/// entry, persisted as `BENCH_<name>.json` so successive optimisation PRs
/// leave comparable numbers behind.
///
/// The on-disk schema (hand-rolled, no external JSON crate):
///
/// ```json
/// {"bench": "decode", "unit": "ns",
///  "entries": [{"name": "...", "median_ns": 1, "min_ns": 1, "max_ns": 2,
///               "tokens_per_s": 15750.5,
///               "speedup_vs": {"name": "...", "ratio": 2.5}}]}
/// ```
///
/// `tokens_per_s` and `speedup_vs` are optional per entry; when present
/// they must be finite and positive, and `speedup_vs.name` must reference
/// another entry of the same record.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    pub bench: String,
    entries: Vec<(String, Sample, Derived)>,
}

impl BenchRecord {
    pub fn new(bench: impl Into<String>) -> Self {
        BenchRecord { bench: bench.into(), entries: Vec::new() }
    }

    /// Records one named sample (names must be unique within a record).
    pub fn push(&mut self, name: impl Into<String>, sample: Sample) {
        self.push_derived(name, sample, Derived::default());
    }

    /// Records one named sample with derived metrics attached.
    pub fn push_derived(&mut self, name: impl Into<String>, sample: Sample, derived: Derived) {
        let name = name.into();
        assert!(
            self.entries.iter().all(|(n, _, _)| *n != name),
            "duplicate bench entry name: {name}"
        );
        self.entries.push((name, sample, derived));
    }

    /// The recorded sample for `name`, if present.
    pub fn entry(&self, name: &str) -> Option<Sample> {
        self.entries.iter().find(|(n, _, _)| n == name).map(|(_, s, _)| *s)
    }

    /// The derived metrics for `name`, if the entry exists.
    pub fn derived(&self, name: &str) -> Option<&Derived> {
        self.entries.iter().find(|(n, _, _)| n == name).map(|(_, _, d)| d)
    }

    /// Serializes the record to the `BENCH_*.json` schema.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str("  \"unit\": \"ns\",\n");
        out.push_str("  \"entries\": [\n");
        for (i, (name, s, d)) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": {}, \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}",
                json_string(name),
                s.median_ns,
                s.min_ns,
                s.max_ns,
            ));
            if let Some(t) = d.tokens_per_s {
                out.push_str(&format!(", \"tokens_per_s\": {t}"));
            }
            if let Some((vs, ratio)) = &d.speedup_vs {
                out.push_str(&format!(
                    ", \"speedup_vs\": {{\"name\": {}, \"ratio\": {ratio}}}",
                    json_string(vs)
                ));
            }
            out.push_str(&format!("}}{}\n", if i + 1 < self.entries.len() { "," } else { "" }));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `to_json` to `path`, then re-reads and re-validates it so a
    /// truncated or garbled write fails loudly at the producer.
    pub fn write_validated(&self, path: &std::path::Path) -> std::io::Result<BenchRecord> {
        std::fs::write(path, self.to_json())?;
        let text = std::fs::read_to_string(path)?;
        validate_bench_json(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} failed validation after write: {e}", path.display()),
            )
        })
    }
}

/// Serializes a [`TrainingCurve`] — including the sentinel counters
/// (`skipped_steps`, `rollbacks`, `nan_grad_events`) — to a
/// `CURVE_<name>.json` document:
///
/// ```json
/// {"curve": "train_resume", "points": [
///   {"step": 3, "ppl_q2t": 12.5, "ppl_t2q": 11.25, "log_prob": -4.5,
///    "accuracy": 0.25, "skipped_steps": 0, "rollbacks": 0,
///    "nan_grad_events": 0}]}
/// ```
///
/// Floats are written with Rust's shortest-round-trip formatting, so
/// [`validate_curve_json`] recovers them bit-for-bit; non-finite values
/// (a divergent run's eval can legitimately produce them) are written as
/// `null` and read back as NaN.
pub fn curve_to_json(name: &str, curve: &qrw_core::TrainingCurve) -> String {
    let f = |x: f32| -> String {
        if x.is_finite() { format!("{x}") } else { "null".into() }
    };
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"curve\": {},\n", json_string(name)));
    out.push_str("  \"points\": [\n");
    for (i, p) in curve.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"step\": {}, \"ppl_q2t\": {}, \"ppl_t2q\": {}, \"log_prob\": {}, \
             \"accuracy\": {}, \"skipped_steps\": {}, \"rollbacks\": {}, \
             \"nan_grad_events\": {}}}{}\n",
            p.step,
            f(p.ppl_q2t),
            f(p.ppl_t2q),
            f(p.log_prob),
            f(p.accuracy),
            p.skipped_steps,
            p.rollbacks,
            p.nan_grad_events,
            if i + 1 < curve.points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses and schema-checks a `CURVE_*.json` document, returning the
/// curve name and the decoded [`TrainingCurve`]. Every field of every
/// point is required — in particular the sentinel counters, so a producer
/// that drops them fails here rather than in a downstream plot.
pub fn validate_curve_json(
    text: &str,
) -> Result<(String, qrw_core::TrainingCurve), String> {
    let value = json::parse(text)?;
    if value.as_object().is_none() {
        return Err("top level is not an object".into());
    }
    let name = value
        .get("curve")
        .and_then(Json::as_str)
        .ok_or("missing string field \"curve\"")?
        .to_string();
    if name.is_empty() {
        return Err("\"curve\" must be non-empty".into());
    }
    let points = value
        .get("points")
        .and_then(Json::as_array)
        .ok_or("missing array field \"points\"")?;
    let mut curve = qrw_core::TrainingCurve::default();
    for (i, p) in points.iter().enumerate() {
        if p.as_object().is_none() {
            return Err(format!("points[{i}] is not an object"));
        }
        let int = |field: &str| -> Result<u64, String> {
            p.get(field)
                .and_then(Json::as_u128)
                .and_then(|x| u64::try_from(x).ok())
                .ok_or_else(|| format!("points[{i}] missing integer \"{field}\""))
        };
        let float = |field: &str| -> Result<f32, String> {
            match p.get(field) {
                Some(Json::Null) => Ok(f32::NAN),
                Some(v) => v
                    .as_f64()
                    .map(|x| x as f32)
                    .ok_or_else(|| format!("points[{i}] \"{field}\" is not a number")),
                None => Err(format!("points[{i}] missing number \"{field}\"")),
            }
        };
        curve.points.push(qrw_core::CurvePoint {
            step: int("step")?,
            ppl_q2t: float("ppl_q2t")?,
            ppl_t2q: float("ppl_t2q")?,
            log_prob: float("log_prob")?,
            accuracy: float("accuracy")?,
            skipped_steps: int("skipped_steps")?,
            rollbacks: int("rollbacks")?,
            nan_grad_events: int("nan_grad_events")?,
        });
    }
    Ok((name, curve))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses and schema-checks a `BENCH_*.json` document, returning the
/// decoded record. Errors describe the first violation found: not JSON,
/// wrong field types, a non-`ns` unit, empty or duplicate entries, or an
/// entry whose stats are not ordered `min <= median <= max`.
pub fn validate_bench_json(text: &str) -> Result<BenchRecord, String> {
    let value = json::parse(text)?;
    if value.as_object().is_none() {
        return Err("top level is not an object".into());
    }
    let bench = value
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string field \"bench\"")?
        .to_string();
    if bench.is_empty() {
        return Err("\"bench\" must be non-empty".into());
    }
    match value.get("unit").and_then(Json::as_str) {
        Some("ns") => {}
        Some(other) => return Err(format!("unsupported unit {other:?} (expected \"ns\")")),
        None => return Err("missing string field \"unit\"".into()),
    }
    let entries = value
        .get("entries")
        .and_then(Json::as_array)
        .ok_or("missing array field \"entries\"")?;
    if entries.is_empty() {
        return Err("\"entries\" must be non-empty".into());
    }
    let mut record = BenchRecord::new(bench);
    for (i, e) in entries.iter().enumerate() {
        if e.as_object().is_none() {
            return Err(format!("entries[{i}] is not an object"));
        }
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("entries[{i}] missing string \"name\""))?;
        if name.is_empty() {
            return Err(format!("entries[{i}] has an empty name"));
        }
        if record.entry(name).is_some() {
            return Err(format!("duplicate entry name {name:?}"));
        }
        let stat = |field: &str| -> Result<u128, String> {
            e.get(field)
                .and_then(Json::as_u128)
                .ok_or_else(|| format!("entries[{i}] ({name}) missing integer \"{field}\""))
        };
        let sample = Sample {
            median_ns: stat("median_ns")?,
            min_ns: stat("min_ns")?,
            max_ns: stat("max_ns")?,
        };
        if !(sample.min_ns <= sample.median_ns && sample.median_ns <= sample.max_ns) {
            return Err(format!(
                "entries[{i}] ({name}) stats not ordered: min {} <= median {} <= max {} violated",
                sample.min_ns, sample.median_ns, sample.max_ns
            ));
        }
        let mut derived = Derived::default();
        if let Some(v) = e.get("tokens_per_s") {
            let t = v
                .as_f64()
                .ok_or_else(|| format!("entries[{i}] ({name}) \"tokens_per_s\" is not a number"))?;
            if !t.is_finite() || t <= 0.0 {
                return Err(format!(
                    "entries[{i}] ({name}) \"tokens_per_s\" must be finite and positive, got {t}"
                ));
            }
            derived.tokens_per_s = Some(t);
        }
        if let Some(v) = e.get("speedup_vs") {
            if v.as_object().is_none() {
                return Err(format!("entries[{i}] ({name}) \"speedup_vs\" is not an object"));
            }
            let vs = v.get("name").and_then(Json::as_str).ok_or_else(|| {
                format!("entries[{i}] ({name}) \"speedup_vs\" missing string \"name\"")
            })?;
            if vs.is_empty() {
                return Err(format!("entries[{i}] ({name}) \"speedup_vs\" has an empty name"));
            }
            let ratio = v.get("ratio").and_then(Json::as_f64).ok_or_else(|| {
                format!("entries[{i}] ({name}) \"speedup_vs\" missing number \"ratio\"")
            })?;
            if !ratio.is_finite() || ratio <= 0.0 {
                return Err(format!(
                    "entries[{i}] ({name}) \"speedup_vs\" ratio must be finite and positive, \
                     got {ratio}"
                ));
            }
            derived.speedup_vs = Some((vs.to_string(), ratio));
        }
        record.entries.push((name.to_string(), sample, derived));
    }
    // Speedup references must resolve within the record: a ratio against
    // a missing baseline is meaningless.
    for (name, _, d) in &record.entries {
        if let Some((vs, _)) = &d.speedup_vs {
            if record.entry(vs).is_none() {
                return Err(format!(
                    "entry {name:?} \"speedup_vs\" references unknown entry {vs:?}"
                ));
            }
        }
    }
    Ok(record)
}

/// Entry names a `BENCH_mutate.json` record must carry: serve latency
/// with a frozen vs an epoch-pinned live catalog, tail latency and epoch
/// lifecycle counters under writer churn, and the time to recover the
/// last sealed epoch after a mid-commit kill.
pub const MUTATE_REQUIRED_ENTRIES: [&str; 8] = [
    "frozen/serve_ns_per_req",
    "pinned/serve_ns_per_req",
    "churn/latency_p50",
    "churn/latency_p95",
    "churn/latency_p99",
    "churn/epochs_published",
    "churn/epochs_reclaimed",
    "recovery/after_kill_ns",
];

/// Parses and schema-checks a `BENCH_mutate.json` document: the general
/// bench schema ([`validate_bench_json`]) plus the mutate-specific
/// contract — the record must be named `mutate` and carry every entry in
/// [`MUTATE_REQUIRED_ENTRIES`] (extra entries are allowed).
pub fn validate_mutate_json(text: &str) -> Result<BenchRecord, String> {
    let record = validate_bench_json(text)?;
    if record.bench != "mutate" {
        return Err(format!("\"bench\" is {:?}, expected \"mutate\"", record.bench));
    }
    for name in MUTATE_REQUIRED_ENTRIES {
        if record.entry(name).is_none() {
            return Err(format!("missing required mutate entry {name:?}"));
        }
    }
    Ok(record)
}

/// Entry names the shard-scaling section of `BENCH_serve.json` must
/// carry: per-request serve latency at shard counts 1 and 4 (the quick
/// sweep; `QRW_VERIFY_BUDGET=full` adds counts 2 and 8 as extra entries)
/// and the partial-results rate under 100% single-shard fault injection
/// (per mille of served requests; 1000 means every response degraded to
/// `shards_ok = N-1` partial results, the expected value with a
/// permanently poisoned shard).
pub const SHARD_REQUIRED_ENTRIES: [&str; 4] = [
    "shard_scaling/s1_ns_per_req",
    "shard_scaling/s4_ns_per_req",
    "shard_scaling/partial_ns_per_req",
    "shard_scaling/partial_rate_permille",
];

/// Parses and schema-checks a `BENCH_serve.json` document for its
/// shard-scaling contract: the general bench schema
/// ([`validate_bench_json`]) plus the record being named `serve` and
/// carrying every entry in [`SHARD_REQUIRED_ENTRIES`] (extra entries —
/// the load-generation sections, the full-sweep shard counts — are
/// allowed).
pub fn validate_shard_json(text: &str) -> Result<BenchRecord, String> {
    let record = validate_bench_json(text)?;
    if record.bench != "serve" {
        return Err(format!("\"bench\" is {:?}, expected \"serve\"", record.bench));
    }
    for name in SHARD_REQUIRED_ENTRIES {
        if record.entry(name).is_none() {
            return Err(format!("missing required shard-scaling entry {name:?}"));
        }
    }
    Ok(record)
}

/// Entry names the mailbox-scheduler scaling section of
/// `BENCH_serve.json` must carry: wall-clock per-request serve time at
/// scheduler shard counts {1, 2, 4} (informational — it depends on host
/// core count) and the **deterministic virtual-cost p99** at the same
/// counts. The virtual p99 is computed from the scheduler's own minted
/// `batch_form` spans under the logical clock: each worker's completion
/// cost accumulates `batch size + DECODE weight × decode slots` per
/// batch, every request completes at its worker's cumulative cost, and
/// the p99 is taken over requests. It measures scheduling *structure*
/// (how evenly work spreads across workers), so the scaling bar holds on
/// any machine — including single-core CI, where wall-clock parallel
/// speedup is physically unavailable.
pub const SCHED_REQUIRED_ENTRIES: [&str; 6] = [
    "sched_scaling/s1_ns_per_req",
    "sched_scaling/s2_ns_per_req",
    "sched_scaling/s4_ns_per_req",
    "sched_scaling/s1_p99_vcost",
    "sched_scaling/s2_p99_vcost",
    "sched_scaling/s4_p99_vcost",
];

/// Parses and schema-checks a `BENCH_serve.json` document for its
/// scheduler-scaling contract: the general bench schema
/// ([`validate_bench_json`]) plus the record being named `serve`,
/// carrying every entry in [`SCHED_REQUIRED_ENTRIES`], and the scaling
/// bar itself — **virtual p99 at 4 shards must not exceed virtual p99 at
/// 1 shard** on the burst mix. The bar is re-enforced at read time (the
/// `validate_online_json` trajectory discipline) so a regenerated record
/// cannot silently regress the scheduler's scaling behaviour.
pub fn validate_sched_json(text: &str) -> Result<BenchRecord, String> {
    let record = validate_bench_json(text)?;
    if record.bench != "serve" {
        return Err(format!("\"bench\" is {:?}, expected \"serve\"", record.bench));
    }
    for name in SCHED_REQUIRED_ENTRIES {
        if record.entry(name).is_none() {
            return Err(format!("missing required sched-scaling entry {name:?}"));
        }
    }
    let p99_1 = record.entry("sched_scaling/s1_p99_vcost").expect("presence checked above");
    let p99_4 = record.entry("sched_scaling/s4_p99_vcost").expect("presence checked above");
    if p99_4.median_ns > p99_1.median_ns {
        return Err(format!(
            "scheduler scaling regressed: virtual p99 at 4 shards ({}) exceeds 1 shard ({})",
            p99_4.median_ns, p99_1.median_ns
        ));
    }
    Ok(record)
}

/// Entry names a `BENCH_distill.json` record must carry: teacher and
/// student max-length decode latency and the held-out oracle
/// win/tie/lose verdict of the student against the teacher.
pub const DISTILL_REQUIRED_ENTRIES: [&str; 5] = [
    "teacher/decode_maxlen",
    "student/decode_maxlen",
    "oracle/win",
    "oracle/tie",
    "oracle/lose",
];

/// Parses and schema-checks a `BENCH_distill.json` document: the general
/// bench schema ([`validate_bench_json`]) plus the distill-specific
/// contract — the record must be named `distill`, carry every entry in
/// [`DISTILL_REQUIRED_ENTRIES`] (extras allowed), and the student decode
/// entry must carry `tokens_per_s` and its `speedup_vs` ratio against the
/// teacher decode entry (the PR's ≥2x acceptance bar lives in that field).
pub fn validate_distill_json(text: &str) -> Result<BenchRecord, String> {
    let record = validate_bench_json(text)?;
    if record.bench != "distill" {
        return Err(format!("\"bench\" is {:?}, expected \"distill\"", record.bench));
    }
    for name in DISTILL_REQUIRED_ENTRIES {
        if record.entry(name).is_none() {
            return Err(format!("missing required distill entry {name:?}"));
        }
    }
    let student = record.derived("student/decode_maxlen").expect("entry checked above");
    if student.tokens_per_s.is_none() {
        return Err("\"student/decode_maxlen\" must carry \"tokens_per_s\"".into());
    }
    match &student.speedup_vs {
        Some((vs, _)) if vs == "teacher/decode_maxlen" => {}
        _ => {
            return Err(
                "\"student/decode_maxlen\" must carry \"speedup_vs\" against \
                 \"teacher/decode_maxlen\""
                    .into(),
            )
        }
    }
    Ok(record)
}

/// Entry names a `BENCH_online.json` record must carry: the held-out
/// session-oracle relevance trajectory over the simulated days (day 0 is
/// the cold pre-training eval; `QRW_VERIFY_BUDGET=full` adds later days
/// as extra entries), plus the closed loop's serving and swap accounting.
pub const ONLINE_REQUIRED_ENTRIES: [&str; 8] = [
    "day0/oracle_permille",
    "day1/oracle_permille",
    "day2/oracle_permille",
    "day3/oracle_permille",
    "serve/requests_total",
    "serve/harvested_total",
    "swap/epochs_published",
    "swap/swap_failures",
];

/// Parses and schema-checks a `BENCH_online.json` document: the general
/// bench schema ([`validate_bench_json`]) plus the online-loop contract —
/// the record must be named `online`, carry every entry in
/// [`ONLINE_REQUIRED_ENTRIES`] (extra days are allowed), and the
/// day-by-day oracle trajectory must never regress below day 0 (the
/// ISSUE's monotone-or-flat acceptance bar, re-checked at read time so a
/// regenerated trajectory cannot silently degrade).
pub fn validate_online_json(text: &str) -> Result<BenchRecord, String> {
    let record = validate_bench_json(text)?;
    if record.bench != "online" {
        return Err(format!("\"bench\" is {:?}, expected \"online\"", record.bench));
    }
    for name in ONLINE_REQUIRED_ENTRIES {
        if record.entry(name).is_none() {
            return Err(format!("missing required online entry {name:?}"));
        }
    }
    let day0 = record.entry("day0/oracle_permille").expect("presence checked above");
    for (name, s, _) in &record.entries {
        let is_day = name.starts_with("day") && name.ends_with("/oracle_permille");
        if is_day && s.median_ns < day0.median_ns {
            return Err(format!(
                "oracle trajectory regressed: {name} median {} below day0 median {}",
                s.median_ns, day0.median_ns
            ));
        }
    }
    Ok(record)
}

/// Compares a fresh record against the committed baseline it is about to
/// replace: any entry present in both whose fresh median exceeds the
/// committed median by more than `tolerance` (0.20 = 20%) is a
/// regression, and so is an entry that disappeared from the fresh run.
/// New entries are allowed — that is how the trajectory grows.
pub fn median_regressions(
    committed: &BenchRecord,
    fresh: &BenchRecord,
    tolerance: f64,
) -> Result<(), String> {
    let mut problems = Vec::new();
    for (name, old, _) in &committed.entries {
        match fresh.entry(name) {
            None => problems.push(format!("entry {name:?} disappeared from the fresh run")),
            Some(new) => {
                if new.median_ns as f64 > old.median_ns as f64 * (1.0 + tolerance) {
                    problems.push(format!(
                        "{name}: median {} ns vs committed {} ns \
                         (+{:.0}%, tolerance {:.0}%)",
                        new.median_ns,
                        old.median_ns,
                        100.0 * (new.median_ns as f64 / old.median_ns.max(1) as f64 - 1.0),
                        100.0 * tolerance
                    ));
                }
            }
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("; "))
    }
}

/// One validated line of a span-trace JSONL export (the `qrw-obs`
/// `Tracer::export_jsonl` schema).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpanLine {
    pub trace: u64,
    pub span: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub start_us: u64,
    pub end_us: u64,
}

/// Parses and schema-checks a span-trace JSONL document (one JSON object
/// per non-empty line):
///
/// ```json
/// {"trace":1,"span":2,"parent":null,"name":"serve",
///  "start_us":10,"end_us":42,"attrs":{"source":"cache"}}
/// ```
///
/// Every line must carry integer `trace`/`span`, `parent` as integer or
/// null, a non-empty string `name`, ordered `start_us <= end_us`, and an
/// object `attrs`. Span ids must be unique across the document. Returns
/// the decoded lines (attributes are validated but not retained).
pub fn validate_trace_jsonl(text: &str) -> Result<Vec<TraceSpanLine>, String> {
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value = json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
        if value.as_object().is_none() {
            return Err(format!("line {n}: not an object"));
        }
        let int = |field: &str| -> Result<u64, String> {
            value
                .get(field)
                .and_then(Json::as_u128)
                .and_then(|x| u64::try_from(x).ok())
                .ok_or_else(|| format!("line {n}: missing integer \"{field}\""))
        };
        let parent = match value.get("parent") {
            Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u128()
                    .and_then(|x| u64::try_from(x).ok())
                    .ok_or_else(|| format!("line {n}: \"parent\" is not an integer or null"))?,
            ),
            None => return Err(format!("line {n}: missing \"parent\"")),
        };
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing string \"name\""))?;
        if name.is_empty() {
            return Err(format!("line {n}: \"name\" must be non-empty"));
        }
        if value.get("attrs").and_then(Json::as_object).is_none() {
            return Err(format!("line {n}: missing object \"attrs\""));
        }
        let line = TraceSpanLine {
            trace: int("trace")?,
            span: int("span")?,
            parent,
            name: name.to_string(),
            start_us: int("start_us")?,
            end_us: int("end_us")?,
        };
        if line.end_us < line.start_us {
            return Err(format!("line {n}: end_us {} < start_us {}", line.end_us, line.start_us));
        }
        if !seen.insert(line.span) {
            return Err(format!("line {n}: duplicate span id {}", line.span));
        }
        out.push(line);
    }
    Ok(out)
}

use json::Json;

/// A dependency-free JSON subset parser — just enough for the
/// `BENCH_*.json` schema (objects, arrays, strings, unsigned integers,
/// literals), so validation does not need serde.
mod json {
    #[derive(Clone, Debug, PartialEq)]
    pub enum Json {
        Object(Vec<(String, Json)>),
        Array(Vec<Json>),
        String(String),
        Number(f64),
        Bool(bool),
        Null,
    }

    impl Json {
        pub fn as_object(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Object(o) => Some(o),
                _ => None,
            }
        }

        /// Field lookup on an object value; `None` for non-objects.
        pub fn get(&self, key: &str) -> Option<&Json> {
            self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        pub fn as_array(&self) -> Option<&[Json]> {
            match self {
                Json::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Number(n) => Some(*n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, rejecting fractions and
        /// negatives (bench stats are nanosecond counts).
        pub fn as_u128(&self) -> Option<u128> {
            match self {
                Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u128),
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => parse_object(b, pos),
            Some(b'[') => parse_array(b, pos),
            Some(b'"') => parse_string(b, pos).map(Json::String),
            Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
            Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
            Some(b'n') => parse_lit(b, pos, "null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(format!("unexpected {:?} at byte {}", *c as char, *pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", *pos))
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'{')?;
        let mut fields = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            expect(b, pos, b':')?;
            let value = parse_value(b, pos)?;
            fields.push((key, value));
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        expect(b, pos, b'[')?;
        let mut items = Vec::new();
        skip_ws(b, pos);
        if b.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match b.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
            }
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    let esc = b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unsupported escape \\{}", *other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        while *pos < b.len()
            && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

fn fmt_ns(ns: u128) -> String {
    let d = Duration::from_nanos(ns as u64);
    if ns >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_ordered_stats() {
        let s = bench("noop", 1, 5, || {
            std::hint::black_box(2 + 2);
        });
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.max_ns);
    }

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.500us");
        assert_eq!(fmt_ns(2_000_000), "2.000ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000s");
    }

    fn sample(median: u128, min: u128, max: u128) -> Sample {
        Sample { median_ns: median, min_ns: min, max_ns: max }
    }

    #[test]
    fn bench_record_round_trips_through_json() {
        let mut rec = BenchRecord::new("decode");
        rec.push("kv_cache", sample(120, 100, 150));
        rec.push("with \"quotes\" and \\slash", sample(7, 7, 7));
        let parsed = validate_bench_json(&rec.to_json()).expect("round trip validates");
        assert_eq!(parsed.bench, "decode");
        let s = parsed.entry("kv_cache").unwrap();
        assert_eq!((s.median_ns, s.min_ns, s.max_ns), (120, 100, 150));
        assert!(parsed.entry("with \"quotes\" and \\slash").is_some());
        assert!(parsed.entry("missing").is_none());
    }

    #[test]
    fn validator_rejects_schema_violations() {
        let bad = [
            ("not json at all", "literal"),
            ("[1, 2]", "not an object"),
            ("{\"unit\": \"ns\", \"entries\": []}", "\"bench\""),
            ("{\"bench\": \"m\", \"unit\": \"ms\", \"entries\": []}", "unsupported unit"),
            ("{\"bench\": \"m\", \"unit\": \"ns\", \"entries\": []}", "non-empty"),
            ("{\"bench\": \"m\", \"unit\": \"ns\", \"entries\": [{}]}", "\"name\""),
            (
                "{\"bench\": \"m\", \"unit\": \"ns\", \"entries\": [\
                 {\"name\": \"a\", \"median_ns\": 5, \"min_ns\": 9, \"max_ns\": 10}]}",
                "not ordered",
            ),
            (
                "{\"bench\": \"m\", \"unit\": \"ns\", \"entries\": [\
                 {\"name\": \"a\", \"median_ns\": 1.5, \"min_ns\": 1, \"max_ns\": 2}]}",
                "integer",
            ),
            (
                "{\"bench\": \"m\", \"unit\": \"ns\", \"entries\": [\
                 {\"name\": \"a\", \"median_ns\": 1, \"min_ns\": 1, \"max_ns\": 2},\
                 {\"name\": \"a\", \"median_ns\": 1, \"min_ns\": 1, \"max_ns\": 2}]}",
                "duplicate",
            ),
        ];
        for (text, want) in bad {
            let err = validate_bench_json(text).expect_err(text);
            assert!(err.contains(want), "{text}: error {err:?} should mention {want:?}");
        }
    }

    #[test]
    fn derived_metrics_round_trip_and_validate() {
        let mut rec = BenchRecord::new("decode");
        rec.push("kv_cache", sample(1000, 900, 1100));
        rec.push_derived(
            "student_quantized",
            sample(400, 380, 450),
            Derived {
                tokens_per_s: Some(37_500.25),
                speedup_vs: Some(("kv_cache".into(), 2.5)),
            },
        );
        let parsed = validate_bench_json(&rec.to_json()).expect("round trip validates");
        let d = parsed.derived("student_quantized").unwrap();
        assert_eq!(d.tokens_per_s, Some(37_500.25));
        assert_eq!(d.speedup_vs, Some(("kv_cache".to_string(), 2.5)));
        // Plain entries parse back with empty derived metrics.
        assert_eq!(parsed.derived("kv_cache"), Some(&Derived::default()));
    }

    #[test]
    fn derived_metric_violations_are_rejected() {
        let entry = |extra: &str| {
            format!(
                "{{\"bench\": \"d\", \"unit\": \"ns\", \"entries\": [\
                 {{\"name\": \"base\", \"median_ns\": 1, \"min_ns\": 1, \"max_ns\": 2}},\
                 {{\"name\": \"a\", \"median_ns\": 1, \"min_ns\": 1, \"max_ns\": 2{extra}}}]}}"
            )
        };
        let bad = [
            (entry(", \"tokens_per_s\": -5"), "finite and positive"),
            (entry(", \"tokens_per_s\": \"fast\""), "not a number"),
            (entry(", \"speedup_vs\": 3"), "not an object"),
            (entry(", \"speedup_vs\": {\"ratio\": 2}"), "\"name\""),
            (entry(", \"speedup_vs\": {\"name\": \"base\"}"), "\"ratio\""),
            (entry(", \"speedup_vs\": {\"name\": \"base\", \"ratio\": 0}"), "finite and positive"),
            (entry(", \"speedup_vs\": {\"name\": \"ghost\", \"ratio\": 2}"), "unknown entry"),
        ];
        for (text, want) in bad {
            let err = validate_bench_json(&text).expect_err(&text);
            assert!(err.contains(want), "{text}: error {err:?} should mention {want:?}");
        }
    }

    #[test]
    fn distill_validator_enforces_entries_and_student_derived_fields() {
        let full = || {
            let mut rec = BenchRecord::new("distill");
            rec.push("teacher/decode_maxlen", sample(1000, 900, 1100));
            rec.push_derived(
                "student/decode_maxlen",
                sample(400, 380, 450),
                Derived {
                    tokens_per_s: Some(37_500.0),
                    speedup_vs: Some(("teacher/decode_maxlen".into(), 2.5)),
                },
            );
            for name in ["oracle/win", "oracle/tie", "oracle/lose"] {
                rec.push(name, sample(3, 3, 3));
            }
            rec
        };
        assert_eq!(validate_distill_json(&full().to_json()).unwrap().bench, "distill");

        // Dropping any required entry fails, naming the entry.
        for missing in DISTILL_REQUIRED_ENTRIES {
            let mut partial = BenchRecord::new("distill");
            for (name, s, d) in &full().entries {
                if name != missing {
                    partial.push_derived(name.clone(), *s, d.clone());
                }
            }
            // Dropping the teacher entry also invalidates the student's
            // speedup reference — either error is acceptable, but it must
            // not validate.
            assert!(validate_distill_json(&partial.to_json()).is_err(), "{missing}");
        }

        // A student entry without the derived fields is rejected.
        let mut plain = BenchRecord::new("distill");
        for (name, s, _) in &full().entries {
            plain.push(name.clone(), *s);
        }
        let err = validate_distill_json(&plain.to_json()).unwrap_err();
        assert!(err.contains("tokens_per_s"), "{err}");

        // The wrong record name is rejected.
        let mut wrong = full();
        wrong.bench = "decode".into();
        assert!(validate_distill_json(&wrong.to_json()).unwrap_err().contains("distill"));
    }

    #[test]
    fn online_validator_enforces_entries_and_the_trajectory_bar() {
        let full = || {
            let mut rec = BenchRecord::new("online");
            for (day, permille) in [(0u64, 0u128), (1, 120), (2, 180), (3, 180)] {
                rec.push(format!("day{day}/oracle_permille"), sample(permille, permille, permille));
            }
            rec.push("serve/requests_total", sample(96, 96, 96));
            rec.push("serve/harvested_total", sample(40, 40, 40));
            rec.push("swap/epochs_published", sample(3, 3, 3));
            rec.push("swap/swap_failures", sample(0, 0, 0));
            rec
        };
        assert_eq!(validate_online_json(&full().to_json()).unwrap().bench, "online");

        // Dropping any required entry fails, naming the entry.
        for missing in ONLINE_REQUIRED_ENTRIES {
            let mut partial = BenchRecord::new("online");
            for (name, s, _) in &full().entries {
                if name != missing {
                    partial.push(name.clone(), *s);
                }
            }
            let err = validate_online_json(&partial.to_json()).unwrap_err();
            assert!(err.contains(missing), "{missing}: {err}");
        }

        // A day below day 0 is a trajectory regression — even an *extra*
        // day beyond the required four.
        let mut dipped = full();
        dipped.push("day4/oracle_permille", sample(0, 0, 0));
        let mut day0_high = BenchRecord::new("online");
        for (name, s, _) in &dipped.entries {
            let s = if name == "day0/oracle_permille" { sample(50, 50, 50) } else { *s };
            day0_high.push(name.clone(), s);
        }
        let err = validate_online_json(&day0_high.to_json()).unwrap_err();
        assert!(err.contains("day4") && err.contains("regressed"), "{err}");

        // The wrong record name is rejected.
        let mut wrong = full();
        wrong.bench = "serve".into();
        assert!(validate_online_json(&wrong.to_json()).unwrap_err().contains("online"));
    }

    #[test]
    fn median_regression_guard_flags_slowdowns_and_dropped_entries() {
        let mut committed = BenchRecord::new("decode");
        committed.push("kv_cache", sample(1000, 900, 1100));
        committed.push("hybrid", sample(2000, 1900, 2100));

        // Within tolerance (+20% exactly) and a brand-new entry: fine.
        let mut ok = BenchRecord::new("decode");
        ok.push("kv_cache", sample(1200, 1100, 1300));
        ok.push("hybrid", sample(1500, 1400, 1600));
        ok.push("student_quantized", sample(400, 380, 450));
        assert!(median_regressions(&committed, &ok, 0.20).is_ok());

        // A >20% slowdown on a shared entry is named in the error.
        let mut slow = BenchRecord::new("decode");
        slow.push("kv_cache", sample(1201, 1100, 1300));
        slow.push("hybrid", sample(2000, 1900, 2100));
        let err = median_regressions(&committed, &slow, 0.20).unwrap_err();
        assert!(err.contains("kv_cache"), "{err}");
        assert!(!err.contains("hybrid"), "{err}");

        // An entry missing from the fresh run is a regression too.
        let mut dropped = BenchRecord::new("decode");
        dropped.push("kv_cache", sample(1000, 900, 1100));
        let err = median_regressions(&committed, &dropped, 0.20).unwrap_err();
        assert!(err.contains("disappeared"), "{err}");
    }

    #[test]
    fn mutate_validator_enforces_the_required_entry_set() {
        let mut rec = BenchRecord::new("mutate");
        for name in MUTATE_REQUIRED_ENTRIES {
            rec.push(name, sample(2, 1, 3));
        }
        rec.push("extra/allowed", sample(1, 1, 1));
        let parsed = validate_mutate_json(&rec.to_json()).expect("full record validates");
        assert_eq!(parsed.bench, "mutate");

        // Dropping any required entry fails, naming the entry.
        for missing in MUTATE_REQUIRED_ENTRIES {
            let mut partial = BenchRecord::new("mutate");
            for name in MUTATE_REQUIRED_ENTRIES.iter().filter(|n| **n != missing) {
                partial.push(*name, sample(1, 1, 1));
            }
            let err = validate_mutate_json(&partial.to_json()).expect_err(missing);
            assert!(err.contains(missing), "error {err:?} should name {missing:?}");
        }

        // A valid bench record under the wrong name is rejected.
        let mut wrong = BenchRecord::new("serve");
        wrong.push("frozen/serve_ns_per_req", sample(1, 1, 1));
        assert!(validate_mutate_json(&wrong.to_json()).unwrap_err().contains("mutate"));
    }

    #[test]
    fn shard_validator_enforces_the_required_entry_set() {
        let mut rec = BenchRecord::new("serve");
        for name in SHARD_REQUIRED_ENTRIES {
            rec.push(name, sample(2, 1, 3));
        }
        // The load-generation sections and the full-sweep shard counts
        // ride along as extras.
        rec.push("tail/sequential_ns_per_req", sample(5, 4, 6));
        rec.push("shard_scaling/s8_ns_per_req", sample(2, 1, 3));
        let parsed = validate_shard_json(&rec.to_json()).expect("full record validates");
        assert_eq!(parsed.bench, "serve");

        for missing in SHARD_REQUIRED_ENTRIES {
            let mut partial = BenchRecord::new("serve");
            for name in SHARD_REQUIRED_ENTRIES.iter().filter(|n| **n != missing) {
                partial.push(*name, sample(1, 1, 1));
            }
            let err = validate_shard_json(&partial.to_json()).expect_err(missing);
            assert!(err.contains(missing), "error {err:?} should name {missing:?}");
        }

        let mut wrong = BenchRecord::new("mutate");
        for name in SHARD_REQUIRED_ENTRIES {
            wrong.push(name, sample(1, 1, 1));
        }
        assert!(validate_shard_json(&wrong.to_json()).unwrap_err().contains("serve"));
    }

    #[test]
    fn sched_validator_enforces_entries_and_the_virtual_p99_bar() {
        let full = || {
            let mut rec = BenchRecord::new("serve");
            for (name, v) in [
                ("sched_scaling/s1_ns_per_req", 900u128),
                ("sched_scaling/s2_ns_per_req", 700),
                ("sched_scaling/s4_ns_per_req", 600),
                ("sched_scaling/s1_p99_vcost", 400),
                ("sched_scaling/s2_p99_vcost", 220),
                ("sched_scaling/s4_p99_vcost", 130),
            ] {
                rec.push(name, sample(v, v, v));
            }
            rec.push("tail/sequential_ns_per_req", sample(5, 4, 6));
            rec
        };
        assert_eq!(validate_sched_json(&full().to_json()).unwrap().bench, "serve");

        // Dropping any required entry fails, naming the entry.
        for missing in SCHED_REQUIRED_ENTRIES {
            let mut partial = BenchRecord::new("serve");
            for (name, s, _) in &full().entries {
                if name != missing {
                    partial.push(name.clone(), *s);
                }
            }
            let err = validate_sched_json(&partial.to_json()).expect_err(missing);
            assert!(err.contains(missing), "error {err:?} should name {missing:?}");
        }

        // The scaling bar is re-enforced at read time: virtual p99 at 4
        // shards above 1 shard rejects even a schema-complete record.
        let mut regressed = BenchRecord::new("serve");
        for (name, s, _) in &full().entries {
            let s = if name == "sched_scaling/s4_p99_vcost" { sample(401, 401, 401) } else { *s };
            regressed.push(name.clone(), s);
        }
        let err = validate_sched_json(&regressed.to_json()).unwrap_err();
        assert!(err.contains("regressed"), "{err}");

        // The wrong record name is rejected.
        let mut wrong = full();
        wrong.bench = "sched".into();
        assert!(validate_sched_json(&wrong.to_json()).unwrap_err().contains("serve"));
    }

    #[test]
    fn curve_json_round_trips_sentinel_counters_bitwise() {
        use qrw_core::{CurvePoint, TrainingCurve};
        let curve = TrainingCurve {
            points: vec![
                CurvePoint {
                    step: 3,
                    ppl_q2t: 12.062_513,
                    ppl_t2q: 9.875_001,
                    log_prob: -4.331_7,
                    accuracy: 0.25,
                    skipped_steps: 0,
                    rollbacks: 0,
                    nan_grad_events: 0,
                },
                CurvePoint {
                    step: 6,
                    ppl_q2t: 7.5,
                    ppl_t2q: f32::NAN, // a divergent eval: emitted as null
                    log_prob: -3.0,
                    accuracy: 0.5,
                    skipped_steps: 2,
                    rollbacks: 1,
                    nan_grad_events: 3,
                },
            ],
        };
        let text = curve_to_json("train_resume", &curve);
        let (name, parsed) = validate_curve_json(&text).expect("round trip validates");
        assert_eq!(name, "train_resume");
        assert_eq!(parsed.points.len(), 2);
        // Finite floats survive bit-for-bit (shortest-round-trip format).
        let (a, b) = (&curve.points[0], &parsed.points[0]);
        assert_eq!(a.ppl_q2t.to_bits(), b.ppl_q2t.to_bits());
        assert_eq!(a.log_prob.to_bits(), b.log_prob.to_bits());
        // The sentinel counters are required fields and survive exactly.
        let p6 = &parsed.points[1];
        assert_eq!(
            (p6.skipped_steps, p6.rollbacks, p6.nan_grad_events),
            (2, 1, 3)
        );
        assert!(p6.ppl_t2q.is_nan());
    }

    #[test]
    fn curve_validator_rejects_missing_sentinel_counters() {
        // A point without the counters must not validate: downstream
        // tooling relies on their presence.
        let text = "{\"curve\": \"c\", \"points\": [\
                    {\"step\": 1, \"ppl_q2t\": 1, \"ppl_t2q\": 1, \
                     \"log_prob\": -1, \"accuracy\": 0}]}";
        let err = validate_curve_json(text).unwrap_err();
        assert!(err.contains("skipped_steps"), "{err}");
    }

    #[test]
    fn trace_jsonl_from_a_real_tracer_validates() {
        let t = qrw_obs::Tracer::logical();
        let root = t.span(7, None, "serve");
        let mut rung = t.span(7, Some(root.id()), "rung_cache");
        rung.attr("outcome", "served");
        rung.finish();
        root.finish();
        t.span(7, None, "served").finish();
        let lines = validate_trace_jsonl(&t.export_jsonl()).expect("export validates");
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].name, "serve");
        assert_eq!(lines[1].parent, Some(lines[0].span));
        assert!(lines.iter().all(|l| l.trace == 7 && l.start_us <= l.end_us));
    }

    #[test]
    fn trace_jsonl_validator_rejects_malformed_lines() {
        let ok = "{\"trace\":1,\"span\":2,\"parent\":null,\"name\":\"a\",\
                  \"start_us\":1,\"end_us\":2,\"attrs\":{}}";
        assert_eq!(validate_trace_jsonl(ok).unwrap().len(), 1);
        // Blank lines are tolerated; each error names its line.
        assert_eq!(validate_trace_jsonl(&format!("\n{ok}\n\n")).unwrap().len(), 1);
        let bad = [
            ("not json", "line 1"),
            ("[1]", "not an object"),
            (
                "{\"trace\":1,\"span\":2,\"parent\":null,\
                 \"start_us\":1,\"end_us\":2,\"attrs\":{}}",
                "\"name\"",
            ),
            (
                "{\"trace\":1,\"span\":2,\"parent\":null,\"name\":\"\",\
                 \"start_us\":1,\"end_us\":2,\"attrs\":{}}",
                "non-empty",
            ),
            (
                "{\"trace\":1,\"span\":2,\"name\":\"a\",\
                 \"start_us\":1,\"end_us\":2,\"attrs\":{}}",
                "\"parent\"",
            ),
            (
                "{\"trace\":1,\"span\":2,\"parent\":null,\"name\":\"a\",\
                 \"start_us\":5,\"end_us\":2,\"attrs\":{}}",
                "end_us",
            ),
            (
                "{\"trace\":1,\"span\":2,\"parent\":null,\"name\":\"a\",\
                 \"start_us\":1,\"end_us\":2}",
                "\"attrs\"",
            ),
        ];
        for (text, want) in bad {
            let err = validate_trace_jsonl(text).expect_err(text);
            assert!(err.contains(want), "{text}: error {err:?} should mention {want:?}");
        }
        let dup = format!(
            "{ok}\n{}",
            ok.replace("\"trace\":1", "\"trace\":9")
        );
        assert!(validate_trace_jsonl(&dup).unwrap_err().contains("duplicate span id"));
    }

    #[test]
    fn write_validated_persists_and_rereads() {
        let mut rec = BenchRecord::new("matmul");
        rec.push("blocked_64", sample(10, 9, 12));
        let dir = std::env::temp_dir().join(format!("qrw_bench_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_matmul.json");
        let reread = rec.write_validated(&path).expect("write + validate");
        assert_eq!(reread.entry("blocked_64").unwrap().median_ns, 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_push_panics() {
        let result = std::panic::catch_unwind(|| {
            let mut rec = BenchRecord::new("x");
            rec.push("a", sample(1, 1, 1));
            rec.push("a", sample(2, 2, 2));
        });
        assert!(result.is_err());
    }
}
