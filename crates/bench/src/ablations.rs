//! Ablation studies beyond the paper's headline tables:
//!
//! * **Decoding strategies** (§III-F): beam search vs the paper's top-n
//!   sampling vs diverse beam search (§V future work), measured on
//!   candidate diversity and model likelihood.
//! * **GPT-style single LM** (§V): the `query <sep1> title <sep2> query2`
//!   language model against the jointly trained two-model pipeline.

use qrw_tensor::rng::StdRng;

use qrw_core::{
    make_lm, train_lm, LmCorpus, LmRewriter, LmTrainConfig, QueryRewriter, RewritePipeline,
};
use qrw_metrics::{
    distinct_first_token_rate, mean_pairwise_edit_distance, rewrite_set_relevance, self_f1,
};
use qrw_nmt::{beam_search, diverse_beam_search, top_n_sampling, Hypothesis, TopNSampling};

use crate::experiment::System;

/// Aggregate decoding-quality numbers for one strategy.
#[derive(Clone, Debug)]
pub struct DecodingRow {
    pub strategy: String,
    /// Mean model log-probability of the produced candidates.
    pub mean_log_prob: f64,
    /// Mean pairwise token edit distance within each candidate set.
    pub pairwise_edit: f64,
    /// Mean pairwise unigram+bigram F1 (1.0 = identical candidates).
    pub self_f1: f64,
    /// Mean fraction of candidates with a unique first token.
    pub distinct_first: f64,
    /// Mean candidates produced per query.
    pub candidates: f64,
}

/// The §III-F decoding ablation: decodes synthetic titles for `n_queries`
/// eval queries with each strategy and aggregates diversity metrics.
pub fn decoding_ablation(sys: &System, n_queries: usize) -> Vec<DecodingRow> {
    let k = sys.scale.train.beam_width.max(3);
    let queries: Vec<Vec<usize>> = sys
        .data
        .eval_query_tokens()
        .into_iter()
        .take(n_queries)
        .map(|q| sys.data.dataset.vocab.encode(&q))
        .collect();
    let model = &sys.joint.forward;
    let vocab = &sys.data.dataset.vocab;
    let decode = |name: &str, f: &dyn Fn(&[usize], &mut StdRng) -> Vec<Hypothesis>| {
        let mut rng = StdRng::seed_from_u64(sys.scale.seed ^ 0xdec0de);
        let mut lp = 0.0;
        let mut lp_n = 0usize;
        let mut edit = 0.0;
        let mut sf1 = 0.0;
        let mut first = 0.0;
        let mut count = 0.0;
        for q in &queries {
            let hyps = f(q, &mut rng);
            let texts: Vec<Vec<String>> = hyps
                .iter()
                .map(|h| {
                    h.tokens
                        .iter()
                        .filter(|&&t| t >= qrw_text::NUM_SPECIALS)
                        .map(|&t| vocab.token(t).to_string())
                        .collect()
                })
                .collect();
            for h in &hyps {
                lp += f64::from(h.log_prob);
                lp_n += 1;
            }
            edit += mean_pairwise_edit_distance(&texts);
            sf1 += self_f1(&texts);
            first += distinct_first_token_rate(&texts);
            count += texts.len() as f64;
        }
        let nq = queries.len().max(1) as f64;
        DecodingRow {
            strategy: name.to_string(),
            mean_log_prob: lp / lp_n.max(1) as f64,
            pairwise_edit: edit / nq,
            self_f1: sf1 / nq,
            distinct_first: first / nq,
            candidates: count / nq,
        }
    };

    let top_n = sys.scale.train.top_n;
    vec![
        decode("beam", &|q, _rng| beam_search(model, q, k)),
        decode("top-n-sampling", &|q, rng| {
            top_n_sampling(model, q, TopNSampling { k, n: top_n }, rng)
        }),
        decode("diverse-beam", &|q, _rng| diverse_beam_search(model, q, k, 1, 1.0)),
    ]
}

pub fn format_decoding(rows: &[DecodingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>10} {:>12} {:>9} {:>14} {:>7}\n",
        "strategy", "logP", "pair-edit↑", "selfF1↓", "uniq-first↑", "cands"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>10.2} {:>12.2} {:>9.3} {:>14.2} {:>7.1}\n",
            r.strategy, r.mean_log_prob, r.pairwise_edit, r.self_f1, r.distinct_first, r.candidates
        ));
    }
    out.push_str("paper §III-F: beam candidates nearly identical; top-n balances\nlikelihood against diversity (distinct first tokens by construction).\n");
    out
}

/// One system's oracle-relevance summary in the LM ablation.
#[derive(Clone, Debug)]
pub struct LmAblationRow {
    pub system: String,
    pub mean_relevance: f64,
    pub coverage: f64,
}

/// The §V ablation: train the GPT-style LM and compare oracle relevance
/// of its rewrites against the jointly trained pipeline's.
pub fn lm_ablation(sys: &System, n_queries: usize) -> (Vec<LmAblationRow>, Vec<qrw_core::LmPoint>) {
    let corpus = LmCorpus::build(&sys.data.log, &sys.data.dataset);
    let lm = make_lm(&corpus, sys.scale.seed + 90);
    let lm_cfg = LmTrainConfig {
        steps: sys.scale.train.steps.max(40),
        batch_size: sys.scale.train.batch_size,
        eval_every: sys.scale.train.eval_every,
        ..Default::default()
    };
    let curve = train_lm(&lm, &corpus, sys.scale.eval_pairs, &lm_cfg);

    let lm_rewriter = LmRewriter::new(&lm, &corpus, sys.scale.train.top_n, 161);
    let joint_pipeline = RewritePipeline::new(
        &sys.joint,
        &sys.data.dataset.vocab,
        sys.scale.train.beam_width,
        sys.scale.train.top_n,
        162,
    );
    let queries: Vec<Vec<String>> = sys
        .data
        .eval_query_tokens()
        .into_iter()
        .take(n_queries)
        .collect();
    let catalog = &sys.data.log.catalog;
    let k = sys.scale.train.beam_width;

    let score = |name: &str, rw: &dyn QueryRewriter| {
        let mut rel = 0.0;
        let mut covered = 0usize;
        for q in &queries {
            let rewrites = rw.rewrite(q, k);
            if !rewrites.is_empty() {
                covered += 1;
            }
            rel += rewrite_set_relevance(catalog, q, &rewrites);
        }
        LmAblationRow {
            system: name.to_string(),
            mean_relevance: rel / queries.len().max(1) as f64,
            coverage: covered as f64 / queries.len().max(1) as f64,
        }
    };
    let rows = vec![
        score("joint-pipeline", &joint_pipeline),
        score("gpt-style-lm", &lm_rewriter),
    ];
    (rows, curve)
}

pub fn format_lm_ablation(rows: &[LmAblationRow], curve: &[qrw_core::LmPoint]) -> String {
    let mut out = String::new();
    out.push_str("LM continuation perplexity while training:\n  ");
    for p in curve {
        out.push_str(&format!("step {} ppl {:.2}   ", p.step, p.ppl));
    }
    out.push('\n');
    out.push_str(&format!("{:<16} {:>16} {:>10}\n", "system", "oracle-rel", "coverage"));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>16.3} {:>9.0}%\n",
            r.system,
            r.mean_relevance,
            100.0 * r.coverage
        ));
    }
    out.push_str("paper §V: the GPT-style LM \"has not been found to perform better\nthan the jointly trained machine translation models yet\".\n");
    out
}

/// One (k, n) sampling configuration's rewrite quality.
#[derive(Clone, Debug)]
pub struct SamplingRow {
    pub k: usize,
    pub n: usize,
    pub mean_relevance: f64,
    pub mean_rewrites: f64,
}

/// Sweeps the top-n sampling pool size at inference (§III-F's `n`):
/// a larger pool buys diversity at the cost of sampling lower-probability
/// (riskier) tokens.
pub fn sampling_ablation(sys: &System, n_queries: usize) -> Vec<SamplingRow> {
    let queries: Vec<Vec<String>> = sys
        .data
        .eval_query_tokens()
        .into_iter()
        .take(n_queries)
        .collect();
    let catalog = &sys.data.log.catalog;
    let k = sys.scale.train.beam_width;
    [2usize, 4, 8, 16]
        .into_iter()
        .map(|n| {
            let pipeline =
                RewritePipeline::new(&sys.joint, &sys.data.dataset.vocab, k, n, 171);
            let mut rel = 0.0;
            let mut count = 0.0;
            for q in &queries {
                let rewrites = pipeline.rewrite(q, k);
                rel += rewrite_set_relevance(catalog, q, &rewrites);
                count += rewrites.len() as f64;
            }
            let nq = queries.len().max(1) as f64;
            SamplingRow { k, n, mean_relevance: rel / nq, mean_rewrites: count / nq }
        })
        .collect()
}

pub fn format_sampling(rows: &[SamplingRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:>3} {:>5} {:>14} {:>10}\n", "k", "n", "oracle-rel", "rewrites"));
    for r in rows {
        out.push_str(&format!(
            "{:>3} {:>5} {:>14.3} {:>10.1}\n",
            r.k, r.n, r.mean_relevance, r.mean_rewrites
        ));
    }
    out
}

/// One λ configuration's end-of-training cyclic metrics.
#[derive(Clone, Debug)]
pub struct LambdaRow {
    pub lambda: f32,
    pub log_prob: f32,
    pub accuracy: f32,
    pub ppl_q2t: f32,
}

/// Sweeps the cycle-consistency weight λ (paper: 0.1). λ = 0 is the
/// separate baseline; larger λ trades translation fit for translate-back
/// quality — the design choice DESIGN.md calls out.
pub fn lambda_ablation(sys: &System, lambdas: &[f32]) -> Vec<LambdaRow> {
    use crate::experiment::train_architecture;
    use qrw_core::TrainMode;
    use qrw_nmt::ComponentKind;

    lambdas
        .iter()
        .map(|&lambda| {
            let mut scale = sys.scale.clone();
            // Half budget per point keeps the sweep affordable.
            scale.train.steps = (sys.scale.train.steps / 2).max(40);
            scale.train.warmup_steps = scale.train.steps / 2;
            scale.train.eval_every = 0;
            scale.train.lambda = lambda;
            let mode = if lambda == 0.0 { TrainMode::Separate } else { TrainMode::Joint };
            let (_m, curve) = train_architecture(
                &sys.data,
                &scale,
                ComponentKind::Transformer,
                ComponentKind::Transformer,
                mode,
                sys.scale.seed + 70,
            );
            let last = *curve.last().expect("curve has a final point");
            LambdaRow {
                lambda,
                log_prob: last.log_prob,
                accuracy: last.accuracy,
                ppl_q2t: last.ppl_q2t,
            }
        })
        .collect()
}

pub fn format_lambda(rows: &[LambdaRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>8} {:>16} {:>9} {:>10}\n",
        "lambda", "back-logP↑", "acc↑", "pplQ2T↓"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8.2} {:>16.2} {:>9.3} {:>10.3}\n",
            r.lambda, r.log_prob, r.accuracy, r.ppl_q2t
        ));
    }
    out.push_str("paper §IV-B3: the cyclic term boosts translate-back log-prob and\naccuracy; q2t translation fit is traded off slightly.\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    #[test]
    fn decoding_ablation_smoke() {
        let sys = System::build(Scale::smoke());
        let rows = decoding_ablation(&sys, 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.mean_log_prob <= 0.0);
            assert!(r.candidates >= 1.0);
        }
        // The construction guarantee: top-n first tokens are all distinct.
        let topn = rows.iter().find(|r| r.strategy == "top-n-sampling").unwrap();
        assert!(topn.distinct_first > 0.95, "{topn:?}");
        // Beam search maximizes likelihood among the strategies.
        let beam = rows.iter().find(|r| r.strategy == "beam").unwrap();
        assert!(beam.mean_log_prob >= topn.mean_log_prob - 1e-6);
        let text = format_decoding(&rows);
        assert!(text.contains("top-n-sampling"));
    }

    #[test]
    fn sampling_and_lambda_ablations_smoke() {
        let sys = System::build(Scale::smoke());
        let rows = sampling_ablation(&sys, 3);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.mean_relevance));
        }
        assert!(format_sampling(&rows).contains("oracle-rel"));
        let rows = lambda_ablation(&sys, &[0.0, 0.1]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.ppl_q2t.is_finite()));
        assert!(format_lambda(&rows).contains("lambda"));
    }

    #[test]
    fn lm_ablation_smoke() {
        let sys = System::build(Scale::smoke());
        let (rows, curve) = lm_ablation(&sys, 4);
        assert_eq!(rows.len(), 2);
        assert!(!curve.is_empty());
        let text = format_lm_ablation(&rows, &curve);
        assert!(text.contains("gpt-style-lm"));
    }
}
