//! Reproductions of the paper's tables (I, II, III, IV, V, VI, VII, VIII).
//!
//! Each function returns structured results with a `Display` that prints
//! the table next to the paper's reported values. Absolute numbers differ
//! (our substrate is a synthetic corpus and a from-scratch CPU NN library);
//! the *shape* — who wins, directions of deltas — is what reproduces.

use std::time::Instant;

use qrw_baseline::RuleBasedRewriter;
use qrw_core::{HyperparamTable, JointModel, QueryRewriter, RewritePipeline};
use qrw_data::{DataStats, QueryKind, SynonymDict};
use qrw_metrics::{human_eval, evaluate_rewriter, RewriterReport, WinTieLose};
use qrw_nmt::{ComponentKind, ModelConfig, Seq2Seq};
use qrw_search::{run_ab, AbConfig, AbOutcome};
use qrw_text::BOS;

use crate::experiment::System;

/// Table I: dataset statistics.
pub fn table1(sys: &System) -> DataStats {
    DataStats::compute(&sys.data.log)
}

/// Table II: model hyper-parameters (scaled analog of the paper's).
pub fn table2(sys: &System) -> HyperparamTable {
    HyperparamTable::new(sys.joint.forward.config().clone(), sys.joint.backward.config().clone())
}

/// One example row of Tables III/IV.
#[derive(Clone, Debug)]
pub struct ExampleRow {
    pub original: String,
    pub synthetic_title: String,
    pub rewritten: String,
}

/// Example-case table (Table III for the separate model, Table IV for the
/// joint model, depending on which model is passed).
pub fn example_cases(sys: &System, model: &JointModel, n: usize) -> Vec<ExampleRow> {
    let pipeline = RewritePipeline::new(
        model,
        &sys.data.dataset.vocab,
        sys.scale.train.beam_width,
        sys.scale.train.top_n,
        sys.scale.seed ^ 0xcafe,
    );
    let mut rows = Vec::new();
    // Hard queries first — the paper's showcase.
    let mut queries: Vec<&qrw_data::GeneratedQuery> = sys
        .data
        .log
        .queries
        .iter()
        .filter(|q| {
            matches!(
                q.kind,
                QueryKind::HardAudience | QueryKind::BrandAlias | QueryKind::Polysemous
            )
        })
        .collect();
    queries.sort_by_key(|q| std::cmp::Reverse(q.frequency));
    for q in queries {
        if rows.len() >= n {
            break;
        }
        let ids = sys.data.dataset.vocab.encode(&q.tokens);
        let rewrites = pipeline.rewrite_ids(&ids);
        let Some(best) = rewrites.first() else { continue };
        rows.push(ExampleRow {
            original: q.text(),
            synthetic_title: best.via_title.join(" "),
            rewritten: best.tokens.join(" "),
        });
    }
    rows
}

pub fn format_examples(rows: &[ExampleRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} | {:<44} | {:<26}\n",
        "Original Query", "Synthetic Item Title", "Rewritten Query"
    ));
    out.push_str(&format!("{:-<26}-+-{:-<44}-+-{:-<26}\n", "", "", ""));
    for r in rows {
        out.push_str(&format!(
            "{:<26} | {:<44} | {:<26}\n",
            r.original,
            truncate(&r.synthetic_title, 44),
            r.rewritten
        ));
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

/// One Table V cell: encoder and decoder latency of an architecture.
#[derive(Clone, Copy, Debug)]
pub struct LatencyRow {
    pub kind: ComponentKind,
    pub encoder_ms: f64,
    pub decoder_ms: f64,
}

/// Table V: latency of RNN / GRU / Transformer encoders and decoders at
/// the paper's measurement config (1 layer, vocab 3000, beam 3, 15 decode
/// steps).
pub fn table5(reps: usize) -> Vec<LatencyRow> {
    assert!(reps > 0);
    let src: Vec<usize> = (10..22).collect(); // 12-token source
    [ComponentKind::Rnn, ComponentKind::Gru, ComponentKind::Transformer]
        .into_iter()
        .map(|kind| {
            let mut model = Seq2Seq::new(ModelConfig::latency_bench(kind, kind), 99);
            // Table V reproduces the *paper's* measurement, which recomputed
            // the full prefix at every transformer decode step. Pin that
            // mode so the published RNN-vs-transformer shape survives; the
            // serving default (KV cache) is tracked in BENCH_decode.json.
            model.set_decode_mode(qrw_nmt::TransformerDecodeMode::PrefixRecompute);
            // Warm the allocator and caches before timing.
            let _ = model.encode(&src);
            // Encoder latency.
            let t0 = Instant::now();
            for _ in 0..reps {
                let _ = model.encode(&src);
            }
            let encoder_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
            // Decoder latency: beam 3 x 15 steps over a fixed memory.
            // (One untimed warm-up reuse of the same loop body, then reps.)
            let memory = model.encode(&src);
            let mut t0 = Instant::now();
            for rep in 0..reps + 1 {
                if rep == 1 {
                    t0 = Instant::now();
                }
                for beam in 0..3usize {
                    let mut state = model.start_state(&memory);
                    let mut prefix = vec![BOS];
                    for step in 0..15usize {
                        let lp = model.next_log_probs(&memory, &mut state, &prefix);
                        // Deterministic pseudo-choice to extend the prefix.
                        let tok = 10 + ((step + beam) % 12);
                        let _ = lp;
                        prefix.push(tok);
                    }
                }
            }
            let decoder_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;
            LatencyRow { kind, encoder_ms, decoder_ms }
        })
        .collect()
}

pub fn format_table5(rows: &[LatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<10} {:>14} {:>14}\n", "", "Encoder (ms)", "Decoder (ms)"));
    for r in rows {
        out.push_str(&format!("{:<10} {:>14.3} {:>14.3}\n", r.kind.to_string(), r.encoder_ms, r.decoder_ms));
    }
    out.push_str("paper:     RNN 6/30, GRU 9/35, Transformer 3.5/67.5\n");
    out
}

/// Table VI inputs/outputs: the two pairwise human evaluations, plus the
/// mean oracle relevance per system for transparency.
#[derive(Clone, Copy, Debug)]
pub struct Table6 {
    pub joint_vs_separate: WinTieLose,
    pub joint_vs_rule: WinTieLose,
    pub queries: usize,
    pub mean_rel_joint: f64,
    pub mean_rel_separate: f64,
    pub mean_rel_rule: f64,
}

/// Table VI: oracle ("human") relevance comparison on the queries that
/// also have rule-based synonyms (the paper samples 1000 such queries).
/// Both pipelines decode with the same sampling seed (common random
/// numbers), so the comparison isolates the models, not the dice.
pub fn table6(sys: &System) -> Table6 {
    let dict = SynonymDict::from_catalog(&sys.data.log.catalog);
    let rule = RuleBasedRewriter::new(dict);
    let queries: Vec<Vec<String>> = sys
        .data
        .log
        .queries
        .iter()
        .map(|q| q.tokens.clone())
        .filter(|q| !rule.all_rewrites(q).is_empty())
        .collect();
    let k = sys.scale.train.beam_width;
    let joint_pipeline = RewritePipeline::new(
        &sys.joint,
        &sys.data.dataset.vocab,
        k,
        sys.scale.train.top_n,
        101,
    );
    let separate_pipeline = RewritePipeline::new(
        &sys.separate,
        &sys.data.dataset.vocab,
        k,
        sys.scale.train.top_n,
        101,
    );
    let catalog = &sys.data.log.catalog;
    let joint_vs_separate = human_eval(
        catalog,
        queries.iter(),
        |q| joint_pipeline.rewrite(q, k),
        |q| separate_pipeline.rewrite(q, k),
        0.05,
    );
    let joint_vs_rule = human_eval(
        catalog,
        queries.iter(),
        |q| joint_pipeline.rewrite(q, k),
        |q| rule.rewrite(q, k),
        0.05,
    );
    let mean_rel = |f: &dyn Fn(&[String]) -> Vec<Vec<String>>| {
        let total: f64 = queries
            .iter()
            .map(|q| qrw_metrics::rewrite_set_relevance(catalog, q, &f(q)))
            .sum();
        total / queries.len().max(1) as f64
    };
    Table6 {
        joint_vs_separate,
        joint_vs_rule,
        queries: queries.len(),
        mean_rel_joint: mean_rel(&|q| joint_pipeline.rewrite(q, k)),
        mean_rel_separate: mean_rel(&|q| separate_pipeline.rewrite(q, k)),
        mean_rel_rule: mean_rel(&|q| rule.rewrite(q, k)),
    }
}

impl std::fmt::Display for Table6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} eval queries with rule-based synonyms", self.queries)?;
        writeln!(f, "Joint vs Separate : {}", self.joint_vs_separate)?;
        writeln!(f, "Joint vs Rule     : {}", self.joint_vs_rule)?;
        writeln!(
            f,
            "mean oracle relevance: joint {:.3}, separate {:.3}, rule {:.3}",
            self.mean_rel_joint, self.mean_rel_separate, self.mean_rel_rule
        )?;
        write!(f, "paper: joint-vs-separate 22/49/29 (L/T/W), joint-vs-rule 29/60/11")
    }
}

/// Table VII: F1 / edit distance / cosine for the three systems.
pub fn table7(sys: &System) -> Vec<RewriterReport> {
    let queries = sys.data.eval_query_tokens();
    let k = sys.scale.train.beam_width;
    let vocab = &sys.data.dataset.vocab;
    let dict = SynonymDict::from_catalog(&sys.data.log.catalog);
    let rule = RuleBasedRewriter::new(dict);
    let joint = RewritePipeline::new(&sys.joint, vocab, k, sys.scale.train.top_n, 103)
        .with_name("joint");
    let separate = RewritePipeline::new(&sys.separate, vocab, k, sys.scale.train.top_n, 103)
        .with_name("separate");
    vec![
        evaluate_rewriter(&rule, &queries, k, vocab, &sys.embeddings),
        evaluate_rewriter(&separate, &queries, k, vocab, &sys.embeddings),
        evaluate_rewriter(&joint, &queries, k, vocab, &sys.embeddings),
    ]
}

pub fn format_table7(reports: &[RewriterReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!("{r}\n"));
    }
    out.push_str(
        "paper: rule .676/1.767/.711, separate .193/5.340/.660, joint .254/4.821/.668\n",
    );
    out
}

/// Table VIII: the A/B simulation with the joint pipeline as the variant.
pub fn table8(sys: &System, sessions: usize) -> AbOutcome {
    let pipeline = RewritePipeline::new(
        &sys.joint,
        &sys.data.dataset.vocab,
        sys.scale.train.beam_width,
        sys.scale.train.top_n,
        105,
    );
    let cfg = AbConfig { sessions, ..Default::default() };
    run_ab(&sys.data.log, &pipeline, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Scale;

    // One shared smoke system per test binary would be nicer, but tests
    // stay independent; each builds its own tiny system.
    fn smoke() -> System {
        System::build(Scale::smoke())
    }

    #[test]
    fn table5_latency_rows_cover_all_kinds() {
        let rows = table5(2);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.encoder_ms > 0.0 && r.decoder_ms > 0.0);
            // Decoding 15 steps costs more than one encode.
            assert!(r.decoder_ms > r.encoder_ms, "{r:?}");
        }
        // The paper's key shape: the transformer decoder is the slowest
        // decoder (prefix recompute at every step).
        let t = rows.iter().find(|r| r.kind == ComponentKind::Transformer).unwrap();
        let rnn = rows.iter().find(|r| r.kind == ComponentKind::Rnn).unwrap();
        assert!(
            t.decoder_ms > rnn.decoder_ms,
            "transformer decoder {:.3}ms should exceed RNN {:.3}ms",
            t.decoder_ms,
            rnn.decoder_ms
        );
    }

    #[test]
    fn smoke_tables_run() {
        let sys = smoke();
        let t1 = table1(&sys);
        assert!(t1.query_item_pairs > 0);
        let t2 = table2(&sys);
        assert!(t2.to_string().contains("Dropout"));
        let rows = example_cases(&sys, &sys.joint, 3);
        let formatted = format_examples(&rows);
        assert!(formatted.contains("Original Query"));
        let t6 = table6(&sys);
        assert_eq!(
            t6.joint_vs_separate.total(),
            t6.queries,
            "every query judged exactly once"
        );
        let t7 = table7(&sys);
        assert_eq!(t7.len(), 3);
        let t8 = table8(&sys, 100);
        assert_eq!(t8.control.sessions, 100);
    }
}
