//! Reproductions of the paper's figures (5, 6, 7, 8, 9) as text artifacts.

use qrw_core::{Q2QPoint, RewritePipeline, TrainingCurve};
use qrw_nmt::ComponentKind;
use qrw_search::{InvertedIndex, QueryTree, RetrievalCost};
use qrw_tensor::Tensor;

use crate::experiment::{train_architecture, train_q2q_model, ExperimentData, Scale, System};

/// Figure 5 artifact: node counts and retrieval costs of separate vs
/// merged syntax trees over the real item index.
#[derive(Clone, Debug)]
pub struct Fig5 {
    pub queries: Vec<Vec<String>>,
    pub merged_display: String,
    pub separate_nodes: usize,
    pub merged_nodes: usize,
    pub separate_cost: RetrievalCost,
    pub merged_cost: RetrievalCost,
    pub result_count: usize,
}

/// Builds the Figure 5 comparison from an original query and its rewrites
/// evaluated on the catalog's item index.
pub fn fig5(sys: &System) -> Fig5 {
    let catalog = &sys.data.log.catalog;
    let index = InvertedIndex::build(catalog.items.iter().map(|i| i.title_tokens.clone()));
    // The Figure 5 pattern — an original query plus two rewrites diverging
    // at one position each — built from a real category's vocabulary so
    // retrieval is non-empty.
    let cat = catalog
        .categories
        .iter()
        .find(|c| c.title_terms.len() >= 2 && c.attrs.len() >= 2)
        .expect("catalog has a category with enough vocabulary");
    let queries: Vec<Vec<String>> = vec![
        vec![cat.attrs[0].clone(), cat.title_terms[0].clone()],
        vec![cat.attrs[0].clone(), cat.title_terms[1].clone()],
        vec![cat.attrs[1].clone(), cat.title_terms[0].clone()],
    ];
    fig5_with(&index, queries)
}

/// Figure 5 over arbitrary queries and index (used by benches and tests).
pub fn fig5_with(index: &InvertedIndex, queries: Vec<Vec<String>>) -> Fig5 {
    let mut separate_nodes = 0usize;
    let mut separate_cost = RetrievalCost::default();
    for q in &queries {
        let tree = QueryTree::and_of_tokens(q);
        separate_nodes += tree.node_count();
        let (_, c) = tree.evaluate(index);
        separate_cost = separate_cost + c;
    }
    let merged = QueryTree::merge_positional(&queries);
    let (docs, merged_cost) = merged.evaluate(index);
    Fig5 {
        merged_display: merged.to_string(),
        separate_nodes,
        merged_nodes: merged.node_count(),
        separate_cost,
        merged_cost,
        result_count: docs.len(),
        queries,
    }
}

fn tokens(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "queries:")?;
        for q in &self.queries {
            writeln!(f, "  {}", q.join(" & "))?;
        }
        writeln!(f, "merged tree: {}", self.merged_display)?;
        writeln!(
            f,
            "nodes: separate {} -> merged {}",
            self.separate_nodes, self.merged_nodes
        )?;
        writeln!(
            f,
            "postings scanned: separate {} -> merged {}",
            self.separate_cost.postings_scanned, self.merged_cost.postings_scanned
        )?;
        write!(f, "retrieved docs: {}", self.result_count)
    }
}

/// Figure 6: ASCII heat maps of the cross-attention in both translation
/// hops of one rewrite (query→title above, title→rewrite below).
pub fn fig6(sys: &System) -> String {
    // A brand-alias hard query, like the paper's "Ah Di comfy men's shoe".
    let query = sys
        .data
        .log
        .queries
        .iter()
        .find(|q| q.kind == qrw_data::QueryKind::BrandAlias)
        .map(|q| q.tokens.clone())
        .unwrap_or_else(|| tokens("ahdi shoe"));
    let vocab = &sys.data.dataset.vocab;
    let pipeline = RewritePipeline::new(
        &sys.joint,
        vocab,
        sys.scale.train.beam_width,
        sys.scale.train.top_n,
        1106,
    );
    let query_ids = vocab.encode(&query);
    let rewrites = pipeline.rewrite_ids(&query_ids);
    let Some(best) = rewrites.first() else {
        return "no rewrite produced".to_string();
    };
    let title_ids = vocab.encode(&best.via_title);

    let mut out = String::new();
    out.push_str(&format!(
        "query: \"{}\"  ->  title: \"{}\"  ->  rewrite: \"{}\"\n\n",
        query.join(" "),
        best.via_title.join(" "),
        best.tokens.join(" ")
    ));
    // Hop 1: forward model attention (rows = title positions, cols = query).
    let maps = sys.joint.forward.cross_attention(&query_ids, &title_ids);
    if let Some(map) = maps.last() {
        out.push_str("forward (query -> synthetic title) cross-attention:\n");
        out.push_str(&render_heatmap(map, &with_eos(&query), &with_bos(&best.via_title)));
    }
    // Hop 2: backward model attention (rows = rewrite positions, cols = title).
    let maps = sys.joint.backward.cross_attention(&title_ids, &best.ids);
    if let Some(map) = maps.last() {
        out.push_str("\nbackward (title -> rewritten query) cross-attention:\n");
        out.push_str(&render_heatmap(map, &with_eos(&best.via_title), &with_bos(&best.tokens)));
    }
    out
}

fn with_eos(tokens: &[String]) -> Vec<String> {
    let mut v = tokens.to_vec();
    v.push("<eos>".to_string());
    v
}

fn with_bos(tokens: &[String]) -> Vec<String> {
    let mut v = vec!["<bos>".to_string()];
    v.extend(tokens.iter().cloned());
    v
}

/// Renders an attention matrix as shaded blocks with token labels.
pub fn render_heatmap(map: &Tensor, cols: &[String], rows: &[String]) -> String {
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let mut out = String::new();
    let label_w = rows.iter().map(String::len).max().unwrap_or(4).max(4);
    for r in 0..map.rows() {
        let label = rows.get(r).map(String::as_str).unwrap_or("?");
        out.push_str(&format!("{label:>label_w$} |"));
        for c in 0..map.cols() {
            let v = map.get(r, c).clamp(0.0, 1.0);
            let shade = SHADES[((v * (SHADES.len() - 1) as f32).round() as usize).min(4)];
            out.push(shade);
            out.push(shade);
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>label_w$} +", ""));
    out.push_str(&"--".repeat(map.cols()));
    out.push('\n');
    // Column legend.
    out.push_str(&format!("{:>label_w$}  ", ""));
    for c in 0..map.cols() {
        let ch = cols.get(c).and_then(|t| t.chars().next()).unwrap_or('?');
        out.push(ch);
        out.push(' ');
    }
    out.push('\n');
    out.push_str("columns: ");
    out.push_str(&cols.join(", "));
    out.push('\n');
    out
}

/// Figure 7/8 artifact: two training curves side by side.
#[derive(Clone, Debug)]
pub struct CurveComparison {
    pub label_a: String,
    pub label_b: String,
    pub a: TrainingCurve,
    pub b: TrainingCurve,
}

impl std::fmt::Display for CurveComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9} | {:>7} {:>7}",
            "step", "pplQ2T:a", "pplQ2T:b", "pplT2Q:a", "pplT2Q:b", "logP:a", "logP:b", "acc:a",
            "acc:b"
        )?;
        writeln!(f, "  a = {}, b = {}", self.label_a, self.label_b)?;
        for (pa, pb) in self.a.points.iter().zip(&self.b.points) {
            writeln!(
                f,
                "{:>6} | {:>10.3} {:>10.3} | {:>10.3} {:>10.3} | {:>9.2} {:>9.2} | {:>7.3} {:>7.3}",
                pa.step,
                pa.ppl_q2t,
                pb.ppl_q2t,
                pa.ppl_t2q,
                pb.ppl_t2q,
                pa.log_prob,
                pb.log_prob,
                pa.accuracy,
                pb.accuracy
            )?;
        }
        Ok(())
    }
}

/// Figure 7: separate vs joint convergence (curves already produced while
/// building the [`System`]).
pub fn fig7(sys: &System) -> CurveComparison {
    CurveComparison {
        label_a: "separate".to_string(),
        label_b: "joint".to_string(),
        a: sys.separate_curve.clone(),
        b: sys.joint_curve.clone(),
    }
}

/// Figure 8: transformer vs attention-RNN (both jointly trained).
pub fn fig8(sys: &System) -> CurveComparison {
    let (_m, rnn_curve) = train_architecture(
        &sys.data,
        &sys.scale,
        ComponentKind::Rnn,
        ComponentKind::Rnn,
        qrw_core::TrainMode::Joint,
        sys.scale.seed + 40,
    );
    CurveComparison {
        label_a: "attention-RNN".to_string(),
        label_b: "transformer".to_string(),
        a: rnn_curve,
        b: sys.joint_curve.clone(),
    }
}

/// Figure 9 artifact: q2q curves for the pure-RNN and hybrid models.
#[derive(Clone, Debug)]
pub struct Fig9 {
    pub pure_rnn: Vec<Q2QPoint>,
    pub hybrid: Vec<Q2QPoint>,
}

impl std::fmt::Display for Fig9 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>6} | {:>12} {:>12} | {:>9} {:>9} | {:>9} {:>9}",
            "step", "ppl:pureRNN", "ppl:hybrid", "acc:pure", "acc:hyb", "logP:pure", "logP:hyb"
        )?;
        for (a, b) in self.pure_rnn.iter().zip(&self.hybrid) {
            writeln!(
                f,
                "{:>6} | {:>12.3} {:>12.3} | {:>9.3} {:>9.3} | {:>9.2} {:>9.2}",
                a.step, a.ppl, b.ppl, a.accuracy, b.accuracy, a.log_prob, b.log_prob
            )?;
        }
        Ok(())
    }
}

/// Figure 9: direct q2q training, pure RNN vs hybrid
/// (transformer encoder + RNN decoder).
pub fn fig9(data: &ExperimentData, scale: &Scale) -> Fig9 {
    let (_m1, pure_rnn) =
        train_q2q_model(data, scale, ComponentKind::Rnn, ComponentKind::Rnn, scale.seed + 50);
    let (_m2, hybrid) = train_q2q_model(
        data,
        scale,
        ComponentKind::Transformer,
        ComponentKind::Rnn,
        scale.seed + 50,
    );
    Fig9 { pure_rnn, hybrid }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{ExperimentData, Scale, System};

    #[test]
    fn fig5_merged_tree_is_smaller_and_cheaper() {
        let index = InvertedIndex::build(vec![
            tokens("red shoes men new"),
            tokens("red footwear men sale"),
            tokens("red shoes senior"),
            tokens("blue shoes men"),
        ]);
        let f = fig5_with(
            &index,
            vec![tokens("red shoes men"), tokens("red footwear men"), tokens("red shoes senior")],
        );
        assert!(f.merged_nodes < f.separate_nodes);
        assert!(f.merged_cost.postings_scanned < f.separate_cost.postings_scanned);
        assert!(f.result_count > 0);
        let text = f.to_string();
        assert!(text.contains("merged tree"));
    }

    #[test]
    fn heatmap_renders_every_row() {
        let map = Tensor::from_vec(2, 3, vec![0.9, 0.05, 0.05, 0.1, 0.8, 0.1]);
        let cols = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let rows = vec!["x".to_string(), "y".to_string()];
        let s = render_heatmap(&map, &cols, &rows);
        assert!(s.contains('█') || s.contains('▓'));
        assert_eq!(s.lines().filter(|l| l.contains('|')).count(), 2);
    }

    #[test]
    fn smoke_figures_run() {
        let sys = System::build(Scale::smoke());
        let f5 = fig5(&sys);
        assert!(f5.merged_nodes <= f5.separate_nodes);
        let f6 = fig6(&sys);
        assert!(f6.contains("query:") || f6.contains("no rewrite"));
        let f7 = fig7(&sys);
        assert_eq!(f7.a.points.len(), f7.b.points.len());
        assert!(!f7.to_string().is_empty());
    }

    #[test]
    fn smoke_fig9_runs() {
        let scale = Scale::smoke();
        let data = ExperimentData::build(&scale);
        let f9 = fig9(&data, &scale);
        assert!(!f9.pure_rnn.is_empty());
        assert!(!f9.hybrid.is_empty());
        assert!(!f9.to_string().is_empty());
    }
}
