//! Shared experiment harness: builds the synthetic corpus, trains the
//! joint / separate / ablation models, and exposes everything the table
//! and figure reproductions need.

use qrw_core::{
    train_q2q, CyclicTrainer, EmbeddingModel, JointModel, Q2QPoint, Q2QTrainConfig, SgnsConfig,
    TrainConfig, TrainMode, TrainingCurve,
};
use qrw_data::{ClickLog, Dataset, DatasetConfig, LogConfig, Pair};
use qrw_nmt::{ComponentKind, ModelConfig, Seq2Seq};

/// Experiment scale: one knob bundling data size and training budget.
#[derive(Clone, Debug)]
pub struct Scale {
    pub log: LogConfig,
    pub dataset: DatasetConfig,
    pub train: TrainConfig,
    pub q2q: Q2QTrainConfig,
    pub sgns: SgnsConfig,
    /// Evaluation pairs used for convergence curves.
    pub eval_pairs: usize,
    pub seed: u64,
}

impl Scale {
    /// Tiny budget for unit/integration tests (runs in seconds).
    pub fn smoke() -> Self {
        Scale {
            log: LogConfig::tiny(),
            dataset: DatasetConfig::default(),
            train: TrainConfig {
                steps: 40,
                warmup_steps: 24,
                batch_size: 4,
                eval_every: 20,
                top_n: 6,
                ..Default::default()
            },
            q2q: Q2QTrainConfig { steps: 40, batch_size: 4, eval_every: 20, ..Default::default() },
            sgns: SgnsConfig { epochs: 3, ..Default::default() },
            eval_pairs: 6,
            seed: 7,
        }
    }

    /// The default reproduction scale (minutes on one core).
    ///
    /// The Noam factor/warm-up (0.3 / 120) come from the `sweep` binary:
    /// hotter schedules under-train the transformer relative to the
    /// attention-RNN at this scale, inverting the paper's Figure 8.
    pub fn paper() -> Self {
        Scale {
            log: LogConfig::default(),
            dataset: DatasetConfig::default(),
            train: TrainConfig {
                steps: 640,
                warmup_steps: 192,
                batch_size: 8,
                eval_every: 64,
                top_n: 8,
                lr_factor: 0.3,
                noam_warmup: 120,
                ..Default::default()
            },
            q2q: Q2QTrainConfig {
                steps: 900,
                batch_size: 8,
                eval_every: 90,
                lr_factor: 0.3,
                noam_warmup: 120,
                ..Default::default()
            },
            sgns: SgnsConfig::default(),
            eval_pairs: 24,
            seed: 7,
        }
    }
}

/// Generated corpus + derived training data.
pub struct ExperimentData {
    pub log: ClickLog,
    pub dataset: Dataset,
}

impl ExperimentData {
    pub fn build(scale: &Scale) -> Self {
        let log = ClickLog::generate(&scale.log);
        let dataset = Dataset::build(&log, &scale.dataset);
        ExperimentData { log, dataset }
    }

    /// Vocabulary size (model input dimension).
    pub fn vocab_size(&self) -> usize {
        self.dataset.vocab.len()
    }

    /// The held-out evaluation queries as token strings.
    pub fn eval_query_tokens(&self) -> Vec<Vec<String>> {
        self.dataset
            .eval_queries
            .iter()
            .map(|&qi| self.log.queries[qi].tokens.clone())
            .collect()
    }

    /// A deterministic slice of q2t pairs used for convergence metrics.
    pub fn eval_pairs(&self, n: usize) -> Vec<Pair> {
        self.dataset.q2t.iter().take(n).cloned().collect()
    }

    /// Sentences for SGNS training: query tokens ++ clicked title tokens.
    pub fn cooccurrence_sentences(&self) -> Vec<Vec<usize>> {
        self.dataset
            .q2t
            .iter()
            .map(|p| {
                let mut s = p.src.clone();
                s.extend_from_slice(&p.tgt);
                s
            })
            .collect()
    }
}

/// Builds an untrained forward/backward pair at the Table II (scaled)
/// configuration, with the given architecture kinds.
pub fn make_joint_with(
    vocab: usize,
    enc_kind: ComponentKind,
    dec_kind: ComponentKind,
    seed: u64,
) -> JointModel {
    let mut fwd_cfg = ModelConfig::forward_q2t(vocab);
    fwd_cfg.enc_kind = enc_kind;
    fwd_cfg.dec_kind = dec_kind;
    let mut bwd_cfg = ModelConfig::backward_t2q(vocab);
    bwd_cfg.enc_kind = enc_kind;
    bwd_cfg.dec_kind = dec_kind;
    JointModel::new(Seq2Seq::new(fwd_cfg, seed), Seq2Seq::new(bwd_cfg, seed + 1))
}

/// Transformer joint model (the paper's main configuration).
pub fn make_joint(vocab: usize, seed: u64) -> JointModel {
    make_joint_with(vocab, ComponentKind::Transformer, ComponentKind::Transformer, seed)
}

/// Trains a joint model from scratch in the given mode; returns the model
/// and its convergence curve.
pub fn train_joint_model(
    data: &ExperimentData,
    scale: &Scale,
    mode: TrainMode,
    seed: u64,
) -> (JointModel, TrainingCurve) {
    train_architecture(
        data,
        scale,
        ComponentKind::Transformer,
        ComponentKind::Transformer,
        mode,
        seed,
    )
}

/// Trains a joint model with an explicit architecture (Figure 8 ablation).
pub fn train_architecture(
    data: &ExperimentData,
    scale: &Scale,
    enc_kind: ComponentKind,
    dec_kind: ComponentKind,
    mode: TrainMode,
    seed: u64,
) -> (JointModel, TrainingCurve) {
    let model = make_joint_with(data.vocab_size(), enc_kind, dec_kind, seed);
    let mut trainer = CyclicTrainer::new(scale.train.clone(), model.forward.config().d_model);
    let eval = data.eval_pairs(scale.eval_pairs);
    let curve = trainer.train(&model, &data.dataset.q2t, &eval, mode);
    (model, curve)
}

/// Trains the §III-G direct q2q model with the given decoder kind
/// (Figure 9: `Rnn` decoder + `Rnn` encoder = "pure RNN"; transformer
/// encoder + `Rnn` decoder = "hybrid").
pub fn train_q2q_model(
    data: &ExperimentData,
    scale: &Scale,
    enc_kind: ComponentKind,
    dec_kind: ComponentKind,
    seed: u64,
) -> (Seq2Seq, Vec<Q2QPoint>) {
    let mut cfg = ModelConfig::hybrid(data.vocab_size());
    cfg.enc_kind = enc_kind;
    cfg.dec_kind = dec_kind;
    let model = Seq2Seq::new(cfg, seed);
    let pairs = if data.dataset.q2q.is_empty() {
        // Tiny corpora may mine no q2q pairs; fall back to identity-ish
        // q2t sources so the harness still runs.
        data.dataset
            .q2t
            .iter()
            .map(|p| Pair { src: p.src.clone(), tgt: p.src.clone(), weight: p.weight })
            .collect()
    } else {
        data.dataset.q2q.clone()
    };
    let eval: Vec<Pair> = pairs.iter().take(scale.eval_pairs.max(4)).cloned().collect();
    let curve = train_q2q(&model, &pairs, &eval, &scale.q2q);
    (model, curve)
}

/// Trains the SGNS embedding model for the Table VII cosine metric.
pub fn train_embeddings(data: &ExperimentData, scale: &Scale) -> EmbeddingModel {
    EmbeddingModel::train(&data.cooccurrence_sentences(), data.vocab_size(), &scale.sgns)
}

/// Everything the table/figure reproductions consume, trained once.
pub struct System {
    pub scale: Scale,
    pub data: ExperimentData,
    pub joint: JointModel,
    pub joint_curve: TrainingCurve,
    pub separate: JointModel,
    pub separate_curve: TrainingCurve,
    pub embeddings: EmbeddingModel,
}

impl System {
    /// Builds the corpus and trains the joint and separate models.
    pub fn build(scale: Scale) -> Self {
        let data = ExperimentData::build(&scale);
        let (joint, joint_curve) = train_joint_model(&data, &scale, TrainMode::Joint, scale.seed);
        let (separate, separate_curve) =
            train_joint_model(&data, &scale, TrainMode::Separate, scale.seed);
        let embeddings = train_embeddings(&data, &scale);
        System { scale, data, joint, joint_curve, separate, separate_curve, embeddings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_data_builds() {
        let scale = Scale::smoke();
        let data = ExperimentData::build(&scale);
        assert!(data.vocab_size() > 10);
        assert!(!data.dataset.q2t.is_empty());
        assert!(!data.eval_query_tokens().is_empty());
        assert!(!data.cooccurrence_sentences().is_empty());
    }

    #[test]
    fn smoke_system_trains_end_to_end() {
        let sys = System::build(Scale::smoke());
        let last = sys.joint_curve.last().unwrap();
        assert!(last.ppl_q2t.is_finite() && last.ppl_q2t > 1.0);
        assert!(sys.separate_curve.last().unwrap().ppl_q2t.is_finite());
    }

    #[test]
    fn q2q_smoke_trains_both_architectures() {
        let scale = Scale::smoke();
        let data = ExperimentData::build(&scale);
        let (_m1, pure) =
            train_q2q_model(&data, &scale, ComponentKind::Rnn, ComponentKind::Rnn, 3);
        let (_m2, hybrid) =
            train_q2q_model(&data, &scale, ComponentKind::Transformer, ComponentKind::Rnn, 3);
        assert!(!pure.is_empty() && !hybrid.is_empty());
    }
}
