//! # qrw-text
//!
//! Text utilities for the cycle-consistent query-rewriting reproduction:
//! vocabularies with special tokens, a normalizing whitespace tokenizer
//! (the synthetic corpus is pre-segmented, mirroring segmented Chinese in
//! the paper), and the n-gram machinery behind the Table VII F1 metric.

pub mod ngram;
pub mod tokenize;
pub mod vocab;

pub use tokenize::{detokenize, tokenize};
pub use vocab::{Vocab, BOS, EOS, NUM_SPECIALS, PAD, UNK};
