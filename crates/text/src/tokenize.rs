//! Tokenization.
//!
//! The synthetic corpus is already space-separated ASCII (our stand-in for
//! the paper's segmented Chinese), so the tokenizer is a normalizing
//! whitespace splitter: lowercase, strip punctuation at token edges, drop
//! empty tokens.

/// Splits `text` into normalized tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split_whitespace()
        .map(normalize_token)
        .filter(|t| !t.is_empty())
        .collect()
}

/// Lowercases and trims leading/trailing non-alphanumeric characters.
/// Interior punctuation (e.g. "8plus", "iphone-12") is preserved.
fn normalize_token(tok: &str) -> String {
    tok.trim_matches(|c: char| !c.is_alphanumeric())
        .to_lowercase()
}

/// Joins tokens back into a canonical space-separated string.
pub fn detokenize(tokens: &[String]) -> String {
    tokens.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(tokenize("Apple iPhone 12"), vec!["apple", "iphone", "12"]);
    }

    #[test]
    fn strips_edge_punctuation_keeps_interior() {
        assert_eq!(tokenize("(red) men's iphone-12!"), vec!["red", "men's", "iphone-12"]);
    }

    #[test]
    fn drops_empty_tokens() {
        assert_eq!(tokenize("  ...  a  !!! "), vec!["a"]);
        assert!(tokenize("???").is_empty());
    }

    #[test]
    fn detokenize_roundtrip_on_canonical_text() {
        let t = tokenize("senior phone 4g");
        assert_eq!(detokenize(&t), "senior phone 4g");
        assert_eq!(tokenize(&detokenize(&t)), t);
    }
}
