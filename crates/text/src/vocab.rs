//! Token vocabulary with the special tokens the sequence models need.
//!
//! Ids `0..4` are reserved: `<pad>`, `<bos>`, `<eos>`, `<unk>`. Encoding an
//! out-of-vocabulary token maps to `<unk>`; decoding strips specials.

use std::collections::HashMap;

/// Reserved id of the padding token.
pub const PAD: usize = 0;
/// Reserved id of the beginning-of-sequence token.
pub const BOS: usize = 1;
/// Reserved id of the end-of-sequence token.
pub const EOS: usize = 2;
/// Reserved id of the unknown token.
pub const UNK: usize = 3;

/// Number of reserved special tokens.
pub const NUM_SPECIALS: usize = 4;

/// A bidirectional token <-> id map.
///
/// ```
/// use qrw_text::{Vocab, UNK};
/// let mut v = Vocab::new();
/// v.insert("senior");
/// v.insert("smartphone");
/// let ids = v.encode(&["senior".into(), "smartphone".into(), "???".into()]);
/// assert_eq!(ids[2], UNK);
/// assert_eq!(v.decode(&ids), "senior smartphone");
/// ```
#[derive(Clone, Debug, Default)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// An empty vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab { token_to_id: HashMap::new(), id_to_token: Vec::new() };
        for tok in ["<pad>", "<bos>", "<eos>", "<unk>"] {
            v.insert(tok);
        }
        v
    }

    /// Builds a vocabulary from an iterator of already-tokenized texts,
    /// keeping tokens that occur at least `min_count` times, in order of
    /// first appearance (deterministic for a deterministic corpus).
    pub fn build<'a>(
        texts: impl IntoIterator<Item = &'a [String]> + Clone,
        min_count: usize,
    ) -> Self {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for text in texts.clone() {
            for tok in text {
                *counts.entry(tok.as_str()).or_default() += 1;
            }
        }
        let mut v = Vocab::new();
        for text in texts {
            for tok in text {
                if counts[tok.as_str()] >= min_count {
                    v.insert(tok);
                }
            }
        }
        v
    }

    /// Inserts a token if absent; returns its id either way.
    pub fn insert(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.to_string(), id);
        self.id_to_token.push(token.to_string());
        id
    }

    /// Total number of ids, including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    pub fn is_empty(&self) -> bool {
        // Never true in practice: specials are always present.
        self.id_to_token.is_empty()
    }

    /// Id of `token`, or `None` if out of vocabulary.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.token_to_id.get(token).copied()
    }

    /// Id of `token`, or [`UNK`].
    pub fn id_or_unk(&self, token: &str) -> usize {
        self.id(token).unwrap_or(UNK)
    }

    /// Token text for `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Encodes tokens to ids, mapping unknowns to [`UNK`].
    pub fn encode(&self, tokens: &[String]) -> Vec<usize> {
        tokens.iter().map(|t| self.id_or_unk(t)).collect()
    }

    /// Encodes and wraps with `<bos> ... <eos>`.
    pub fn encode_with_bounds(&self, tokens: &[String]) -> Vec<usize> {
        let mut ids = Vec::with_capacity(tokens.len() + 2);
        ids.push(BOS);
        ids.extend(tokens.iter().map(|t| self.id_or_unk(t)));
        ids.push(EOS);
        ids
    }

    /// Decodes ids back to a space-joined string, skipping special tokens.
    pub fn decode(&self, ids: &[usize]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id < NUM_SPECIALS {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.token(id));
        }
        out
    }

    /// Iterates over `(id, token)` pairs, specials included.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.id_to_token.iter().enumerate().map(|(i, t)| (i, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn specials_are_reserved() {
        let v = Vocab::new();
        assert_eq!(v.id("<pad>"), Some(PAD));
        assert_eq!(v.id("<bos>"), Some(BOS));
        assert_eq!(v.id("<eos>"), Some(EOS));
        assert_eq!(v.id("<unk>"), Some(UNK));
        assert_eq!(v.len(), NUM_SPECIALS);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.insert("phone");
        let b = v.insert("phone");
        assert_eq!(a, b);
        assert_eq!(v.len(), NUM_SPECIALS + 1);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut v = Vocab::new();
        for t in ["red", "shoe", "men"] {
            v.insert(t);
        }
        let tokens = toks("red shoe men");
        let ids = v.encode(&tokens);
        assert_eq!(v.decode(&ids), "red shoe men");
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let v = Vocab::new();
        assert_eq!(v.encode(&toks("mystery")), vec![UNK]);
        assert_eq!(v.decode(&[UNK]), "");
    }

    #[test]
    fn bounds_wrap() {
        let mut v = Vocab::new();
        v.insert("a");
        let ids = v.encode_with_bounds(&toks("a"));
        assert_eq!(ids.first(), Some(&BOS));
        assert_eq!(ids.last(), Some(&EOS));
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn build_respects_min_count() {
        let texts = [toks("a b a"), toks("a c")];
        let refs: Vec<&[String]> = texts.iter().map(|t| t.as_slice()).collect();
        let v = Vocab::build(refs.iter().copied(), 2);
        assert!(v.id("a").is_some());
        assert!(v.id("b").is_none());
        assert!(v.id("c").is_none());
    }

    #[test]
    fn build_order_is_first_appearance() {
        let texts = [toks("z y"), toks("x z")];
        let refs: Vec<&[String]> = texts.iter().map(|t| t.as_slice()).collect();
        let v = Vocab::build(refs.iter().copied(), 1);
        assert_eq!(v.id("z"), Some(NUM_SPECIALS));
        assert_eq!(v.id("y"), Some(NUM_SPECIALS + 1));
        assert_eq!(v.id("x"), Some(NUM_SPECIALS + 2));
    }
}
