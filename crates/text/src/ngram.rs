//! N-gram extraction, used by the Table VII F1 metric (unigrams + bigrams).

use std::collections::HashSet;

/// All contiguous n-grams of order `n`, as joined strings.
///
/// Returns an empty vector when `tokens.len() < n` or `n == 0`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join("\u{1}")).collect()
}

/// The paper's Table VII query representation: the *set* of all unigrams and
/// bigrams of the query.
pub fn uni_bi_gram_set(tokens: &[String]) -> HashSet<String> {
    let mut set: HashSet<String> = ngrams(tokens, 1).into_iter().collect();
    set.extend(ngrams(tokens, 2));
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn unigrams_and_bigrams() {
        let t = toks("a b c");
        assert_eq!(ngrams(&t, 1).len(), 3);
        assert_eq!(ngrams(&t, 2).len(), 2);
        assert_eq!(ngrams(&t, 3).len(), 1);
        assert!(ngrams(&t, 4).is_empty());
        assert!(ngrams(&t, 0).is_empty());
    }

    #[test]
    fn bigram_separator_avoids_collisions() {
        // "a b" + "c" must not equal "a" + "b c" as bigram keys.
        let x = ngrams(&toks("ab c"), 1);
        let y = ngrams(&toks("a bc"), 2);
        assert!(x.iter().all(|g| !y.contains(g)));
    }

    #[test]
    fn uni_bi_set_counts() {
        let set = uni_bi_gram_set(&toks("red men shoe"));
        assert_eq!(set.len(), 3 + 2);
        let single = uni_bi_gram_set(&toks("shoe"));
        assert_eq!(single.len(), 1);
    }

    #[test]
    fn duplicate_tokens_dedupe_in_set() {
        let set = uni_bi_gram_set(&toks("a a a"));
        // unigrams: {a}; bigrams: {a·a}
        assert_eq!(set.len(), 2);
    }
}
