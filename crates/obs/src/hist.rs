//! Log-bucketed mergeable latency histograms (HDR-style).
//!
//! The bucket layout is **fixed** — every histogram uses the identical
//! 496-bucket geometry — so merging two histograms is plain per-bucket
//! count addition: exact, associative, commutative, and lossless. That is
//! the property that lets worker-local histograms be merged into one
//! fleet view with no resampling error, and what `tests/histogram_props`
//! pins down.
//!
//! Geometry: values `0..8` get one bucket each (exact); every octave
//! `[2^e, 2^(e+1))` above that is split into 8 sub-buckets, so the
//! relative quantization error is bounded by one bucket width —
//! `< 2^(e-3) / 2^e = 12.5%` of the value. [`Histogram::quantile`]
//! returns the lower bound of the bucket holding the requested rank, so
//! the reported quantile is within one bucket width of the exact sample
//! quantile (and merged-histogram quantiles equal concatenated-sample
//! histogram quantiles *exactly*, since the bucket counts are identical).

/// Sub-bucket resolution: 2^3 = 8 sub-buckets per octave.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;
/// 8 exact unit buckets + 8 sub-buckets for each of the 61 octaves
/// `3..=63`.
pub const NUM_BUCKETS: usize = (SUB as usize) + (64 - SUB_BITS as usize) * (SUB as usize);

/// A fixed-layout log-bucketed histogram over `u64` values
/// (microseconds, by convention, but the geometry is unit-agnostic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; NUM_BUCKETS],
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: [0; NUM_BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

/// The bucket index holding `v`. Total over all `u64` values; the layout
/// is a pure function of the value, never of histogram state.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
    let sub = (v >> (e - SUB_BITS)) - SUB; // 0..8 within the octave
    SUB as usize + (e - SUB_BITS) as usize * SUB as usize + sub as usize
}

/// The smallest value mapping to bucket `idx` (the quantile
/// representative).
pub fn bucket_lower(idx: usize) -> u64 {
    debug_assert!(idx < NUM_BUCKETS);
    if idx < SUB as usize {
        return idx as u64;
    }
    let oct = (idx - SUB as usize) / SUB as usize; // octave - SUB_BITS
    let sub = ((idx - SUB as usize) % SUB as usize) as u64;
    (SUB + sub) << oct
}

/// The width of bucket `idx` (all values in `[lower, lower + width)` map
/// to it).
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUB as usize {
        1
    } else {
        1 << ((idx - SUB as usize) / SUB as usize)
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges `other` into `self`: exact per-bucket count addition.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The `q`-quantile (`q` clamped into `[0, 1]`): the lower bound of
    /// the bucket containing the `ceil(q * count)`-th smallest
    /// observation. Within one bucket width of the exact sample quantile;
    /// `0` for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(idx);
            }
        }
        // Unreachable while counts sum to total; stay total anyway.
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_continuous_and_monotone() {
        // Every bucket's lower bound is the previous bucket's lower bound
        // plus its width, with no gaps or overlaps across the full range.
        for idx in 1..NUM_BUCKETS {
            assert_eq!(
                bucket_lower(idx),
                bucket_lower(idx - 1) + bucket_width(idx - 1),
                "gap at bucket {idx}"
            );
        }
    }

    #[test]
    fn values_map_into_their_own_bucket_range() {
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let idx = bucket_index(v);
            let lo = bucket_lower(idx);
            assert!(lo <= v, "v={v} below bucket lower {lo}");
            if idx + 1 < NUM_BUCKETS {
                assert!(v < bucket_lower(idx + 1), "v={v} beyond bucket {idx}");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..8 {
            h.record(v);
        }
        for v in 0..8 {
            assert_eq!(bucket_width(bucket_index(v)), 1);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 7);
    }

    #[test]
    fn relative_error_bounded_by_bucket_width() {
        for v in [10u64, 100, 12_345, 9_999_999, 1 << 50] {
            let idx = bucket_index(v);
            let err = v - bucket_lower(idx);
            assert!(err < bucket_width(idx));
            // Width is at most 12.5% of the bucket's lower bound.
            assert!(bucket_width(idx) * 8 <= bucket_lower(idx).max(8) * 2);
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_adds_counts_exactly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [5u64, 100, 100, 4_000] {
            a.record(v);
        }
        for v in [7u64, 100, 1 << 20] {
            b.record(v);
        }
        let mut concat = Histogram::new();
        for v in [5u64, 100, 100, 4_000, 7, 100, 1 << 20] {
            concat.record(v);
        }
        a.merge(&b);
        assert_eq!(a, concat);
    }
}
