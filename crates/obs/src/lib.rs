//! # qrw-obs
//!
//! In-tree observability for the serving and training stacks — hermetic
//! like everything else in the workspace (no external deps).
//!
//! Two building blocks:
//!
//! * [`Tracer`] — a structured span/event tracer. Producers open
//!   [`SpanGuard`]s (`admit → queue-wait → batch-assemble → decode →
//!   ladder-rung → rank` in the serving runtime; per-step
//!   `forward/backward/opt` in the trainer; the live-catalog epoch
//!   lifecycle adds `pin` — a child of `serve` carrying the pinned
//!   `epoch` — plus writer-side `publish` (`epoch`/`ops`/`segments`, or
//!   `epoch`/`compacted` for compactions) and `reclaim` (`freed`)
//!   spans); completed spans land in a
//!   **lock-sharded in-memory ring buffer** and export as JSONL. The
//!   tracer doubles as a *correctness tool*: because every span carries a
//!   trace id and parent link, tests can assert span-tree invariants
//!   ("every admitted request ends in exactly one terminal span") instead
//!   of only eyeballing latency numbers. [`canonical_structure`] renders
//!   timestamp-free trees so structure can be compared byte-for-byte
//!   across worker counts.
//! * [`Histogram`] — a log-bucketed (HDR-style) latency histogram with a
//!   **fixed bucket layout**, so worker-local histograms [`merge`]
//!   exactly (merge is plain per-bucket count addition: associative,
//!   commutative, lossless). Feeds p50/p95/p99 into `health_report()`
//!   and `BENCH_serve.json`.
//!
//! Timestamps come from an [`ObsClock`], mirroring the serving stack's
//! deadline `Clock`: the monotonic wall clock for real runs, or a
//! **logical clock** (an atomic tick per read) for tests —
//! logical ticks are globally unique, so the per-trace span order is a
//! total, machine-speed-independent order and trace structure becomes
//! deterministic and assertable.
//!
//! [`merge`]: Histogram::merge

pub mod clock;
pub mod hist;
pub mod span;

pub use clock::ObsClock;
pub use hist::Histogram;
pub use span::{
    canonical_structure, AttrValue, SpanGuard, SpanRecord, Tracer, MINTED_TRACE_BIT,
};

/// Span names for the serve scheduler's **minted** (scheduling-dependent)
/// traces. Per-request traces must stay structurally invariant across
/// shard and worker counts, so anything that depends on scheduling — the
/// routing decision, batch composition, steal rescues — is recorded under
/// these names in traces tagged with [`MINTED_TRACE_BIT`] and filtered
/// out of canonical-structure comparisons. Centralised here so the
/// runtime and the trace-invariant tests agree on the taxonomy.
pub mod taxonomy {
    /// Per admitted request: which shard mailbox it was routed to
    /// (attrs: `id`, `shard`, `depth`).
    pub const MAILBOX_ENQUEUE: &str = "mailbox_enqueue";
    /// Root of each micro-batch's minted trace (attrs: `shard`, `worker`,
    /// `size`, `ids`, `stolen`, `shed`, `decode_slots`, `decode_requests`).
    pub const BATCH_FORM: &str = "batch_form";
    /// Child of [`BATCH_FORM`] when the batch was stolen from a sibling
    /// mailbox (attrs: `thief`, `victim`, `count`, `ids`).
    pub const STEAL: &str = "steal";
}
