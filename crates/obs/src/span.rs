//! Structured spans over a lock-sharded ring buffer.
//!
//! A [`Tracer`] hands out [`SpanGuard`]s; a guard stamps its start time
//! on creation and records the completed [`SpanRecord`] into the ring
//! when dropped. Spans carry a `trace` id (the serving runtime uses the
//! request id; the trainer uses the step number), an optional `parent`
//! span id, a `&'static str` name, and a small attribute list.
//!
//! Storage is a fixed-capacity ring sharded across several mutexes
//! (spans hash to a shard by span id), so concurrent workers rarely
//! contend and a hot tracer never grows without bound — overflow evicts
//! the oldest span in the shard and bumps [`Tracer::dropped`].
//!
//! Determinism: span ids come from one global counter and timestamps
//! from the tracer's [`ObsClock`]. With a logical clock every timestamp
//! read is a globally unique tick, so sorting a trace's spans by start
//! time reproduces their creation order exactly — which is why
//! [`canonical_structure`] (a timestamp-free, renumbered rendering of
//! the span trees) is byte-identical across runs and worker counts.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use qrw_tensor::sync::Mutex;

use crate::clock::ObsClock;

/// Trace ids minted by [`Tracer::next_trace`] (rather than supplied by
/// the caller, e.g. batch-level traces) live above this bit so they can
/// never collide with request ids or step numbers.
pub const MINTED_TRACE_BIT: u64 = 1 << 63;

/// An attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    Int(i64),
    Float(f64),
    Str(String),
}

impl AttrValue {
    pub fn as_int(&self) -> Option<i64> {
        match self {
            AttrValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::Int(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Float(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Int(v as i64)
    }
}

/// A completed span as stored in the ring and exported to JSONL.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    pub trace: u64,
    pub id: u64,
    pub parent: Option<u64>,
    pub name: &'static str,
    pub start_us: u64,
    pub end_us: u64,
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanRecord {
    /// Looks up an attribute by key (first match).
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

struct Inner {
    clock: ObsClock,
    shards: Vec<Mutex<VecDeque<SpanRecord>>>,
    shard_capacity: usize,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    dropped: AtomicU64,
}

/// Structured span tracer. Cheap to clone (all clones share one ring);
/// `Send + Sync`, so one tracer serves every worker thread.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("logical", &self.inner.clock.is_logical())
            .field("spans", &self.snapshot().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

const DEFAULT_SHARDS: usize = 8;
const DEFAULT_SHARD_CAPACITY: usize = 8192;

impl Tracer {
    /// A tracer over `clock` with the default ring size
    /// (8 shards × 8192 spans).
    pub fn new(clock: ObsClock) -> Self {
        Self::with_capacity(clock, DEFAULT_SHARDS, DEFAULT_SHARD_CAPACITY)
    }

    /// A tracer with an explicit shard count and per-shard capacity.
    pub fn with_capacity(clock: ObsClock, shards: usize, shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Tracer {
            inner: Arc::new(Inner {
                clock,
                shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
                shard_capacity: shard_capacity.max(1),
                next_span: AtomicU64::new(1),
                next_trace: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// A tracer on a logical clock — deterministic timestamps for tests.
    pub fn logical() -> Self {
        Self::new(ObsClock::logical())
    }

    /// A tracer on the monotonic wall clock — real latency attribution.
    pub fn monotonic() -> Self {
        Self::new(ObsClock::monotonic())
    }

    /// Whether timestamps are logical ticks (see [`ObsClock`]).
    pub fn is_logical(&self) -> bool {
        self.inner.clock.is_logical()
    }

    /// Reads the tracer's clock directly (e.g. to remember an admit time
    /// that later becomes a queue-wait span's start).
    pub fn now_us(&self) -> u64 {
        self.inner.clock.now_us()
    }

    /// Mints a fresh trace id in the reserved [`MINTED_TRACE_BIT`]
    /// namespace, for spans not tied to a caller-supplied id.
    pub fn next_trace(&self) -> u64 {
        MINTED_TRACE_BIT | self.inner.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a span; it records itself when the guard drops.
    pub fn span(&self, trace: u64, parent: Option<u64>, name: &'static str) -> SpanGuard {
        let start_us = self.inner.clock.now_us();
        self.span_at(trace, parent, name, start_us)
    }

    /// Opens a span whose start time was observed earlier (e.g. a
    /// queue-wait span starting at admission).
    pub fn span_at(
        &self,
        trace: u64,
        parent: Option<u64>,
        name: &'static str,
        start_us: u64,
    ) -> SpanGuard {
        let id = self.inner.next_span.fetch_add(1, Ordering::Relaxed);
        SpanGuard {
            tracer: self.clone(),
            record: Some(SpanRecord { trace, id, parent, name, start_us, end_us: start_us, attrs: Vec::new() }),
        }
    }

    /// Spans evicted from the ring since creation (or the last
    /// [`clear`](Self::clear)).
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// All recorded spans, sorted by `(trace, start_us, id)`. Under a
    /// logical clock this order is the per-trace creation order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.extend(shard.lock().iter().cloned());
        }
        out.sort_by_key(|s| (s.trace, s.start_us, s.id));
        out
    }

    /// Empties the ring and resets the dropped counter.
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
        self.inner.dropped.store(0, Ordering::Relaxed);
    }

    /// Exports the snapshot as JSONL — one span object per line:
    /// `{"trace":..,"span":..,"parent":..|null,"name":"..","start_us":..,
    /// "end_us":..,"attrs":{..}}`.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str("{\"trace\":");
            out.push_str(&s.trace.to_string());
            out.push_str(",\"span\":");
            out.push_str(&s.id.to_string());
            out.push_str(",\"parent\":");
            match s.parent {
                Some(p) => out.push_str(&p.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"name\":\"");
            escape_into(&mut out, s.name);
            out.push_str("\",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"end_us\":");
            out.push_str(&s.end_us.to_string());
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(&mut out, k);
                out.push_str("\":");
                match v {
                    AttrValue::Int(n) => out.push_str(&n.to_string()),
                    AttrValue::Float(x) => {
                        if x.is_finite() {
                            out.push_str(&format!("{x:?}"))
                        } else {
                            out.push_str("null")
                        }
                    }
                    AttrValue::Str(t) => {
                        out.push('"');
                        escape_into(&mut out, t);
                        out.push('"');
                    }
                }
            }
            out.push_str("}}\n");
        }
        out
    }

    fn push(&self, record: SpanRecord) {
        let shard = &self.inner.shards[(record.id as usize) % self.inner.shards.len()];
        let mut ring = shard.lock();
        if ring.len() >= self.inner.shard_capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// An open span. Attach attributes with [`attr`](Self::attr); the span
/// records itself (stamping its end time) when the guard drops.
pub struct SpanGuard {
    tracer: Tracer,
    record: Option<SpanRecord>,
}

impl SpanGuard {
    /// This span's id — pass as `parent` when opening children.
    pub fn id(&self) -> u64 {
        self.record.as_ref().map(|r| r.id).unwrap_or(0)
    }

    /// The trace this span belongs to.
    pub fn trace(&self) -> u64 {
        self.record.as_ref().map(|r| r.trace).unwrap_or(0)
    }

    /// Attaches an attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(r) = self.record.as_mut() {
            r.attrs.push((key, value.into()));
        }
    }

    /// Ends the span now (equivalent to dropping the guard).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut r) = self.record.take() {
            r.end_us = self.tracer.inner.clock.now_us().max(r.start_us);
            self.tracer.push(r);
        }
    }
}

/// Renders span trees as a timestamp-free, deterministically renumbered
/// string: traces sorted by id and renumbered `0..`, spans within a
/// trace ordered by `(start_us, id)` and nested under their parents,
/// names only (attributes are measurements and may legitimately vary
/// across worker counts; names are structure). Two runs with the same
/// causal structure render byte-identically even though raw span ids and
/// timestamps differ.
pub fn canonical_structure(spans: &[SpanRecord]) -> String {
    let mut traces: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        traces.entry(s.trace).or_default().push(s);
    }
    let mut out = String::new();
    for (n, (_, mut trace)) in traces.into_iter().enumerate() {
        trace.sort_by_key(|s| (s.start_us, s.id));
        out.push_str(&format!("trace {n}\n"));
        // Children of each span, in creation order.
        let ids: std::collections::HashSet<u64> = trace.iter().map(|s| s.id).collect();
        let mut children: BTreeMap<Option<u64>, Vec<&SpanRecord>> = BTreeMap::new();
        for s in &trace {
            // A parent outside this trace's snapshot renders at root.
            let key = s.parent.filter(|p| ids.contains(p));
            children.entry(key).or_default().push(s);
        }
        fn render(
            out: &mut String,
            children: &BTreeMap<Option<u64>, Vec<&SpanRecord>>,
            parent: Option<u64>,
            depth: usize,
        ) {
            if let Some(kids) = children.get(&parent) {
                for s in kids {
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                    out.push_str(s.name);
                    out.push('\n');
                    render(out, children, Some(s.id), depth + 1);
                }
            }
        }
        render(&mut out, &children, None, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_span_with_parent_and_attrs() {
        let t = Tracer::logical();
        let mut root = t.span(7, None, "root");
        root.attr("k", 3u64);
        let child = t.span(7, Some(root.id()), "child");
        child.finish();
        root.finish();
        let spans = t.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].name, "child");
        assert_eq!(spans[1].parent, Some(spans[0].id));
        assert_eq!(spans[0].attr("k").and_then(AttrValue::as_int), Some(3));
        assert!(spans[0].start_us < spans[1].start_us, "creation order by start tick");
        assert!(spans.iter().all(|s| s.end_us >= s.start_us));
    }

    #[test]
    fn ring_overflow_evicts_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(ObsClock::logical(), 1, 4);
        for i in 0..10u64 {
            t.span(i, None, "s").finish();
        }
        assert_eq!(t.snapshot().len(), 4);
        assert_eq!(t.dropped(), 6);
        t.clear();
        assert_eq!(t.snapshot().len(), 0);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn jsonl_export_escapes_and_shapes_lines() {
        let t = Tracer::logical();
        let mut s = t.span(1, None, "decode");
        s.attr("note", "a\"b\\c");
        s.attr("size", 4u64);
        s.attr("ratio", 0.5f64);
        s.finish();
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"trace\":1,"));
        assert!(lines[0].contains("\"name\":\"decode\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines[0].contains("\"note\":\"a\\\"b\\\\c\""));
        assert!(lines[0].contains("\"size\":4"));
        assert!(lines[0].contains("\"ratio\":0.5"));
    }

    #[test]
    fn minted_trace_ids_use_reserved_namespace() {
        let t = Tracer::logical();
        let a = t.next_trace();
        let b = t.next_trace();
        assert_ne!(a, b);
        assert!(a & MINTED_TRACE_BIT != 0);
        assert!(b & MINTED_TRACE_BIT != 0);
    }

    #[test]
    fn canonical_structure_is_invariant_to_id_and_time_offsets() {
        // Two tracers with different amounts of prior activity produce
        // different raw ids/ticks for the same causal structure; the
        // canonical rendering must still match byte-for-byte.
        let render = |t: &Tracer| {
            for trace in [40u64, 41] {
                let root = t.span(trace, None, "serve");
                let rung = t.span(trace, Some(root.id()), "rung_cache");
                rung.finish();
                let rank = t.span(trace, Some(root.id()), "rank");
                rank.finish();
                root.finish();
                t.span(trace, None, "served").finish();
            }
            canonical_structure(&t.snapshot())
        };
        let a = Tracer::logical();
        let b = Tracer::logical();
        // Skew tracer b's clock and id counter with unrelated activity.
        for _ in 0..5 {
            b.span(999, None, "noise").finish();
        }
        let sa = render(&a);
        let sb_full = render(&b);
        // Drop the noise trace from b before comparing.
        let spans_b: Vec<SpanRecord> =
            b.snapshot().into_iter().filter(|s| s.trace != 999).collect();
        let sb = canonical_structure(&spans_b);
        assert_ne!(sa, sb_full);
        assert_eq!(sa, sb);
        assert_eq!(
            sa,
            "trace 0\n  serve\n    rung_cache\n    rank\n  served\ntrace 1\n  serve\n    rung_cache\n    rank\n  served\n"
        );
    }
}
