//! Trace clocks: where span timestamps come from.
//!
//! Mirrors the deadline budget's `Clock` split (monotonic vs synthetic):
//! production traces use real monotonic microseconds; tests use a
//! **logical clock** whose every read returns the next tick of a global
//! atomic counter. Logical ticks are unique, so two spans never tie — the
//! per-trace order of spans is total and independent of machine speed,
//! which is what makes trace *structure* a deterministic test subject.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Timestamp source for a [`Tracer`](crate::Tracer).
#[derive(Debug)]
pub enum ObsClock {
    /// Microseconds of real monotonic time since the tracer was created.
    Monotonic(Instant),
    /// A logical tick per read — deterministic ordering, no wall time.
    Logical(AtomicU64),
}

impl ObsClock {
    /// A monotonic clock starting now.
    pub fn monotonic() -> Self {
        ObsClock::Monotonic(Instant::now())
    }

    /// A logical clock starting at tick 0.
    pub fn logical() -> Self {
        ObsClock::Logical(AtomicU64::new(0))
    }

    /// The current timestamp. Monotonic clocks report elapsed
    /// microseconds; logical clocks return a fresh, globally unique tick.
    pub fn now_us(&self) -> u64 {
        match self {
            ObsClock::Monotonic(origin) => origin.elapsed().as_micros() as u64,
            ObsClock::Logical(tick) => tick.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Whether this clock produces logical (deterministically ordered)
    /// timestamps.
    pub fn is_logical(&self) -> bool {
        matches!(self, ObsClock::Logical(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_ticks_are_unique_and_increasing() {
        let c = ObsClock::logical();
        let a = c.now_us();
        let b = c.now_us();
        let d = c.now_us();
        assert!(a < b && b < d);
        assert_eq!((a, b, d), (0, 1, 2));
        assert!(c.is_logical());
    }

    #[test]
    fn monotonic_never_goes_backwards() {
        let c = ObsClock::monotonic();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
        assert!(!c.is_logical());
    }

    #[test]
    fn logical_ticks_unique_across_threads() {
        let c = std::sync::Arc::new(ObsClock::logical());
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let c = std::sync::Arc::clone(&c);
                    scope.spawn(move || (0..100).map(|_| c.now_us()).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(before, all.len(), "duplicate logical ticks");
    }
}
