//! Property tests for the mergeable log-bucketed histogram. The bucket
//! layout is fixed at compile time, so merging is per-bucket count
//! addition — *exact*, which is what makes worker-local histograms safe
//! to combine into one `health_report()`. Cases are drawn from a seeded
//! generator, so every run is reproducible.

use qrw_obs::hist::{bucket_index, bucket_lower, bucket_width};
use qrw_obs::Histogram;
use qrw_tensor::rng::StdRng;

const CASES: usize = 24;
const QS: [f64; 7] = [0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99];

/// Values spanning the interesting ranges: the exact sub-8 buckets,
/// mid-range latencies, and the top octaves.
fn rand_value(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0usize..4) {
        0 => rng.gen_range(0u64..8),
        1 => rng.gen_range(8u64..4096),
        2 => rng.gen_range(4096u64..10_000_000),
        _ => u64::MAX - rng.gen_range(0u64..1 << 40),
    }
}

fn rand_hist(rng: &mut StdRng, max_len: usize) -> (Histogram, Vec<u64>) {
    let len = rng.gen_range(0usize..max_len.max(1));
    let mut h = Histogram::new();
    let mut samples = Vec::with_capacity(len);
    for _ in 0..len {
        let v = rand_value(rng);
        h.record(v);
        samples.push(v);
    }
    (h, samples)
}

fn merged(a: &Histogram, b: &Histogram) -> Histogram {
    let mut m = a.clone();
    m.merge(b);
    m
}

/// Merge is commutative and associative, bucket-for-bucket. `Histogram`
/// is `Eq`, so this compares counts, totals, sums, and min/max exactly.
#[test]
fn merge_is_commutative_and_associative() {
    let mut rng = StdRng::seed_from_u64(0x0B50_0001);
    for _ in 0..CASES {
        let (a, _) = rand_hist(&mut rng, 64);
        let (b, _) = rand_hist(&mut rng, 64);
        let (c, _) = rand_hist(&mut rng, 64);
        assert_eq!(merged(&a, &b), merged(&b, &a));
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }
}

/// Quantiles of a merged histogram equal the quantiles of one histogram
/// fed the concatenated sample stream: merging loses nothing that
/// recording in a single place would have kept.
#[test]
fn merged_quantiles_equal_concatenated_quantiles() {
    let mut rng = StdRng::seed_from_u64(0x0B50_0002);
    for _ in 0..CASES {
        let (a, sa) = rand_hist(&mut rng, 96);
        let (b, sb) = rand_hist(&mut rng, 96);
        let m = merged(&a, &b);
        let mut concat = Histogram::new();
        for v in sa.iter().chain(&sb) {
            concat.record(*v);
        }
        assert_eq!(m, concat);
        for q in QS {
            assert_eq!(m.quantile(q), concat.quantile(q));
        }
    }
}

/// Merged quantiles track the exact sample quantiles to within one
/// bucket width (the histogram's stated resolution: ≤ 12.5% relative
/// error above the exact range).
#[test]
fn merged_quantiles_within_one_bucket_of_exact() {
    let mut rng = StdRng::seed_from_u64(0x0B50_0003);
    for _ in 0..CASES {
        let (a, sa) = rand_hist(&mut rng, 96);
        let (b, sb) = rand_hist(&mut rng, 96);
        let mut all: Vec<u64> = sa.iter().chain(&sb).copied().collect();
        if all.is_empty() {
            continue;
        }
        all.sort_unstable();
        let m = merged(&a, &b);
        for q in QS {
            let rank = ((all.len() as f64 * q).ceil() as usize).clamp(1, all.len());
            let exact = all[rank - 1];
            let got = m.quantile(q);
            // The reported quantile is the lower bound of the bucket
            // holding the exact sample quantile.
            let idx = bucket_index(exact);
            assert_eq!(got, bucket_lower(idx), "q={q}: {got} vs exact {exact}");
            assert!(got <= exact);
            assert!(exact - got < bucket_width(idx).max(1));
        }
    }
}

/// The empty histogram is the merge identity, and its own stats are all
/// zero.
#[test]
fn empty_histogram_is_merge_identity() {
    let empty = Histogram::new();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.quantile(0.5), 0);
    assert_eq!(empty.quantile(0.99), 0);
    assert_eq!(empty.mean(), 0.0);

    let mut rng = StdRng::seed_from_u64(0x0B50_0004);
    for _ in 0..CASES {
        let (a, _) = rand_hist(&mut rng, 64);
        assert_eq!(merged(&a, &empty), a);
        assert_eq!(merged(&empty, &a), a);
    }
}

/// Histograms whose mass sits in a single bucket: every quantile is that
/// bucket's lower bound, before and after merging, and min/max/sum stay
/// exact (they are tracked outside the buckets).
#[test]
fn single_bucket_histograms_merge_exactly() {
    let mut rng = StdRng::seed_from_u64(0x0B50_0005);
    for _ in 0..CASES {
        let v = rand_value(&mut rng);
        let (na, nb) = (rng.gen_range(1u64..50), rng.gen_range(1u64..50));
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..na {
            a.record(v);
        }
        for _ in 0..nb {
            b.record(v);
        }
        let m = merged(&a, &b);
        assert_eq!(m.count(), na + nb);
        assert_eq!(m.min(), Some(v));
        assert_eq!(m.max(), Some(v));
        // `sum` saturates, so fold the expectation the same way.
        let expected_sum = (0..na + nb).fold(0u64, |s, _| s.saturating_add(v));
        assert_eq!(m.sum(), expected_sum);
        let lower = bucket_lower(bucket_index(v));
        for q in QS {
            assert_eq!(m.quantile(q), lower);
        }
        assert_eq!(m.nonzero_buckets(), vec![(lower, na + nb)]);
    }
}

/// Quantile edge behavior on a known stream: q=0 and tiny q land on the
/// first sample's bucket, q=1 on the last, and ranks interpolate
/// monotonically in between.
#[test]
fn quantile_is_monotone_in_q() {
    let mut rng = StdRng::seed_from_u64(0x0B50_0006);
    for _ in 0..CASES {
        let (h, samples) = rand_hist(&mut rng, 128);
        if samples.is_empty() {
            continue;
        }
        let mut prev = h.quantile(0.0);
        for i in 1..=100 {
            let q = i as f64 / 100.0;
            let cur = h.quantile(q);
            assert!(cur >= prev, "quantile must be monotone in q");
            prev = cur;
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        assert_eq!(h.quantile(0.0), bucket_lower(bucket_index(sorted[0])));
        assert_eq!(h.quantile(1.0), bucket_lower(bucket_index(*sorted.last().unwrap())));
    }
}
