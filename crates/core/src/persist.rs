//! Model persistence: checkpointing trained models to disk so offline
//! training (the paper's GPU-side job) and online serving (the CPU-side
//! KV-precompute and q2q deployment) can run as separate processes.

use std::fs;
use std::io;
use std::path::Path;

use qrw_nmt::Seq2Seq;
use qrw_tensor::serialize;

use crate::cyclic::JointModel;

/// Saves one model's parameters to `path`.
pub fn save_model(model: &Seq2Seq, path: impl AsRef<Path>) -> io::Result<()> {
    fs::write(path, serialize::save(model.params()))
}

/// Restores parameters into an already-constructed model of the same
/// configuration (parameters are matched by name and shape).
pub fn load_model(model: &Seq2Seq, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = fs::read(path)?;
    serialize::load(model.params(), &bytes)
}

/// Saves a joint model as `<stem>.forward.qrw` + `<stem>.backward.qrw`.
pub fn save_joint(model: &JointModel, stem: impl AsRef<Path>) -> io::Result<()> {
    let stem = stem.as_ref();
    save_model(&model.forward, with_suffix(stem, "forward"))?;
    save_model(&model.backward, with_suffix(stem, "backward"))
}

/// Restores a joint model saved with [`save_joint`].
pub fn load_joint(model: &JointModel, stem: impl AsRef<Path>) -> io::Result<()> {
    let stem = stem.as_ref();
    load_model(&model.forward, with_suffix(stem, "forward"))?;
    load_model(&model.backward, with_suffix(stem, "backward"))
}

fn with_suffix(stem: &Path, which: &str) -> std::path::PathBuf {
    let mut name = stem.as_os_str().to_os_string();
    name.push(format!(".{which}.qrw"));
    std::path::PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::ModelConfig;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qrw-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn model_roundtrip_preserves_behaviour() {
        let dir = tmpdir();
        let path = dir.join("model.qrw");
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        let lp = a.log_prob(&[5, 6], &[7]);
        save_model(&a, &path).unwrap();

        let b = Seq2Seq::new(ModelConfig::tiny_transformer(20), 2);
        assert_ne!(b.log_prob(&[5, 6], &[7]), lp);
        load_model(&b, &path).unwrap();
        assert_eq!(b.log_prob(&[5, 6], &[7]), lp);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn joint_roundtrip() {
        let dir = tmpdir();
        let stem = dir.join("joint");
        let cfg = ModelConfig::tiny_transformer(20);
        let a = JointModel::new(Seq2Seq::new(cfg.clone(), 1), Seq2Seq::new(cfg.clone(), 2));
        save_joint(&a, &stem).unwrap();
        let b = JointModel::new(Seq2Seq::new(cfg.clone(), 3), Seq2Seq::new(cfg, 4));
        load_joint(&b, &stem).unwrap();
        assert_eq!(
            a.forward.log_prob(&[5], &[6]),
            b.forward.log_prob(&[5], &[6])
        );
        assert_eq!(
            a.backward.log_prob(&[6], &[5]),
            b.backward.log_prob(&[6], &[5])
        );
        fs::remove_file(with_suffix(&stem, "forward")).unwrap();
        fs::remove_file(with_suffix(&stem, "backward")).unwrap();
    }

    #[test]
    fn load_into_mismatched_config_fails() {
        let dir = tmpdir();
        let path = dir.join("mismatch.qrw");
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        save_model(&a, &path).unwrap();
        let mut bigger = ModelConfig::tiny_transformer(20);
        bigger.d_model = 16;
        bigger.d_ff = 32;
        let b = Seq2Seq::new(bigger, 1);
        assert!(load_model(&b, &path).is_err());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        assert!(load_model(&a, "/nonexistent/nope.qrw").is_err());
    }
}
