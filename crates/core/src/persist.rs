//! Model persistence: checkpointing trained models to disk so offline
//! training (the paper's GPU-side job) and online serving (the CPU-side
//! KV-precompute and q2q deployment) can run as separate processes.
//!
//! Every file goes through the **atomic write path**: bytes are written to
//! a temporary file in the destination directory, fsynced, then renamed
//! over the target (and the directory fsynced). A process killed at any
//! byte offset therefore leaves either the old file or the new file —
//! never a torn one — and the v2 `QRWT` checksums reject whatever garbage
//! a non-atomic writer could have left behind.
//!
//! Multi-file checkpoints (a [`JointModel`]'s forward/backward pair, the
//! trainer state in [`crate::checkpoint`]) are committed by a [`Manifest`]
//! written *last*: it lists every member file with its size and FNV-1a digest, so
//! a crash between member writes is detected as a manifest mismatch
//! instead of silently loading a half-old half-new pair.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qrw_nmt::Seq2Seq;
use qrw_tensor::serialize::{self, crc32, fnv1a64};

use crate::cyclic::JointModel;

/// Destination for checkpoint bytes. The production implementation is
/// [`DiskSink`]; the train-resilience tests inject
/// [`TrainFaultInjector`](crate::fault::TrainFaultInjector) to simulate
/// kills, bit flips and full disks at exact write offsets.
///
/// `Send + Sync` so a store owning a boxed sink can move to a dedicated
/// writer thread (the live-catalog writer does exactly that) and be
/// shared behind `Arc`.
pub trait WriteSink: Send + Sync {
    /// Atomically replaces `path` with `bytes`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
}

/// The real filesystem sink: write-to-temp + fsync + rename + dir fsync.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskSink;

impl WriteSink for DiskSink {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
        let tmp = path.with_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
        {
            use std::io::Write;
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // Persist the rename itself: fsync the containing directory.
        if let Some(dir) = dir {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// One member file of a multi-file checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// File name relative to the manifest's directory (no separators).
    pub name: String,
    pub size: u64,
    /// FNV-1a 64 digest of `name ∥ bytes` (see [`member_digest`]).
    pub digest: u64,
}

/// Content fingerprint of a member file.
///
/// This must NOT be CRC32: members are themselves CRC-sealed formats
/// (v2 `QRWT`, `QRWS`), and CRC's GF(2) linearity makes every sealed file
/// of a given length hash to the same value — with the standard register,
/// the fixed residue `0x2144DF1C` — so a CRC32 manifest would call *any*
/// valid member a match for any other of equal length (e.g. a crash
/// window where a newer save overwrote one half of a pair). FNV-1a is
/// non-linear, and tagging with the name pins each member to its slot, so
/// even swapping two members within one checkpoint is caught.
fn member_digest(name: &str, bytes: &[u8]) -> u64 {
    fnv1a64(name.as_bytes(), bytes)
}

/// The commit record of a multi-file checkpoint: member names, sizes and
/// FNV-1a digests, sealed by a whole-manifest CRC and written *after*
/// every member. A checkpoint without a matching manifest is not a
/// checkpoint.
///
/// On-disk layout (text, one entry per line):
///
/// ```text
/// QRWM 1
/// entry <size> <fnv1a64-hex> <name>
/// seal <crc32-hex of all preceding bytes>
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    pub entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Builds a manifest over `(name, bytes)` members about to be written.
    pub fn of_members(members: &[(&str, &[u8])]) -> Manifest {
        Manifest {
            entries: members
                .iter()
                .map(|(name, bytes)| {
                    assert!(
                        !name.contains(['/', '\\', ' ', '\n']),
                        "manifest member names must be bare file names: {name:?}"
                    );
                    ManifestEntry {
                        name: name.to_string(),
                        size: bytes.len() as u64,
                        digest: member_digest(name, bytes),
                    }
                })
                .collect(),
        }
    }

    /// Serializes to the sealed text layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::from("QRWM 1\n");
        for e in &self.entries {
            out.push_str(&format!("entry {} {:016x} {}\n", e.size, e.digest, e.name));
        }
        let seal = crc32(out.as_bytes());
        out.push_str(&format!("seal {seal:08x}\n"));
        out.into_bytes()
    }

    /// Parses and seal-checks a manifest file's bytes.
    pub fn parse(bytes: &[u8]) -> Result<Manifest, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "manifest is not UTF-8".to_string())?;
        let mut entries = Vec::new();
        let mut consumed = 0usize;
        let mut lines = text.split_inclusive('\n');
        match lines.next() {
            Some("QRWM 1\n") => consumed += "QRWM 1\n".len(),
            _ => return Err("bad manifest header".into()),
        }
        for line in lines {
            let trimmed = line.strip_suffix('\n').ok_or("manifest not newline-terminated")?;
            if let Some(rest) = trimmed.strip_prefix("entry ") {
                let mut parts = rest.splitn(3, ' ');
                let size = parts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .ok_or("bad manifest entry size")?;
                let digest = parts
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or("bad manifest entry digest")?;
                let name = parts.next().filter(|n| !n.is_empty()).ok_or("bad manifest entry name")?;
                entries.push(ManifestEntry { name: name.to_string(), size, digest });
                consumed += line.len();
            } else if let Some(rest) = trimmed.strip_prefix("seal ") {
                let seal =
                    u32::from_str_radix(rest, 16).map_err(|_| "bad manifest seal".to_string())?;
                if crc32(&bytes[..consumed]) != seal {
                    return Err("manifest seal mismatch (corrupt manifest)".into());
                }
                return Ok(Manifest { entries });
            } else {
                return Err(format!("unrecognized manifest line: {trimmed:?}"));
            }
        }
        Err("manifest missing seal (truncated)".into())
    }

    /// Verifies every listed member on disk in `dir`: existence, size and
    /// FNV digest. Any deviation is an `InvalidData` error naming the file.
    pub fn verify(&self, dir: &Path) -> io::Result<()> {
        for e in &self.entries {
            let path = dir.join(&e.name);
            let bytes = fs::read(&path).map_err(|err| {
                io::Error::new(
                    err.kind(),
                    format!("manifest member {} unreadable: {err}", path.display()),
                )
            })?;
            if bytes.len() as u64 != e.size {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "manifest member {} has size {} (manifest says {})",
                        path.display(),
                        bytes.len(),
                        e.size
                    ),
                ));
            }
            if member_digest(&e.name, &bytes) != e.digest {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("manifest member {} fails its digest", path.display()),
                ));
            }
        }
        Ok(())
    }
}

/// Saves one model's parameters to `path` through the atomic write path.
pub fn save_model(model: &Seq2Seq, path: impl AsRef<Path>) -> io::Result<()> {
    save_model_with(model, path, &DiskSink)
}

/// [`save_model`] with an explicit sink (fault-injection entry point).
pub fn save_model_with(
    model: &Seq2Seq,
    path: impl AsRef<Path>,
    sink: &dyn WriteSink,
) -> io::Result<()> {
    sink.write_atomic(path.as_ref(), &serialize::save(model.params()))
}

/// Restores parameters into an already-constructed model of the same
/// configuration (parameters are matched by name and shape). Torn or
/// bit-flipped checkpoints fail with a typed
/// [`CheckpointError`](qrw_tensor::serialize::CheckpointError) wrapped as
/// `InvalidData`.
pub fn load_model(model: &Seq2Seq, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = fs::read(path)?;
    serialize::load(model.params(), &bytes)?;
    Ok(())
}

/// Saves a joint model as `<stem>.forward.qrw` + `<stem>.backward.qrw`,
/// committed by `<stem>.manifest` written last. A crash anywhere in the
/// sequence leaves a pair that [`load_joint`] either fully restores (old
/// or new) or rejects — never a mixed forward/backward pair.
pub fn save_joint(model: &JointModel, stem: impl AsRef<Path>) -> io::Result<()> {
    save_joint_with(model, stem, &DiskSink)
}

/// [`save_joint`] with an explicit sink (fault-injection entry point).
pub fn save_joint_with(
    model: &JointModel,
    stem: impl AsRef<Path>,
    sink: &dyn WriteSink,
) -> io::Result<()> {
    let stem = stem.as_ref();
    let fwd_path = with_suffix(stem, "forward");
    let bwd_path = with_suffix(stem, "backward");
    let fwd = serialize::save(model.forward.params());
    let bwd = serialize::save(model.backward.params());
    let manifest = Manifest::of_members(&[
        (&file_name_of(&fwd_path), &fwd),
        (&file_name_of(&bwd_path), &bwd),
    ]);
    sink.write_atomic(&fwd_path, &fwd)?;
    sink.write_atomic(&bwd_path, &bwd)?;
    sink.write_atomic(&manifest_path(stem), &manifest.to_bytes())
}

/// Restores a joint model saved with [`save_joint`], verifying the
/// manifest (presence, sizes, CRCs of both members) before touching any
/// parameter, so a half-written pair is rejected wholesale.
pub fn load_joint(model: &JointModel, stem: impl AsRef<Path>) -> io::Result<()> {
    let stem = stem.as_ref();
    let manifest_bytes = fs::read(manifest_path(stem)).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("joint checkpoint {} has no readable manifest: {e}", stem.display()),
        )
    })?;
    let manifest = Manifest::parse(&manifest_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    let dir = stem.parent().map(Path::to_path_buf).unwrap_or_else(|| PathBuf::from("."));
    manifest.verify(&dir)?;
    load_model(&model.forward, with_suffix(stem, "forward"))?;
    load_model(&model.backward, with_suffix(stem, "backward"))
}

fn with_suffix(stem: &Path, which: &str) -> PathBuf {
    let mut name = stem.as_os_str().to_os_string();
    name.push(format!(".{which}.qrw"));
    PathBuf::from(name)
}

fn manifest_path(stem: &Path) -> PathBuf {
    let mut name = stem.as_os_str().to_os_string();
    name.push(".manifest");
    PathBuf::from(name)
}

fn file_name_of(path: &Path) -> String {
    path.file_name().expect("checkpoint paths have file names").to_string_lossy().into_owned()
}

/// Unique, self-cleaning temporary directories for tests. Pid-only naming
/// collides across tests running in one process; this combines pid, a
/// per-process counter and the test's own label, and removes the tree on
/// drop.
#[cfg(test)]
pub(crate) mod testutil {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    pub struct TestDir {
        path: PathBuf,
    }

    impl TestDir {
        pub fn new(label: &str) -> TestDir {
            let path = std::env::temp_dir().join(format!(
                "qrw-{label}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&path).unwrap();
            TestDir { path }
        }

        pub fn path(&self) -> &Path {
            &self.path
        }

        pub fn join(&self, name: &str) -> PathBuf {
            self.path.join(name)
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::TestDir;
    use super::*;
    use qrw_nmt::ModelConfig;

    #[test]
    fn model_roundtrip_preserves_behaviour() {
        let dir = TestDir::new("persist-model");
        let path = dir.join("model.qrw");
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        let lp = a.log_prob(&[5, 6], &[7]);
        save_model(&a, &path).unwrap();

        let b = Seq2Seq::new(ModelConfig::tiny_transformer(20), 2);
        assert_ne!(b.log_prob(&[5, 6], &[7]), lp);
        load_model(&b, &path).unwrap();
        assert_eq!(b.log_prob(&[5, 6], &[7]), lp);
    }

    #[test]
    fn joint_roundtrip() {
        let dir = TestDir::new("persist-joint");
        let stem = dir.join("joint");
        let cfg = ModelConfig::tiny_transformer(20);
        let a = JointModel::new(Seq2Seq::new(cfg.clone(), 1), Seq2Seq::new(cfg.clone(), 2));
        save_joint(&a, &stem).unwrap();
        let b = JointModel::new(Seq2Seq::new(cfg.clone(), 3), Seq2Seq::new(cfg, 4));
        load_joint(&b, &stem).unwrap();
        assert_eq!(
            a.forward.log_prob(&[5], &[6]),
            b.forward.log_prob(&[5], &[6])
        );
        assert_eq!(
            a.backward.log_prob(&[6], &[5]),
            b.backward.log_prob(&[6], &[5])
        );
    }

    #[test]
    fn load_into_mismatched_config_fails() {
        let dir = TestDir::new("persist-mismatch");
        let path = dir.join("mismatch.qrw");
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        save_model(&a, &path).unwrap();
        let mut bigger = ModelConfig::tiny_transformer(20);
        bigger.d_model = 16;
        bigger.d_ff = 32;
        let b = Seq2Seq::new(bigger, 1);
        assert!(load_model(&b, &path).is_err());
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let a = Seq2Seq::new(ModelConfig::tiny_transformer(20), 1);
        assert!(load_model(&a, "/nonexistent/nope.qrw").is_err());
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let dir = TestDir::new("persist-atomic");
        let path = dir.join("m.qrw");
        DiskSink.write_atomic(&path, b"payload-one").unwrap();
        DiskSink.write_atomic(&path, b"payload-two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"payload-two");
        let leftovers: Vec<_> = fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
    }

    #[test]
    fn manifest_round_trips_and_seals() {
        let m = Manifest::of_members(&[("a.qrw", b"aaaa".as_slice()), ("b.qrw", b"bb")]);
        let bytes = m.to_bytes();
        assert_eq!(Manifest::parse(&bytes).unwrap(), m);
        // Any corruption of the manifest text fails the seal (or parse).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::parse(&bad).is_err(), "corruption at byte {i} accepted");
        }
        // Truncations are rejected too.
        for cut in 0..bytes.len() {
            assert!(Manifest::parse(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn joint_pair_with_mismatched_member_is_rejected_wholesale() {
        let dir = TestDir::new("persist-joint-torn");
        let stem = dir.join("joint");
        let cfg = ModelConfig::tiny_transformer(20);
        let a = JointModel::new(Seq2Seq::new(cfg.clone(), 1), Seq2Seq::new(cfg.clone(), 2));
        save_joint(&a, &stem).unwrap();
        // Simulate a crash window: the forward file was re-written by a
        // newer save but the manifest still describes the old pair.
        let b = JointModel::new(Seq2Seq::new(cfg.clone(), 9), Seq2Seq::new(cfg.clone(), 10));
        save_model(&b.forward, with_suffix(&stem, "forward")).unwrap();
        let c = JointModel::new(Seq2Seq::new(cfg.clone(), 5), Seq2Seq::new(cfg, 6));
        let before = c.forward.log_prob(&[5], &[6]);
        let err = load_joint(&c, &stem).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{err}");
        // Nothing was loaded: verification happens before any mutation.
        assert_eq!(c.forward.log_prob(&[5], &[6]), before);
    }

    #[test]
    fn joint_without_manifest_is_rejected() {
        let dir = TestDir::new("persist-joint-nomanifest");
        let stem = dir.join("joint");
        let cfg = ModelConfig::tiny_transformer(20);
        let a = JointModel::new(Seq2Seq::new(cfg.clone(), 1), Seq2Seq::new(cfg.clone(), 2));
        save_joint(&a, &stem).unwrap();
        fs::remove_file(manifest_path(&stem)).unwrap();
        let b = JointModel::new(Seq2Seq::new(cfg.clone(), 3), Seq2Seq::new(cfg, 4));
        assert!(load_joint(&b, &stem).is_err());
    }
}
