//! Cyclic-consistent joint training — the paper's §III-C/§III-D and
//! Algorithm 1.
//!
//! Two translation models are trained on click-log pairs: the forward
//! (query→title) model maximizes `L_f`, the backward (title→query) model
//! `L_b`. After `G` warm-up steps the **cycle-consistency likelihood**
//!
//! ```text
//! L_c = Σ_n log Σ_{ŷ ∈ Ỹ} P(ŷ | x_n; θ_f) · P(x_n | ŷ; θ_b)
//! ```
//!
//! joins the objective with weight `λ`, where `Ỹ` is a top-k set of
//! synthetic titles sampled from the forward model with the top-n sampling
//! decoder (the tractable approximation of Eq. 4/5). Because both models'
//! log-likelihoods are nodes of one autodiff tape, the log-sum-exp couples
//! them and one backward pass produces the Eq. 5 gradients for both
//! parameter sets.

use std::io;
use std::path::Path;

use qrw_obs::Tracer;
use qrw_tensor::rng::StdRng;

use qrw_nmt::{top_n_sampling, Seq2Seq, TopNSampling};
use qrw_tensor::optim::{Adam, AdamConfig, NoamSchedule};
use qrw_tensor::{serialize, Tape, Var};
use qrw_data::Pair;

use crate::checkpoint::{
    self, CheckpointStore, ResumeError, TrainerState, BACKWARD_FILE, FORWARD_FILE, TRAINER_FILE,
};
use crate::config::TrainConfig;

/// The forward (query→title) and backward (title→query) models.
pub struct JointModel {
    pub forward: Seq2Seq,
    pub backward: Seq2Seq,
}

impl JointModel {
    pub fn new(forward: Seq2Seq, backward: Seq2Seq) -> Self {
        JointModel { forward, backward }
    }

    /// The cycle-consistency log-likelihood `log P(x|x)` for one query,
    /// marginalized over `titles`, as a tape node. Also returns the
    /// per-title path scores `log P(ŷ|x) + log P(x|ŷ)` (values only).
    pub fn cyclic_log_likelihood<'t>(
        &self,
        tape: &'t Tape,
        query: &[usize],
        titles: &[Vec<usize>],
    ) -> Var<'t> {
        assert!(!titles.is_empty(), "cyclic term needs at least one synthetic title");
        let mut paths = Vec::with_capacity(titles.len());
        for title in titles {
            if title.is_empty() {
                continue;
            }
            let (nll_f, _) = self.forward.nll_on_tape(tape, query, title, &mut None);
            let (nll_b, _) = self.backward.nll_on_tape(tape, title, query, &mut None);
            // log P_f + log P_b = -(nll_f + nll_b)
            paths.push(nll_f.add(nll_b).scale(-1.0));
        }
        assert!(!paths.is_empty(), "all synthetic titles were empty");
        Var::log_sum_exp_scalars(&paths)
    }

    /// Samples `k` synthetic titles for `query` from the forward model
    /// (top-n sampling, §III-F), dropping empties.
    pub fn sample_titles(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<usize>> {
        top_n_sampling(&self.forward, query, TopNSampling { k, n }, rng)
            .into_iter()
            .map(|h| h.tokens)
            .filter(|t| !t.is_empty())
            .collect()
    }

    /// Evaluation: `log P(x|x)` marginalized over `k` sampled titles
    /// (the paper's "Log probability" convergence metric).
    pub fn translate_back_log_prob(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let titles = self.sample_titles(query, k, n, rng);
        if titles.is_empty() {
            return f32::NEG_INFINITY;
        }
        let paths: Vec<f32> = titles
            .iter()
            .map(|t| self.forward.log_prob(query, t) + self.backward.log_prob(t, query))
            .collect();
        qrw_tensor::log_sum_exp(&paths)
    }

    /// Evaluation: fraction of positions where the backward model's argmax
    /// over a synthetic title reproduces the original query token (the
    /// paper's "Accuracy" convergence metric).
    pub fn translate_back_accuracy(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let titles = self.sample_titles(query, k, n, rng);
        if titles.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for title in &titles {
            let memory = self.backward.encode(title);
            let mut state = self.backward.start_state(&memory);
            let mut prefix = vec![qrw_text::BOS];
            for &tok in query.iter().chain(std::iter::once(&qrw_text::EOS)) {
                let lp = self.backward.next_log_probs(&memory, &mut state, &prefix);
                let argmax = lp
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if argmax == tok {
                    correct += 1;
                }
                total += 1;
                prefix.push(tok);
            }
        }
        correct as f32 / total.max(1) as f32
    }
}

/// One evaluation snapshot along the training trajectory (a Figure 7/8/9
/// curve point), including the cumulative divergence-sentinel counters at
/// snapshot time so the persisted curve tells *how* the run got there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    pub step: u64,
    /// Forward (q2t) per-token perplexity on the eval pairs.
    pub ppl_q2t: f32,
    /// Backward (t2q) per-token perplexity on the eval pairs.
    pub ppl_t2q: f32,
    /// Mean translate-back log-probability over eval queries.
    pub log_prob: f32,
    /// Mean translate-back token accuracy over eval queries.
    pub accuracy: f32,
    /// Steps skipped by sentinels (non-finite or spiking loss) so far.
    pub skipped_steps: u64,
    /// Rollbacks to the last good checkpoint so far.
    pub rollbacks: u64,
    /// Non-finite gradient events so far.
    pub nan_grad_events: u64,
}

/// Full training trajectory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrainingCurve {
    pub points: Vec<CurvePoint>,
}

impl TrainingCurve {
    pub fn last(&self) -> Option<&CurvePoint> {
        self.points.last()
    }
}

/// Whether the cyclic term is used after warm-up (joint) or never
/// (the paper's "separate" ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainMode {
    Separate,
    Joint,
}

/// Cumulative divergence-sentinel telemetry for one training process —
/// the training-side counterpart of the serving crate's `HealthReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrainHealthReport {
    /// Steps whose batch loss was NaN/Inf.
    pub nan_loss_events: u64,
    /// Steps whose gradient norm was NaN/Inf.
    pub nan_grad_events: u64,
    /// Steps that applied no optimizer update (non-finite or spiking).
    pub skipped_steps: u64,
    /// Loss-spike detections.
    pub loss_spikes: u64,
    /// Rollbacks to the last good checkpoint.
    pub rollbacks: u64,
    /// Checkpoints committed by this trainer.
    pub checkpoints_written: u64,
}

/// Verdict of the loss-spike sentinel for one observed batch loss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpikeVerdict {
    /// Within the baseline: apply the update.
    Normal,
    /// Spiking: skip the update, keep the baseline.
    Spike,
    /// `patience` consecutive spikes: roll back if a checkpoint exists.
    Rollback,
}

/// Loss-spike detector: a window of recent *healthy* losses is the
/// baseline; a loss above `factor ×` the window median is a spike. Spikes
/// do not enter the baseline (one bad step must not legitimize the next),
/// and `patience` consecutive spikes escalate to a rollback verdict.
#[derive(Clone, Debug)]
pub struct SpikeDetector {
    window: Vec<f32>,
    capacity: usize,
    factor: f32,
    patience: u32,
    consecutive: u32,
}

impl SpikeDetector {
    pub fn new(capacity: usize, factor: f32, patience: u32) -> Self {
        SpikeDetector { window: Vec::new(), capacity, factor, patience, consecutive: 0 }
    }

    /// Restores a detector snapshot (checkpoint resume).
    pub fn restore(
        capacity: usize,
        factor: f32,
        patience: u32,
        window: Vec<f32>,
        consecutive: u32,
    ) -> Self {
        let mut d = SpikeDetector { window, capacity, factor, patience, consecutive };
        d.window.truncate(capacity.max(1));
        d
    }

    pub fn window(&self) -> &[f32] {
        &self.window
    }

    pub fn consecutive(&self) -> u32 {
        self.consecutive
    }

    /// Classifies `loss` against the baseline and updates detector state.
    /// Detection is armed only once the window is full; capacity 0
    /// disables the detector entirely.
    pub fn observe(&mut self, loss: f32) -> SpikeVerdict {
        if self.capacity == 0 {
            return SpikeVerdict::Normal;
        }
        if self.window.len() == self.capacity && loss > self.factor * self.median() {
            self.consecutive += 1;
            return if self.consecutive >= self.patience.max(1) {
                SpikeVerdict::Rollback
            } else {
                SpikeVerdict::Spike
            };
        }
        self.consecutive = 0;
        self.window.push(loss);
        if self.window.len() > self.capacity {
            self.window.remove(0);
        }
        SpikeVerdict::Normal
    }

    /// Adopts the new loss level as baseline (rollback budget exhausted):
    /// clears history so detection re-arms on post-spike data.
    pub fn rebaseline(&mut self) {
        self.window.clear();
        self.consecutive = 0;
    }

    fn median(&self) -> f32 {
        let mut sorted = self.window.clone();
        sorted.sort_by(f32::total_cmp);
        sorted[sorted.len() / 2]
    }
}

/// The Algorithm 1 trainer.
///
/// Beyond the optimization loop itself, the trainer owns the crash-safety
/// machinery: it accumulates the [`TrainingCurve`] across `train` calls,
/// counts sentinel events, and (when a [`CheckpointStore`] is attached)
/// periodically commits its **full** state — weights, Adam moments, Noam
/// position, shuffle-RNG state, warm-up mode, curve and counters — so
/// [`CyclicTrainer::resume`] continues bit-for-bit where a killed run
/// stopped.
pub struct CyclicTrainer {
    config: TrainConfig,
    adam: Adam,
    schedule: NoamSchedule,
    rng: StdRng,
    step: u64,
    d_model: usize,
    curve: TrainingCurve,
    health: TrainHealthReport,
    spikes: SpikeDetector,
    store: Option<CheckpointStore>,
    tracer: Option<Tracer>,
}

impl CyclicTrainer {
    pub fn new(config: TrainConfig, d_model: usize) -> Self {
        let schedule = NoamSchedule::new(config.lr_factor, d_model, config.noam_warmup);
        CyclicTrainer {
            adam: Adam::new(AdamConfig { lr: 0.05, ..Default::default() }),
            rng: StdRng::seed_from_u64(config.seed),
            spikes: SpikeDetector::new(config.spike_window, config.spike_factor, config.spike_patience),
            schedule,
            config,
            step: 0,
            d_model,
            curve: TrainingCurve::default(),
            health: TrainHealthReport::default(),
            store: None,
            tracer: None,
        }
    }

    /// Attaches a checkpoint store (enables periodic checkpoints, the
    /// rollback sentinel, and [`CyclicTrainer::save_checkpoint`]).
    pub fn with_checkpoints(mut self, store: CheckpointStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Attaches a span tracer: each training step records a `step` span
    /// (trace id = step number) with per-example `forward`/`backward`
    /// children, an `opt` span for the optimizer update, `eval` spans,
    /// and `checkpoint` spans for commits.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// The attached span tracer, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// The accumulated training trajectory (across `train` calls and
    /// checkpoint resumes).
    pub fn curve(&self) -> &TrainingCurve {
        &self.curve
    }

    /// Sentinel telemetry for this trainer process.
    pub fn health_report(&self) -> TrainHealthReport {
        self.health
    }

    /// Commits a full-state checkpoint for the current step: the two
    /// models' weights (v2 `QRWT`), the trainer state (`QRWS`), a sealing
    /// manifest, and the `LATEST` pointer — every file through the
    /// atomic temp + fsync + rename path.
    pub fn save_checkpoint(&mut self, model: &JointModel, mode: TrainMode) -> io::Result<()> {
        let store = self.store.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "no checkpoint store attached")
        })?;
        let mut span = self.tracer.as_ref().map(|t| t.span(self.step, None, "checkpoint"));
        let state = TrainerState {
            config: self.config.clone(),
            d_model: self.d_model,
            step: self.step,
            mode,
            rng_state: self.rng.state(),
            adam_steps: self.adam.steps(),
            adam_forward: self.adam.export_moments(model.forward.params()),
            adam_backward: self.adam.export_moments(model.backward.params()),
            curve: self.curve.clone(),
            health: self.health,
            spike_window_vals: self.spikes.window().to_vec(),
            spike_consecutive: self.spikes.consecutive(),
        };
        let members = [
            (FORWARD_FILE, serialize::save(model.forward.params())),
            (BACKWARD_FILE, serialize::save(model.backward.params())),
            (TRAINER_FILE, checkpoint::encode_state(&state)),
        ];
        let result = store.save(self.step, &members);
        if let Some(s) = span.as_mut() {
            s.attr("ok", result.is_ok());
        }
        drop(span);
        result?;
        self.health.checkpoints_written += 1;
        Ok(())
    }

    /// Restores the newest committed-and-valid checkpoint under `dir`
    /// into `model` and rebuilds the trainer exactly as it was: the
    /// continuation is bitwise-identical to the uninterrupted run.
    /// Returns the trainer and the [`TrainMode`] the checkpoint was
    /// training under.
    pub fn resume(
        dir: impl AsRef<Path>,
        model: &JointModel,
    ) -> Result<(CyclicTrainer, TrainMode), ResumeError> {
        Self::resume_with_store(CheckpointStore::new(dir.as_ref()), model)
    }

    /// [`CyclicTrainer::resume`] with an explicit store (custom sink).
    pub fn resume_with_store(
        store: CheckpointStore,
        model: &JointModel,
    ) -> Result<(CyclicTrainer, TrainMode), ResumeError> {
        let state = Self::load_latest_into(&store, model)?;
        let mut trainer = Self::from_state(&state, model)?;
        trainer.store = Some(store);
        Ok((trainer, state.mode))
    }

    /// Loads the newest valid checkpoint's weights into `model` and
    /// returns the decoded trainer state. The model is only mutated after
    /// *both* member files parse, so a failed resume never leaves a
    /// half-restored pair.
    fn load_latest_into(
        store: &CheckpointStore,
        model: &JointModel,
    ) -> Result<TrainerState, ResumeError> {
        let (step, path) = store.latest_valid()?;
        let fwd = std::fs::read(path.join(FORWARD_FILE))?;
        let bwd = std::fs::read(path.join(BACKWARD_FILE))?;
        let state = checkpoint::decode_state(&std::fs::read(path.join(TRAINER_FILE))?)?;
        if state.step != step {
            return Err(ResumeError::State(format!(
                "trainer state step {} does not match checkpoint directory step {step}",
                state.step
            )));
        }
        let fwd_records = serialize::parse(&fwd)?;
        let bwd_records = serialize::parse(&bwd)?;
        drop((fwd_records, bwd_records)); // parsed OK: structural validation done
        serialize::load(model.forward.params(), &fwd)?;
        serialize::load(model.backward.params(), &bwd)?;
        Ok(state)
    }

    /// Rebuilds a trainer from decoded state + restored model weights.
    fn from_state(state: &TrainerState, model: &JointModel) -> Result<CyclicTrainer, ResumeError> {
        let mut adam = Adam::new(AdamConfig { lr: 0.05, ..Default::default() });
        adam.set_steps(state.adam_steps);
        adam.import_moments(model.forward.params(), &state.adam_forward)
            .map_err(ResumeError::State)?;
        adam.import_moments(model.backward.params(), &state.adam_backward)
            .map_err(ResumeError::State)?;
        let schedule =
            NoamSchedule::new(state.config.lr_factor, state.d_model, state.config.noam_warmup);
        Ok(CyclicTrainer {
            adam,
            schedule,
            rng: StdRng::seed_from_u64(state.rng_state),
            step: state.step,
            d_model: state.d_model,
            curve: state.curve.clone(),
            health: state.health,
            spikes: SpikeDetector::restore(
                state.config.spike_window,
                state.config.spike_factor,
                state.config.spike_patience,
                state.spike_window_vals.clone(),
                state.spike_consecutive,
            ),
            config: state.config.clone(),
            store: None,
            tracer: None,
        })
    }

    /// Rolls this trainer (and `model`) back to the newest valid
    /// checkpoint. Process-level telemetry (health counters) survives the
    /// rollback — it describes this run, not the restored state. Returns
    /// the step rolled back to.
    pub fn rollback_to_last_good(&mut self, model: &JointModel) -> Result<u64, ResumeError> {
        let store = self.store.as_ref().ok_or(ResumeError::NoCheckpoint)?;
        let state = Self::load_latest_into(store, model)?;
        let health = self.health; // keep this process's telemetry
        let restored = Self::from_state(&state, model)?;
        let step = restored.step;
        self.adam = restored.adam;
        self.schedule = restored.schedule;
        self.rng = restored.rng;
        self.step = restored.step;
        self.curve = restored.curve;
        self.spikes = restored.spikes;
        self.spikes.rebaseline();
        self.health = health;
        self.health.rollbacks += 1;
        Ok(step)
    }

    /// Runs Algorithm 1 for `config.steps` *further* steps over `data`
    /// (query→title pairs), evaluating on `eval` every `eval_every` steps
    /// and at the end of the run. Returns the full accumulated curve, so a
    /// resumed run's return value equals the uninterrupted run's.
    ///
    /// `mode == Separate` trains `L_f` and `L_b` only; `Joint` adds the
    /// `λ L_c` term after `warmup_steps`.
    ///
    /// Divergence sentinels guard every step: a non-finite batch loss or
    /// gradient norm skips the optimizer update, and a spiking loss
    /// (per [`SpikeDetector`]) is first skipped, then — after
    /// `spike_patience` consecutive spikes — rolled back to the last good
    /// checkpoint. The rollback budget is `max_rollbacks` per `train`
    /// call (the trainer is deterministic, so unbounded retries of a
    /// genuinely divergent run would livelock); past the budget the
    /// detector re-baselines and training pushes on.
    pub fn train(
        &mut self,
        model: &JointModel,
        data: &[Pair],
        eval: &[Pair],
        mode: TrainMode,
    ) -> TrainingCurve {
        assert!(!data.is_empty(), "training data must be non-empty");
        // Click-weighted sampling distribution over pairs.
        let cum = cumulative_weights(data);
        // Resume-safe loop bound: `config.steps` more steps from wherever
        // this trainer currently stands (0 for a fresh trainer).
        let end = self.step + self.config.steps;
        let mut rollbacks_done = 0u32;
        // Cheap Arc clone so span guards don't hold a borrow of `self`
        // across the loop's mutations.
        let tracer = self.tracer.clone();

        while self.step < end {
            self.step += 1;
            let lr = self.schedule.lr(self.step);
            let cyclic = mode == TrainMode::Joint && self.step > self.config.warmup_steps;
            // One trace per training step (trace id = step number).
            let mut step_span = tracer.as_ref().map(|t| {
                let mut s = t.span(self.step, None, "step");
                s.attr("lr", f64::from(lr));
                s.attr("cyclic", cyclic);
                s
            });
            let step_ids = step_span.as_ref().map(|s| (s.trace(), s.id()));
            let trace_ctx: Option<(&Tracer, u64, u64)> =
                tracer.as_ref().zip(step_ids).map(|(t, (tr, id))| (t, tr, id));

            model.forward.params().zero_grads();
            model.backward.params().zero_grads();

            // Example indices are drawn sequentially (deterministic), then
            // each batch slot gets an independent RNG derived from
            // (seed, step, slot) so serial and parallel execution use the
            // same per-example randomness.
            let indices: Vec<usize> = (0..self.config.batch_size)
                .map(|_| sample_index(&cum, &mut self.rng))
                .collect();
            let step_seed =
                self.config.seed ^ self.step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let config = &self.config;
            let process = |slot: usize, idx: usize| {
                let mut rng =
                    StdRng::seed_from_u64(step_seed.wrapping_add(slot as u64 * 0x51_7cc1));
                example_backward(model, &data[idx], cyclic, config, &mut rng, trace_ctx)
            };
            let losses: Vec<Option<f32>> = if self.config.parallel && self.config.batch_size > 1
            {
                // Gradients accumulate behind each Param's lock; summation
                // order (and thus low-order float bits) depends on thread
                // scheduling — the standard data-parallel trade-off. Losses
                // are collected per join handle, so their slot order (and
                // the batch loss) stays deterministic. A worker panic
                // propagates at join; training is offline, so unlike the
                // serve path it may fail loudly.
                std::thread::scope(|scope| {
                    let handles: Vec<_> = indices
                        .iter()
                        .enumerate()
                        .map(|(slot, &idx)| scope.spawn(move || process(slot, idx)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("training worker panicked"))
                        .collect()
                })
            } else {
                indices.iter().enumerate().map(|(slot, &idx)| process(slot, idx)).collect()
            };

            let scale = 1.0 / self.config.batch_size as f32;
            let batch_loss = losses.iter().flatten().sum::<f32>() * scale;

            if !batch_loss.is_finite() {
                // Sentinel 1: poisoned loss. The gradients are tainted too;
                // drop the whole step.
                self.health.nan_loss_events += 1;
                self.health.skipped_steps += 1;
            } else {
                for params in [model.forward.params(), model.backward.params()] {
                    for p in params {
                        p.scale_grad(scale);
                    }
                }
                let grads_finite = model.forward.params().global_grad_norm().is_finite()
                    && model.backward.params().global_grad_norm().is_finite();
                if !grads_finite {
                    // Sentinel 2: finite loss but non-finite gradients
                    // (overflow in backward).
                    self.health.nan_grad_events += 1;
                    self.health.skipped_steps += 1;
                } else {
                    match self.spikes.observe(batch_loss) {
                        SpikeVerdict::Normal => {
                            let opt_span = trace_ctx
                                .map(|(t, tr, id)| t.span(tr, Some(id), "opt"));
                            for params in [model.forward.params(), model.backward.params()] {
                                params.clip_grad_norm(self.config.grad_clip);
                            }
                            self.adam.step_with_lr(model.forward.params(), lr);
                            self.adam.step_with_lr(model.backward.params(), lr);
                            drop(opt_span);
                        }
                        SpikeVerdict::Spike => {
                            // Sentinel 3: loss spike — skip, keep watching.
                            self.health.loss_spikes += 1;
                            self.health.skipped_steps += 1;
                        }
                        SpikeVerdict::Rollback => {
                            self.health.loss_spikes += 1;
                            let can_roll = self.store.is_some()
                                && rollbacks_done < self.config.max_rollbacks;
                            if can_roll && self.rollback_to_last_good(model).is_ok() {
                                rollbacks_done += 1;
                                // Step counter, RNG, curve, optimizer and
                                // weights are all restored; re-run from
                                // the checkpoint.
                                continue;
                            }
                            // No checkpoint (or budget spent): accept the
                            // new loss level instead of livelocking.
                            self.spikes.rebaseline();
                            self.health.skipped_steps += 1;
                        }
                    }
                }
            }

            if let Some(s) = step_span.as_mut() {
                s.attr("loss", f64::from(batch_loss));
            }
            let at_eval =
                self.config.eval_every > 0 && self.step.is_multiple_of(self.config.eval_every);
            if at_eval || self.step == end {
                let eval_span = trace_ctx.map(|(t, tr, id)| t.span(tr, Some(id), "eval"));
                let point = self.evaluate(model, eval);
                drop(eval_span);
                self.curve.points.push(point);
            }
            // Checkpoint after the eval so a snapshot at an eval step
            // carries its own curve point (resume replays from here).
            if self.store.is_some()
                && self.config.checkpoint_every > 0
                && self.step.is_multiple_of(self.config.checkpoint_every)
            {
                // A failed write (e.g. disk full) must not kill training:
                // the previous good checkpoint stays valid and the next
                // interval retries.
                let _ = self.save_checkpoint(model, mode);
            }
        }
        self.curve.clone()
    }

    /// Computes the Figure 7 metrics on the eval pairs with a fixed RNG so
    /// curve noise comes from the models, not the evaluation.
    pub fn evaluate(&self, model: &JointModel, eval: &[Pair]) -> CurvePoint {
        let mut nll_f = 0.0f64;
        let mut tok_f = 0usize;
        let mut nll_b = 0.0f64;
        let mut tok_b = 0usize;
        let mut lp = 0.0f64;
        let mut acc = 0.0f64;
        let mut n_queries = 0usize;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);
        for pair in eval {
            if pair.src.is_empty() || pair.tgt.is_empty() {
                continue;
            }
            {
                let tape = Tape::new();
                let (nll, count) = model.forward.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut None);
                nll_f += nll.item() as f64;
                tok_f += count;
            }
            {
                let tape = Tape::new();
                let (nll, count) = model.backward.nll_on_tape(&tape, &pair.tgt, &pair.src, &mut None);
                nll_b += nll.item() as f64;
                tok_b += count;
            }
            lp += model
                .translate_back_log_prob(&pair.src, self.config.beam_width, self.config.top_n, &mut rng)
                .max(-1e4) as f64;
            acc += model
                .translate_back_accuracy(&pair.src, self.config.beam_width, self.config.top_n, &mut rng)
                as f64;
            n_queries += 1;
        }
        let nq = n_queries.max(1) as f64;
        CurvePoint {
            step: self.step,
            ppl_q2t: ((nll_f / tok_f.max(1) as f64).exp()) as f32,
            ppl_t2q: ((nll_b / tok_b.max(1) as f64).exp()) as f32,
            log_prob: (lp / nq) as f32,
            accuracy: (acc / nq) as f32,
            skipped_steps: self.health.skipped_steps,
            rollbacks: self.health.rollbacks,
            nan_grad_events: self.health.nan_grad_events,
        }
    }
}

fn train_ctx(rng: &mut StdRng, dropout: f32) -> Option<qrw_nmt::layers::TrainCtx<'_>> {
    if dropout > 0.0 {
        Some(qrw_nmt::layers::TrainCtx { rng, dropout })
    } else {
        None
    }
}

/// One Algorithm 1 example: builds the `L_f + L_b (+ λ L_c)` loss on a
/// fresh tape and flushes gradients into both models' parameters. Safe to
/// run concurrently across batch slots (parameter gradient accumulation
/// is locked per parameter). Returns the example's loss value for the
/// divergence sentinels (`None` for an empty pair, which contributes no
/// gradient).
fn example_backward(
    model: &JointModel,
    pair: &Pair,
    cyclic: bool,
    config: &TrainConfig,
    rng: &mut StdRng,
    trace: Option<(&Tracer, u64, u64)>,
) -> Option<f32> {
    if pair.src.is_empty() || pair.tgt.is_empty() {
        return None;
    }
    let tape = Tape::new();
    let forward_span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "forward"));
    let (nll_f, _) = {
        let mut ctx = train_ctx(rng, model.forward.config().dropout);
        model.forward.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut ctx)
    };
    let (nll_b, _) = {
        let mut ctx = train_ctx(rng, model.backward.config().dropout);
        model.backward.nll_on_tape(&tape, &pair.tgt, &pair.src, &mut ctx)
    };
    let mut loss = nll_f.add(nll_b);
    if cyclic {
        let titles = model.sample_titles(&pair.src, config.beam_width, config.top_n, rng);
        if !titles.is_empty() {
            let lc = model.cyclic_log_likelihood(&tape, &pair.src, &titles);
            loss = loss.add(lc.scale(-config.lambda));
        }
    }
    let value = loss.item();
    drop(forward_span);
    let backward_span = trace.map(|(t, tr, parent)| t.span(tr, Some(parent), "backward"));
    tape.backward(loss);
    drop(backward_span);
    Some(value)
}

fn cumulative_weights(data: &[Pair]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(data.len());
    let mut total = 0.0f64;
    for p in data {
        total += f64::from(p.weight.max(1));
        cum.push(total);
    }
    cum
}

fn sample_index(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty data");
    let draw = rng.gen::<f64>() * total;
    match cum.binary_search_by(|x| x.total_cmp(&draw)) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::ModelConfig;

    fn tiny_pairs() -> Vec<Pair> {
        // A 3-pattern toy language: query [10, cat] -> title [20, cat, 21].
        let mut pairs = Vec::new();
        for cat in 4..8usize {
            pairs.push(Pair { src: vec![10, cat], tgt: vec![20, cat, 21], weight: 3 });
            pairs.push(Pair { src: vec![11, cat], tgt: vec![20, cat, 22], weight: 2 });
        }
        pairs
    }

    fn tiny_joint(seed: u64) -> JointModel {
        let cfg = ModelConfig::tiny_transformer(24);
        JointModel::new(Seq2Seq::new(cfg.clone(), seed), Seq2Seq::new(cfg, seed + 1))
    }

    #[test]
    fn cyclic_log_likelihood_is_finite_scalar() {
        let m = tiny_joint(1);
        let tape = Tape::new();
        let lc = m.cyclic_log_likelihood(&tape, &[10, 5], &[vec![20, 5, 21], vec![20, 5, 22]]);
        assert_eq!(lc.shape(), (1, 1));
        assert!(lc.item().is_finite());
        assert!(lc.item() < 0.0);
    }

    #[test]
    fn cyclic_backward_reaches_both_models() {
        let m = tiny_joint(2);
        m.forward.params().zero_grads();
        m.backward.params().zero_grads();
        let tape = Tape::new();
        let lc = m.cyclic_log_likelihood(&tape, &[10, 5], &[vec![20, 5, 21]]);
        tape.backward(lc.scale(-1.0));
        assert!(m.forward.params().global_grad_norm() > 0.0);
        assert!(m.backward.params().global_grad_norm() > 0.0);
    }

    #[test]
    fn training_improves_both_perplexities() {
        let m = tiny_joint(3);
        let data = tiny_pairs();
        let cfg = TrainConfig {
            steps: 60,
            warmup_steps: 40,
            batch_size: 4,
            eval_every: 0,
            top_n: 4,
            lr_factor: 0.4,
            noam_warmup: 20,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, 32);
        let before = trainer.evaluate(&m, &data);
        let curve = trainer.train(&m, &data, &data, TrainMode::Joint);
        let after = curve.last().unwrap();
        assert!(after.ppl_q2t < before.ppl_q2t, "{} -> {}", before.ppl_q2t, after.ppl_q2t);
        assert!(after.ppl_t2q < before.ppl_t2q, "{} -> {}", before.ppl_t2q, after.ppl_t2q);
        assert!(after.log_prob > before.log_prob);
    }

    #[test]
    fn trainer_is_deterministic() {
        let run = || {
            let m = tiny_joint(4);
            let cfg = TrainConfig {
                steps: 10,
                warmup_steps: 5,
                batch_size: 2,
                eval_every: 0,
                top_n: 4,
                ..Default::default()
            };
            let mut t = CyclicTrainer::new(cfg, 32);
            let curve = t.train(&m, &tiny_pairs(), &tiny_pairs()[..2], TrainMode::Joint);
            curve.last().unwrap().ppl_q2t
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn separate_mode_never_uses_cyclic_term() {
        // Indistinguishable from joint during warm-up; after warm-up the
        // runs diverge. Check separate == separate and separate != joint.
        let run = |mode: TrainMode| {
            let m = tiny_joint(5);
            let cfg = TrainConfig {
                steps: 20,
                warmup_steps: 5,
                batch_size: 2,
                eval_every: 0,
                top_n: 4,
                ..Default::default()
            };
            let mut t = CyclicTrainer::new(cfg, 32);
            let curve = t.train(&m, &tiny_pairs(), &tiny_pairs()[..2], mode);
            curve.last().unwrap().ppl_q2t
        };
        assert_eq!(run(TrainMode::Separate), run(TrainMode::Separate));
        assert_ne!(run(TrainMode::Separate), run(TrainMode::Joint));
    }

    #[test]
    fn parallel_training_improves_metrics_too() {
        let m = tiny_joint(7);
        let data = tiny_pairs();
        let cfg = TrainConfig {
            steps: 40,
            warmup_steps: 25,
            batch_size: 4,
            eval_every: 0,
            top_n: 4,
            parallel: true,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, 32);
        let before = trainer.evaluate(&m, &data);
        let curve = trainer.train(&m, &data, &data, TrainMode::Joint);
        let after = curve.last().unwrap();
        assert!(after.ppl_q2t < before.ppl_q2t, "{} -> {}", before.ppl_q2t, after.ppl_q2t);
        assert!(after.ppl_q2t.is_finite());
    }

    #[test]
    fn translate_back_metrics_bounded() {
        let m = tiny_joint(6);
        let mut rng = StdRng::seed_from_u64(1);
        let acc = m.translate_back_accuracy(&[10, 5], 2, 4, &mut rng);
        assert!((0.0..=1.0).contains(&acc));
        let lp = m.translate_back_log_prob(&[10, 5], 2, 4, &mut rng);
        assert!(lp < 0.0);
    }

    #[test]
    fn spike_detector_arms_only_on_full_window() {
        let mut d = SpikeDetector::new(3, 2.0, 2);
        // Below capacity nothing is a spike, even a huge loss.
        assert_eq!(d.observe(1.0), SpikeVerdict::Normal);
        assert_eq!(d.observe(100.0), SpikeVerdict::Normal);
        assert_eq!(d.observe(1.0), SpikeVerdict::Normal);
        // Window now [1, 100, 1], median 1: 5.0 > 2×1 is a spike.
        assert_eq!(d.observe(5.0), SpikeVerdict::Spike);
        assert_eq!(d.consecutive(), 1);
        // Second consecutive spike reaches patience → rollback verdict.
        assert_eq!(d.observe(5.0), SpikeVerdict::Rollback);
        // A healthy loss resets the streak and joins the baseline.
        assert_eq!(d.observe(1.5), SpikeVerdict::Normal);
        assert_eq!(d.consecutive(), 0);
    }

    #[test]
    fn spike_detector_baseline_excludes_spikes_and_rebaseline_rearms() {
        let mut d = SpikeDetector::new(2, 2.0, 1);
        assert_eq!(d.observe(1.0), SpikeVerdict::Normal);
        assert_eq!(d.observe(1.0), SpikeVerdict::Normal);
        // Patience 1: first spike escalates straight to rollback, and the
        // spiking value must NOT have entered the window.
        assert_eq!(d.observe(10.0), SpikeVerdict::Rollback);
        assert_eq!(d.window(), &[1.0, 1.0]);
        // After rebaseline the detector re-learns from scratch: the same
        // high loss is now just data.
        d.rebaseline();
        assert_eq!(d.observe(10.0), SpikeVerdict::Normal);
        assert_eq!(d.window(), &[10.0]);
    }

    #[test]
    fn spike_detector_zero_capacity_disables_detection() {
        let mut d = SpikeDetector::new(0, 2.0, 1);
        for x in [1.0, 1e9, f32::MAX] {
            assert_eq!(d.observe(x), SpikeVerdict::Normal);
        }
    }

    #[test]
    fn spike_detector_restore_resumes_mid_streak() {
        let mut a = SpikeDetector::new(3, 2.0, 3);
        for x in [1.0, 1.0, 1.0, 9.0] {
            a.observe(x);
        }
        let mut b =
            SpikeDetector::restore(3, 2.0, 3, a.window().to_vec(), a.consecutive());
        // Identical verdicts from here on — the streak continues where it
        // left off (second spike), then escalates at the third.
        assert_eq!(a.observe(9.0), b.observe(9.0));
        assert_eq!(a.observe(9.0), SpikeVerdict::Rollback);
        assert_eq!(b.observe(9.0), SpikeVerdict::Rollback);
    }

    #[test]
    fn nan_poisoned_weights_skip_every_step_without_updates() {
        let m = tiny_joint(8);
        // Poison one forward parameter: every loss becomes non-finite.
        let p = m.forward.params().iter().next().unwrap();
        let (r, c) = p.shape();
        p.set_value(qrw_tensor::Tensor::from_vec(r, c, vec![f32::NAN; r * c]));
        let cfg = TrainConfig {
            steps: 3,
            warmup_steps: 10,
            batch_size: 2,
            eval_every: 0,
            top_n: 4,
            ..Default::default()
        };
        let mut t = CyclicTrainer::new(cfg, 32);
        let backward_before = serialize::save(m.backward.params());
        let curve = t.train(&m, &tiny_pairs(), &tiny_pairs()[..1], TrainMode::Separate);
        let h = t.health_report();
        assert_eq!(h.nan_loss_events, 3);
        assert_eq!(h.skipped_steps, 3);
        // The sentinel counters ride along on the curve points.
        assert_eq!(curve.last().unwrap().skipped_steps, 3);
        // No optimizer update ever ran: the healthy model is untouched.
        assert_eq!(serialize::save(m.backward.params()), backward_before);
    }

    #[test]
    fn curve_accumulates_across_train_calls_with_resumed_step_numbers() {
        let m = tiny_joint(9);
        let cfg = TrainConfig {
            steps: 4,
            warmup_steps: 10,
            batch_size: 2,
            eval_every: 2,
            top_n: 4,
            ..Default::default()
        };
        let mut t = CyclicTrainer::new(cfg, 32);
        let first = t.train(&m, &tiny_pairs(), &tiny_pairs()[..1], TrainMode::Separate);
        assert_eq!(first.points.iter().map(|p| p.step).collect::<Vec<_>>(), vec![2, 4]);
        // A second call continues at step 5, not back at 1, and returns
        // the full accumulated trajectory.
        let second = t.train(&m, &tiny_pairs(), &tiny_pairs()[..1], TrainMode::Separate);
        assert_eq!(
            second.points.iter().map(|p| p.step).collect::<Vec<_>>(),
            vec![2, 4, 6, 8]
        );
        assert_eq!(t.curve().points.len(), 4);
        assert_eq!(t.step_count(), 8);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_pairs() {
        let data = vec![
            Pair { src: vec![4], tgt: vec![5], weight: 100 },
            Pair { src: vec![6], tgt: vec![7], weight: 1 },
        ];
        let cum = cumulative_weights(&data);
        let mut rng = StdRng::seed_from_u64(8);
        let picks: Vec<usize> = (0..200).map(|_| sample_index(&cum, &mut rng)).collect();
        let zeros = picks.iter().filter(|&&i| i == 0).count();
        assert!(zeros > 150, "heavy pair picked only {zeros}/200 times");
    }
}
