//! Cyclic-consistent joint training — the paper's §III-C/§III-D and
//! Algorithm 1.
//!
//! Two translation models are trained on click-log pairs: the forward
//! (query→title) model maximizes `L_f`, the backward (title→query) model
//! `L_b`. After `G` warm-up steps the **cycle-consistency likelihood**
//!
//! ```text
//! L_c = Σ_n log Σ_{ŷ ∈ Ỹ} P(ŷ | x_n; θ_f) · P(x_n | ŷ; θ_b)
//! ```
//!
//! joins the objective with weight `λ`, where `Ỹ` is a top-k set of
//! synthetic titles sampled from the forward model with the top-n sampling
//! decoder (the tractable approximation of Eq. 4/5). Because both models'
//! log-likelihoods are nodes of one autodiff tape, the log-sum-exp couples
//! them and one backward pass produces the Eq. 5 gradients for both
//! parameter sets.

use qrw_tensor::rng::StdRng;

use qrw_nmt::{top_n_sampling, Seq2Seq, TopNSampling};
use qrw_tensor::optim::{Adam, AdamConfig, NoamSchedule};
use qrw_tensor::{Tape, Var};
use qrw_data::Pair;

use crate::config::TrainConfig;

/// The forward (query→title) and backward (title→query) models.
pub struct JointModel {
    pub forward: Seq2Seq,
    pub backward: Seq2Seq,
}

impl JointModel {
    pub fn new(forward: Seq2Seq, backward: Seq2Seq) -> Self {
        JointModel { forward, backward }
    }

    /// The cycle-consistency log-likelihood `log P(x|x)` for one query,
    /// marginalized over `titles`, as a tape node. Also returns the
    /// per-title path scores `log P(ŷ|x) + log P(x|ŷ)` (values only).
    pub fn cyclic_log_likelihood<'t>(
        &self,
        tape: &'t Tape,
        query: &[usize],
        titles: &[Vec<usize>],
    ) -> Var<'t> {
        assert!(!titles.is_empty(), "cyclic term needs at least one synthetic title");
        let mut paths = Vec::with_capacity(titles.len());
        for title in titles {
            if title.is_empty() {
                continue;
            }
            let (nll_f, _) = self.forward.nll_on_tape(tape, query, title, &mut None);
            let (nll_b, _) = self.backward.nll_on_tape(tape, title, query, &mut None);
            // log P_f + log P_b = -(nll_f + nll_b)
            paths.push(nll_f.add(nll_b).scale(-1.0));
        }
        assert!(!paths.is_empty(), "all synthetic titles were empty");
        Var::log_sum_exp_scalars(&paths)
    }

    /// Samples `k` synthetic titles for `query` from the forward model
    /// (top-n sampling, §III-F), dropping empties.
    pub fn sample_titles(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<usize>> {
        top_n_sampling(&self.forward, query, TopNSampling { k, n }, rng)
            .into_iter()
            .map(|h| h.tokens)
            .filter(|t| !t.is_empty())
            .collect()
    }

    /// Evaluation: `log P(x|x)` marginalized over `k` sampled titles
    /// (the paper's "Log probability" convergence metric).
    pub fn translate_back_log_prob(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let titles = self.sample_titles(query, k, n, rng);
        if titles.is_empty() {
            return f32::NEG_INFINITY;
        }
        let paths: Vec<f32> = titles
            .iter()
            .map(|t| self.forward.log_prob(query, t) + self.backward.log_prob(t, query))
            .collect();
        qrw_tensor::log_sum_exp(&paths)
    }

    /// Evaluation: fraction of positions where the backward model's argmax
    /// over a synthetic title reproduces the original query token (the
    /// paper's "Accuracy" convergence metric).
    pub fn translate_back_accuracy(
        &self,
        query: &[usize],
        k: usize,
        n: usize,
        rng: &mut StdRng,
    ) -> f32 {
        let titles = self.sample_titles(query, k, n, rng);
        if titles.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        let mut total = 0usize;
        for title in &titles {
            let memory = self.backward.encode(title);
            let mut state = self.backward.start_state(&memory);
            let mut prefix = vec![qrw_text::BOS];
            for &tok in query.iter().chain(std::iter::once(&qrw_text::EOS)) {
                let lp = self.backward.next_log_probs(&memory, &mut state, &prefix);
                let argmax = lp
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if argmax == tok {
                    correct += 1;
                }
                total += 1;
                prefix.push(tok);
            }
        }
        correct as f32 / total.max(1) as f32
    }
}

/// One evaluation snapshot along the training trajectory (a Figure 7/8/9
/// curve point).
#[derive(Clone, Copy, Debug)]
pub struct CurvePoint {
    pub step: u64,
    /// Forward (q2t) per-token perplexity on the eval pairs.
    pub ppl_q2t: f32,
    /// Backward (t2q) per-token perplexity on the eval pairs.
    pub ppl_t2q: f32,
    /// Mean translate-back log-probability over eval queries.
    pub log_prob: f32,
    /// Mean translate-back token accuracy over eval queries.
    pub accuracy: f32,
}

/// Full training trajectory.
#[derive(Clone, Debug, Default)]
pub struct TrainingCurve {
    pub points: Vec<CurvePoint>,
}

impl TrainingCurve {
    pub fn last(&self) -> Option<&CurvePoint> {
        self.points.last()
    }
}

/// Whether the cyclic term is used after warm-up (joint) or never
/// (the paper's "separate" ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainMode {
    Separate,
    Joint,
}

/// The Algorithm 1 trainer.
pub struct CyclicTrainer {
    config: TrainConfig,
    adam: Adam,
    schedule: NoamSchedule,
    rng: StdRng,
    step: u64,
}

impl CyclicTrainer {
    pub fn new(config: TrainConfig, d_model: usize) -> Self {
        let schedule = NoamSchedule::new(config.lr_factor, d_model, config.noam_warmup);
        CyclicTrainer {
            adam: Adam::new(AdamConfig { lr: 0.05, ..Default::default() }),
            rng: StdRng::seed_from_u64(config.seed),
            schedule,
            config,
            step: 0,
        }
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Runs Algorithm 1 for `config.steps` steps over `data` (query→title
    /// pairs), evaluating on `eval` every `eval_every` steps.
    ///
    /// `mode == Separate` trains `L_f` and `L_b` only; `Joint` adds the
    /// `λ L_c` term after `warmup_steps`.
    pub fn train(
        &mut self,
        model: &JointModel,
        data: &[Pair],
        eval: &[Pair],
        mode: TrainMode,
    ) -> TrainingCurve {
        assert!(!data.is_empty(), "training data must be non-empty");
        let mut curve = TrainingCurve::default();
        // Click-weighted sampling distribution over pairs.
        let cum = cumulative_weights(data);

        for _ in 0..self.config.steps {
            self.step += 1;
            let lr = self.schedule.lr(self.step);
            let cyclic = mode == TrainMode::Joint && self.step > self.config.warmup_steps;

            model.forward.params().zero_grads();
            model.backward.params().zero_grads();

            // Example indices are drawn sequentially (deterministic), then
            // each batch slot gets an independent RNG derived from
            // (seed, step, slot) so serial and parallel execution use the
            // same per-example randomness.
            let indices: Vec<usize> = (0..self.config.batch_size)
                .map(|_| sample_index(&cum, &mut self.rng))
                .collect();
            let step_seed =
                self.config.seed ^ self.step.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let config = &self.config;
            let process = |slot: usize, idx: usize| {
                let mut rng =
                    StdRng::seed_from_u64(step_seed.wrapping_add(slot as u64 * 0x51_7cc1));
                example_backward(model, &data[idx], cyclic, config, &mut rng);
            };
            if self.config.parallel && self.config.batch_size > 1 {
                // Gradients accumulate behind each Param's lock; summation
                // order (and thus low-order float bits) depends on thread
                // scheduling — the standard data-parallel trade-off. A
                // worker panic propagates when the scope joins; training is
                // offline, so unlike the serve path it may fail loudly.
                std::thread::scope(|scope| {
                    for (slot, &idx) in indices.iter().enumerate() {
                        scope.spawn(move || process(slot, idx));
                    }
                });
            } else {
                for (slot, &idx) in indices.iter().enumerate() {
                    process(slot, idx);
                }
            }

            let scale = 1.0 / self.config.batch_size as f32;
            for params in [model.forward.params(), model.backward.params()] {
                for p in params {
                    p.scale_grad(scale);
                }
                params.clip_grad_norm(self.config.grad_clip);
            }
            self.adam.step_with_lr(model.forward.params(), lr);
            self.adam.step_with_lr(model.backward.params(), lr);

            let at_eval =
                self.config.eval_every > 0 && self.step.is_multiple_of(self.config.eval_every);
            if at_eval || self.step == self.config.steps {
                curve.points.push(self.evaluate(model, eval));
            }
        }
        curve
    }

    /// Computes the Figure 7 metrics on the eval pairs with a fixed RNG so
    /// curve noise comes from the models, not the evaluation.
    pub fn evaluate(&self, model: &JointModel, eval: &[Pair]) -> CurvePoint {
        let mut nll_f = 0.0f64;
        let mut tok_f = 0usize;
        let mut nll_b = 0.0f64;
        let mut tok_b = 0usize;
        let mut lp = 0.0f64;
        let mut acc = 0.0f64;
        let mut n_queries = 0usize;
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);
        for pair in eval {
            if pair.src.is_empty() || pair.tgt.is_empty() {
                continue;
            }
            {
                let tape = Tape::new();
                let (nll, count) = model.forward.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut None);
                nll_f += nll.item() as f64;
                tok_f += count;
            }
            {
                let tape = Tape::new();
                let (nll, count) = model.backward.nll_on_tape(&tape, &pair.tgt, &pair.src, &mut None);
                nll_b += nll.item() as f64;
                tok_b += count;
            }
            lp += model
                .translate_back_log_prob(&pair.src, self.config.beam_width, self.config.top_n, &mut rng)
                .max(-1e4) as f64;
            acc += model
                .translate_back_accuracy(&pair.src, self.config.beam_width, self.config.top_n, &mut rng)
                as f64;
            n_queries += 1;
        }
        let nq = n_queries.max(1) as f64;
        CurvePoint {
            step: self.step,
            ppl_q2t: ((nll_f / tok_f.max(1) as f64).exp()) as f32,
            ppl_t2q: ((nll_b / tok_b.max(1) as f64).exp()) as f32,
            log_prob: (lp / nq) as f32,
            accuracy: (acc / nq) as f32,
        }
    }
}

fn train_ctx(rng: &mut StdRng, dropout: f32) -> Option<qrw_nmt::layers::TrainCtx<'_>> {
    if dropout > 0.0 {
        Some(qrw_nmt::layers::TrainCtx { rng, dropout })
    } else {
        None
    }
}

/// One Algorithm 1 example: builds the `L_f + L_b (+ λ L_c)` loss on a
/// fresh tape and flushes gradients into both models' parameters. Safe to
/// run concurrently across batch slots (parameter gradient accumulation
/// is locked per parameter).
fn example_backward(
    model: &JointModel,
    pair: &Pair,
    cyclic: bool,
    config: &TrainConfig,
    rng: &mut StdRng,
) {
    if pair.src.is_empty() || pair.tgt.is_empty() {
        return;
    }
    let tape = Tape::new();
    let (nll_f, _) = {
        let mut ctx = train_ctx(rng, model.forward.config().dropout);
        model.forward.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut ctx)
    };
    let (nll_b, _) = {
        let mut ctx = train_ctx(rng, model.backward.config().dropout);
        model.backward.nll_on_tape(&tape, &pair.tgt, &pair.src, &mut ctx)
    };
    let mut loss = nll_f.add(nll_b);
    if cyclic {
        let titles = model.sample_titles(&pair.src, config.beam_width, config.top_n, rng);
        if !titles.is_empty() {
            let lc = model.cyclic_log_likelihood(&tape, &pair.src, &titles);
            loss = loss.add(lc.scale(-config.lambda));
        }
    }
    tape.backward(loss);
}

fn cumulative_weights(data: &[Pair]) -> Vec<f64> {
    let mut cum = Vec::with_capacity(data.len());
    let mut total = 0.0f64;
    for p in data {
        total += f64::from(p.weight.max(1));
        cum.push(total);
    }
    cum
}

fn sample_index(cum: &[f64], rng: &mut StdRng) -> usize {
    let total = *cum.last().expect("non-empty data");
    let draw = rng.gen::<f64>() * total;
    match cum.binary_search_by(|x| x.total_cmp(&draw)) {
        Ok(i) | Err(i) => i.min(cum.len() - 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::ModelConfig;

    fn tiny_pairs() -> Vec<Pair> {
        // A 3-pattern toy language: query [10, cat] -> title [20, cat, 21].
        let mut pairs = Vec::new();
        for cat in 4..8usize {
            pairs.push(Pair { src: vec![10, cat], tgt: vec![20, cat, 21], weight: 3 });
            pairs.push(Pair { src: vec![11, cat], tgt: vec![20, cat, 22], weight: 2 });
        }
        pairs
    }

    fn tiny_joint(seed: u64) -> JointModel {
        let cfg = ModelConfig::tiny_transformer(24);
        JointModel::new(Seq2Seq::new(cfg.clone(), seed), Seq2Seq::new(cfg, seed + 1))
    }

    #[test]
    fn cyclic_log_likelihood_is_finite_scalar() {
        let m = tiny_joint(1);
        let tape = Tape::new();
        let lc = m.cyclic_log_likelihood(&tape, &[10, 5], &[vec![20, 5, 21], vec![20, 5, 22]]);
        assert_eq!(lc.shape(), (1, 1));
        assert!(lc.item().is_finite());
        assert!(lc.item() < 0.0);
    }

    #[test]
    fn cyclic_backward_reaches_both_models() {
        let m = tiny_joint(2);
        m.forward.params().zero_grads();
        m.backward.params().zero_grads();
        let tape = Tape::new();
        let lc = m.cyclic_log_likelihood(&tape, &[10, 5], &[vec![20, 5, 21]]);
        tape.backward(lc.scale(-1.0));
        assert!(m.forward.params().global_grad_norm() > 0.0);
        assert!(m.backward.params().global_grad_norm() > 0.0);
    }

    #[test]
    fn training_improves_both_perplexities() {
        let m = tiny_joint(3);
        let data = tiny_pairs();
        let cfg = TrainConfig {
            steps: 60,
            warmup_steps: 40,
            batch_size: 4,
            eval_every: 0,
            top_n: 4,
            lr_factor: 0.4,
            noam_warmup: 20,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, 32);
        let before = trainer.evaluate(&m, &data);
        let curve = trainer.train(&m, &data, &data, TrainMode::Joint);
        let after = curve.last().unwrap();
        assert!(after.ppl_q2t < before.ppl_q2t, "{} -> {}", before.ppl_q2t, after.ppl_q2t);
        assert!(after.ppl_t2q < before.ppl_t2q, "{} -> {}", before.ppl_t2q, after.ppl_t2q);
        assert!(after.log_prob > before.log_prob);
    }

    #[test]
    fn trainer_is_deterministic() {
        let run = || {
            let m = tiny_joint(4);
            let cfg = TrainConfig {
                steps: 10,
                warmup_steps: 5,
                batch_size: 2,
                eval_every: 0,
                top_n: 4,
                ..Default::default()
            };
            let mut t = CyclicTrainer::new(cfg, 32);
            let curve = t.train(&m, &tiny_pairs(), &tiny_pairs()[..2], TrainMode::Joint);
            curve.last().unwrap().ppl_q2t
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn separate_mode_never_uses_cyclic_term() {
        // Indistinguishable from joint during warm-up; after warm-up the
        // runs diverge. Check separate == separate and separate != joint.
        let run = |mode: TrainMode| {
            let m = tiny_joint(5);
            let cfg = TrainConfig {
                steps: 20,
                warmup_steps: 5,
                batch_size: 2,
                eval_every: 0,
                top_n: 4,
                ..Default::default()
            };
            let mut t = CyclicTrainer::new(cfg, 32);
            let curve = t.train(&m, &tiny_pairs(), &tiny_pairs()[..2], mode);
            curve.last().unwrap().ppl_q2t
        };
        assert_eq!(run(TrainMode::Separate), run(TrainMode::Separate));
        assert_ne!(run(TrainMode::Separate), run(TrainMode::Joint));
    }

    #[test]
    fn parallel_training_improves_metrics_too() {
        let m = tiny_joint(7);
        let data = tiny_pairs();
        let cfg = TrainConfig {
            steps: 40,
            warmup_steps: 25,
            batch_size: 4,
            eval_every: 0,
            top_n: 4,
            parallel: true,
            ..Default::default()
        };
        let mut trainer = CyclicTrainer::new(cfg, 32);
        let before = trainer.evaluate(&m, &data);
        let curve = trainer.train(&m, &data, &data, TrainMode::Joint);
        let after = curve.last().unwrap();
        assert!(after.ppl_q2t < before.ppl_q2t, "{} -> {}", before.ppl_q2t, after.ppl_q2t);
        assert!(after.ppl_q2t.is_finite());
    }

    #[test]
    fn translate_back_metrics_bounded() {
        let m = tiny_joint(6);
        let mut rng = StdRng::seed_from_u64(1);
        let acc = m.translate_back_accuracy(&[10, 5], 2, 4, &mut rng);
        assert!((0.0..=1.0).contains(&acc));
        let lp = m.translate_back_log_prob(&[10, 5], 2, 4, &mut rng);
        assert!(lp < 0.0);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_pairs() {
        let data = vec![
            Pair { src: vec![4], tgt: vec![5], weight: 100 },
            Pair { src: vec![6], tgt: vec![7], weight: 1 },
        ];
        let cum = cumulative_weights(&data);
        let mut rng = StdRng::seed_from_u64(8);
        let picks: Vec<usize> = (0..200).map(|_| sample_index(&cum, &mut rng)).collect();
        let zeros = picks.iter().filter(|&&i| i == 0).count();
        assert!(zeros > 150, "heavy pair picked only {zeros}/200 times");
    }
}
