//! Training configuration for the cyclic-consistent rewriting system and
//! the Table II hyper-parameter record.

use qrw_nmt::ModelConfig;

/// Configuration of Algorithm 1 and the paper's §IV-A optimizer setup.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainConfig {
    /// Total optimization steps (`T`).
    pub steps: u64,
    /// Warm-up steps before the cyclic term activates (`G`; paper: 40 000).
    pub warmup_steps: u64,
    /// Batch size (`B`).
    pub batch_size: usize,
    /// Synthetic titles sampled per query (`k`, the paper's beam width 3).
    pub beam_width: usize,
    /// Top-n sampling pool (`n`; paper: 40).
    pub top_n: usize,
    /// Cyclic-consistency weight (`λ`; paper: 0.1).
    pub lambda: f32,
    /// Noam schedule factor (paper's base learning rate 0.05).
    pub lr_factor: f32,
    /// Noam schedule warm-up steps.
    pub noam_warmup: u64,
    /// Global gradient-norm clip.
    pub grad_clip: f32,
    /// Evaluate metrics every this many steps (0 = only at the end).
    pub eval_every: u64,
    /// RNG seed for batching / sampling / dropout.
    pub seed: u64,
    /// Compute the batch's per-example backward passes on worker threads
    /// (std scoped threads). Per-example randomness is identical to serial
    /// mode, but gradient summation order — and thus low-order float bits
    /// — depends on scheduling.
    pub parallel: bool,
    /// Divergence sentinel: healthy-loss window used as the spike
    /// baseline (0 disables spike detection; non-finite loss/grad
    /// detection is always on).
    pub spike_window: usize,
    /// A step whose batch loss exceeds `spike_factor ×` the window median
    /// counts as a loss spike and is skipped.
    pub spike_factor: f32,
    /// Consecutive spikes before the trainer rolls back to the last good
    /// checkpoint (when a checkpoint store is attached).
    pub spike_patience: u32,
    /// Rollbacks allowed per training run. A deterministic trainer
    /// replays the same batches after a rollback, so an unbounded retry
    /// would livelock on a genuinely divergent configuration; once the
    /// budget is spent the sentinel re-baselines and training continues.
    pub max_rollbacks: u32,
    /// Write a full-state checkpoint every this many steps (0 = only
    /// explicit [`CyclicTrainer::save_checkpoint`] calls). Requires an
    /// attached checkpoint store.
    pub checkpoint_every: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            steps: 300,
            warmup_steps: 150,
            batch_size: 8,
            beam_width: 3,
            top_n: 8,
            lambda: 0.1,
            lr_factor: 0.6,
            noam_warmup: 60,
            grad_clip: 5.0,
            eval_every: 25,
            seed: 97,
            parallel: false,
            spike_window: 8,
            spike_factor: 4.0,
            spike_patience: 3,
            max_rollbacks: 2,
            checkpoint_every: 0,
        }
    }
}

impl TrainConfig {
    /// A very small budget for unit tests.
    pub fn smoke() -> Self {
        TrainConfig {
            steps: 30,
            warmup_steps: 15,
            batch_size: 4,
            ..Default::default()
        }
    }
}

/// The Table II record: hyper-parameters of the two translation models,
/// paper values side by side with this reproduction's scaled values.
#[derive(Clone, Debug)]
pub struct HyperparamTable {
    pub forward: ModelConfig,
    pub backward: ModelConfig,
}

impl HyperparamTable {
    pub fn new(forward: ModelConfig, backward: ModelConfig) -> Self {
        HyperparamTable { forward, backward }
    }
}

impl std::fmt::Display for HyperparamTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<34} {:>14} {:>14}", "", "Query-to-title", "Title-to-query")?;
        writeln!(
            f,
            "{:<34} {:>14} {:>14}",
            "# Transformer Layer (paper: 4/1)", self.forward.enc_layers, self.backward.enc_layers
        )?;
        writeln!(
            f,
            "{:<34} {:>14} {:>14}",
            "# Head (paper: 8)", self.forward.heads, self.backward.heads
        )?;
        writeln!(
            f,
            "{:<34} {:>14} {:>14}",
            "Hidden Units of FF (paper: 1024)", self.forward.d_ff, self.backward.d_ff
        )?;
        writeln!(
            f,
            "{:<34} {:>14} {:>14}",
            "Embedding Dim (paper: 512)", self.forward.d_model, self.backward.d_model
        )?;
        write!(
            f,
            "{:<34} {:>14} {:>14}",
            "Dropout Rate (paper: 0.1)", self.forward.dropout, self.backward.dropout
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_ratios() {
        let c = TrainConfig::default();
        assert_eq!(c.beam_width, 3);
        assert!((c.lambda - 0.1).abs() < 1e-9);
        assert!(c.warmup_steps < c.steps);
    }

    #[test]
    fn table2_display_lists_both_models() {
        let t = HyperparamTable::new(
            ModelConfig::forward_q2t(100),
            ModelConfig::backward_t2q(100),
        );
        let s = t.to_string();
        assert!(s.contains("Query-to-title"));
        assert!(s.contains("Title-to-query"));
        assert!(s.contains("Dropout"));
    }
}
