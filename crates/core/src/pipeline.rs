//! The two-stage inference pipeline of §III-E (Figure 3).
//!
//! Given a query `x`: sample `k` synthetic titles `ŷ_t ~ P(·|x; θ_f)` with
//! the top-n sampling decoder, sample `k` synthetic queries from each title
//! with the backward model (a candidate pool of up to `k²`), then rank
//! every candidate `x'` by the marginalized translate-back probability
//!
//! ```text
//! P(x' | x) = Σ_t P(ŷ_t | x; θ_f) · P(x' | ŷ_t; θ_b)
//! ```
//!
//! computed in log space with log-sum-exp. The original query itself is
//! excluded (`x' ≠ x`).

use std::cell::RefCell;

use qrw_tensor::rng::StdRng;

use qrw_nmt::{top_n_sampling, DecodeStats, TopNSampling};
use qrw_text::Vocab;

use crate::cyclic::JointModel;

/// Any system that rewrites a tokenized query into up to `k` alternatives.
///
/// Implemented by the neural pipeline, the direct q2q serving model and
/// the rule-based baseline, so evaluation harnesses treat them uniformly.
pub trait QueryRewriter {
    /// Up to `k` rewrites (token sequences), best first. Never includes
    /// the original query itself.
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>>;

    /// Up to `k` rewrites conditioned on the user's previous in-session
    /// queries (oldest first). The default ignores the context and
    /// delegates to [`rewrite`](Self::rewrite), so every existing rewriter
    /// is trivially context-capable and the context-off serving path is
    /// byte-identical to single-shot serving. Session-aware models (the
    /// online crate's context-prefix q2q) override this.
    fn rewrite_with_context(
        &self,
        context: &[Vec<String>],
        query: &[String],
        k: usize,
    ) -> Vec<Vec<String>> {
        let _ = context;
        self.rewrite(query, k)
    }

    /// Human-readable name for report tables.
    fn name(&self) -> &str;

    /// Cumulative decode telemetry of the underlying model(s), if this
    /// rewriter decodes neurally. Serving layers diff two snapshots around
    /// a call to report decode throughput next to fault counters.
    fn decode_stats(&self) -> Option<DecodeStats> {
        None
    }
}

/// A ranked rewrite with its provenance.
#[derive(Clone, Debug)]
pub struct ScoredRewrite {
    pub ids: Vec<usize>,
    pub tokens: Vec<String>,
    /// `log P(x'|x)` marginalized over the sampled titles.
    pub log_prob: f32,
    /// The synthetic title contributing the largest share of the score
    /// (the middle column of Tables III/IV).
    pub via_title: Vec<String>,
}

/// The neural rewrite pipeline over a trained [`JointModel`].
pub struct RewritePipeline<'m> {
    model: &'m JointModel,
    vocab: &'m Vocab,
    /// Candidates per stage (`k`; paper: 3).
    pub k: usize,
    /// Sampling pool (`n`; paper: 40).
    pub top_n: usize,
    rng: RefCell<StdRng>,
    name: String,
}

impl<'m> RewritePipeline<'m> {
    pub fn new(model: &'m JointModel, vocab: &'m Vocab, k: usize, top_n: usize, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        RewritePipeline {
            model,
            vocab,
            k,
            top_n,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            name: "neural-pipeline".to_string(),
        }
    }

    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Full pipeline on raw token ids. Returns up to `k` rewrites sorted
    /// by descending marginal probability.
    pub fn rewrite_ids(&self, query: &[usize]) -> Vec<ScoredRewrite> {
        if query.is_empty() {
            return Vec::new();
        }
        let rng = &mut *self.rng.borrow_mut();
        let sampling = TopNSampling { k: self.k, n: self.top_n };

        // Stage 1: k synthetic titles with forward-model scores.
        let titles: Vec<(Vec<usize>, f32)> = top_n_sampling(&self.model.forward, query, sampling, rng)
            .into_iter()
            .filter(|h| !h.tokens.is_empty())
            .map(|h| (h.tokens, h.log_prob))
            .collect();
        if titles.is_empty() {
            return Vec::new();
        }

        // Stage 2: k synthetic queries per title -> up to k^2 candidates.
        let mut candidates: Vec<Vec<usize>> = Vec::new();
        for (title, _) in &titles {
            for hyp in top_n_sampling(&self.model.backward, title, sampling, rng) {
                if hyp.tokens.is_empty() || hyp.tokens == query {
                    continue;
                }
                if !candidates.contains(&hyp.tokens) {
                    candidates.push(hyp.tokens);
                }
            }
        }

        // Stage 3: marginalized rescoring over all sampled titles.
        let mut scored: Vec<ScoredRewrite> = candidates
            .into_iter()
            .map(|cand| {
                let paths: Vec<f32> = titles
                    .iter()
                    .map(|(title, lf)| lf + self.model.backward.log_prob(title, &cand))
                    .collect();
                let log_prob = qrw_tensor::log_sum_exp(&paths);
                let best_title = paths
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| titles[i].0.clone())
                    .unwrap_or_default();
                ScoredRewrite {
                    tokens: ids_to_tokens(self.vocab, &cand),
                    via_title: ids_to_tokens(self.vocab, &best_title),
                    ids: cand,
                    log_prob,
                }
            })
            .collect();
        scored.sort_by(|a, b| b.log_prob.total_cmp(&a.log_prob));
        scored.truncate(self.k);
        scored
    }
}

fn ids_to_tokens(vocab: &Vocab, ids: &[usize]) -> Vec<String> {
    ids.iter()
        .filter(|&&id| id >= qrw_text::NUM_SPECIALS)
        .map(|&id| vocab.token(id).to_string())
        .collect()
}

impl QueryRewriter for RewritePipeline<'_> {
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>> {
        let ids = self.vocab.encode(query);
        self.rewrite_ids(&ids)
            .into_iter()
            .take(k)
            .map(|r| r.tokens)
            .filter(|t| t != query)
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn decode_stats(&self) -> Option<DecodeStats> {
        let f = self.model.forward.decode_stats();
        let b = self.model.backward.decode_stats();
        Some(DecodeStats {
            steps: f.steps + b.steps,
            tokens: f.tokens + b.tokens,
            cache_hits: f.cache_hits + b.cache_hits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::{ModelConfig, Seq2Seq};
    use qrw_text::Vocab;

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        for i in 0..20 {
            v.insert(&format!("w{i}"));
        }
        v
    }

    fn joint() -> JointModel {
        let cfg = ModelConfig::tiny_transformer(24);
        JointModel::new(Seq2Seq::new(cfg.clone(), 11), Seq2Seq::new(cfg, 12))
    }

    #[test]
    fn rewrites_exclude_original_and_are_sorted() {
        let v = vocab();
        let m = joint();
        let p = RewritePipeline::new(&m, &v, 3, 6, 1);
        let query = vec![5usize, 6];
        let rewrites = p.rewrite_ids(&query);
        assert!(rewrites.len() <= 3);
        for r in &rewrites {
            assert_ne!(r.ids, query);
            assert!(r.log_prob.is_finite());
        }
        for w in rewrites.windows(2) {
            assert!(w[0].log_prob >= w[1].log_prob);
        }
    }

    #[test]
    fn rewrites_are_deduplicated() {
        let v = vocab();
        let m = joint();
        let p = RewritePipeline::new(&m, &v, 3, 6, 2);
        let rewrites = p.rewrite_ids(&[5, 6, 7]);
        let mut ids: Vec<&Vec<usize>> = rewrites.iter().map(|r| &r.ids).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn via_title_is_one_of_the_sampled_titles() {
        let v = vocab();
        let m = joint();
        let p = RewritePipeline::new(&m, &v, 2, 6, 3);
        for r in p.rewrite_ids(&[5, 6]) {
            assert!(!r.via_title.is_empty());
        }
    }

    #[test]
    fn trait_interface_roundtrips_tokens() {
        let v = vocab();
        let m = joint();
        let p = RewritePipeline::new(&m, &v, 2, 6, 4);
        let query: Vec<String> = vec!["w3".into(), "w4".into()];
        for rw in p.rewrite(&query, 2) {
            assert!(!rw.is_empty());
            assert_ne!(rw, query);
            // Every token decodes through the same vocab.
            for t in &rw {
                assert!(v.id(t).is_some());
            }
        }
        assert_eq!(p.name(), "neural-pipeline");
    }

    #[test]
    fn empty_query_yields_nothing() {
        let v = vocab();
        let m = joint();
        let p = RewritePipeline::new(&m, &v, 2, 6, 5);
        assert!(p.rewrite_ids(&[]).is_empty());
    }
}
