//! Distill-and-quantize fast path for online serving.
//!
//! The cyclic forward/backward pair (the teacher) is accurate but pays two
//! translation hops per rewrite. For the online rung we distill it into a
//! compact direct q2q student: harvest the teacher pipeline's top rewrites
//! as synthetic `(query → rewrite)` pairs, train a half-width
//! [`ModelConfig::student`] pair on them through the existing
//! [`CyclicTrainer`] (so curves, divergence sentinels and the atomic
//! checkpoint-commit discipline all carry over), then freeze the forward
//! student into the i8 [`QuantStudent`] whose integer microkernels serve
//! the degradation ladder's preferred rung.

use std::cell::RefCell;
use std::path::Path;

use qrw_data::Pair;
use qrw_nmt::{ModelConfig, QuantStudent, Seq2Seq, TopNSampling};
use qrw_tensor::rng::StdRng;
use qrw_text::Vocab;

use crate::checkpoint::CheckpointStore;
use crate::config::TrainConfig;
use crate::cyclic::{CyclicTrainer, JointModel, TrainMode, TrainingCurve};
use crate::pipeline::{QueryRewriter, RewritePipeline};

/// Knobs for one distillation run.
#[derive(Clone, Debug)]
pub struct DistillConfig {
    /// Rewrites harvested per query from the teacher pipeline (`k`).
    pub k: usize,
    /// Teacher sampling pool (`n`; paper: 40).
    pub top_n: usize,
    /// Seed for teacher sampling and student initialization.
    pub seed: u64,
    /// Student optimisation schedule, run in [`TrainMode::Separate`]
    /// (supervised distillation; the cyclic joint phase stays with the
    /// teacher). `checkpoint_every` here drives periodic atomic commits
    /// when a checkpoint directory is supplied.
    pub train: TrainConfig,
}

impl Default for DistillConfig {
    fn default() -> Self {
        DistillConfig {
            k: 3,
            top_n: 8,
            seed: 41,
            train: TrainConfig { steps: 120, warmup_steps: 0, eval_every: 30, ..TrainConfig::default() },
        }
    }
}

/// Everything a distillation run produces.
pub struct Distilled {
    /// The trained full-precision student pair (`forward` is the q2q
    /// serving direction; `backward` rewrites back for consistency checks).
    pub joint: JointModel,
    /// The forward student frozen into i8 integer-kernel form.
    pub student: QuantStudent,
    /// Metric curve of the student's training run.
    pub curve: TrainingCurve,
    /// Number of harvested `(query → rewrite)` pairs.
    pub pairs: usize,
}

/// Harvests distillation data: for each query, the teacher pipeline's
/// ranked rewrites become `(query → rewrite)` pairs, weighted by rank so
/// the sampler favours the teacher's best output. Queries the teacher
/// cannot rewrite contribute nothing.
pub fn distill_pairs(teacher: &RewritePipeline<'_>, queries: &[Vec<usize>]) -> Vec<Pair> {
    let mut pairs = Vec::new();
    for q in queries {
        if q.is_empty() {
            continue;
        }
        let rewrites = teacher.rewrite_ids(q);
        let n = rewrites.len();
        for (rank, r) in rewrites.into_iter().enumerate() {
            if r.ids.is_empty() {
                continue;
            }
            pairs.push(Pair { src: q.clone(), tgt: r.ids, weight: (n - rank) as u32 });
        }
    }
    pairs
}

/// Distills `teacher` into a quantized q2q student.
///
/// Harvest → train → quantize. With `checkpoints = Some(dir)` the student
/// run checkpoints through the same atomic-commit [`CheckpointStore`]
/// discipline as teacher training (resumable via [`CyclicTrainer::resume`]),
/// including a final commit after the last step.
pub fn distill_student(
    teacher: &JointModel,
    vocab: &Vocab,
    queries: &[Vec<usize>],
    config: &DistillConfig,
    checkpoints: Option<&Path>,
) -> Result<Distilled, String> {
    let pipeline = RewritePipeline::new(teacher, vocab, config.k, config.top_n, config.seed)
        .with_name("distill-teacher");
    let pairs = distill_pairs(&pipeline, queries);
    if pairs.is_empty() {
        return Err("teacher produced no rewrites to distill from".to_string());
    }
    // Hold out every 5th pair for the curve when there is enough data;
    // with a tiny harvest, evaluate on the training set itself.
    let held: Vec<Pair> =
        pairs.iter().enumerate().filter(|(i, _)| i % 5 == 4).map(|(_, p)| p.clone()).collect();
    let eval: &[Pair] = if held.is_empty() { &pairs } else { &held };

    let student_cfg = ModelConfig::student(teacher.forward.config().vocab);
    let joint = JointModel::new(
        Seq2Seq::new(student_cfg.clone(), config.seed),
        Seq2Seq::new(student_cfg.clone(), config.seed + 1),
    );
    let mut trainer = CyclicTrainer::new(config.train.clone(), student_cfg.d_model);
    if let Some(dir) = checkpoints {
        trainer = trainer.with_checkpoints(CheckpointStore::new(dir));
    }
    let curve = trainer.train(&joint, &pairs, eval, TrainMode::Separate);
    if checkpoints.is_some() {
        trainer
            .save_checkpoint(&joint, TrainMode::Separate)
            .map_err(|e| format!("final distill checkpoint failed: {e}"))?;
    }
    let student = QuantStudent::from_seq2seq(&joint.forward)?;
    Ok(Distilled { joint, student, curve, pairs: pairs.len() })
}

/// A [`QueryRewriter`] over the quantized student — the preferred online
/// rung of the serving degradation ladder (the teacher-backed q2q model
/// stays behind it as the fallback).
pub struct StudentRewriter<'m> {
    student: &'m QuantStudent,
    vocab: &'m Vocab,
    pub top_n: usize,
    rng: RefCell<StdRng>,
    name: String,
}

impl<'m> StudentRewriter<'m> {
    pub fn new(student: &'m QuantStudent, vocab: &'m Vocab, top_n: usize, seed: u64) -> Self {
        StudentRewriter {
            student,
            vocab,
            top_n,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            name: "student-quantized".to_string(),
        }
    }

    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl QueryRewriter for StudentRewriter<'_> {
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let ids = self.vocab.encode(query);
        let rng = &mut *self.rng.borrow_mut();
        let hyps = self.student.top_n_sampling(&ids, TopNSampling { k, n: self.top_n }, rng);
        let mut out: Vec<Vec<String>> = Vec::new();
        for h in hyps {
            let tokens: Vec<String> = h
                .tokens
                .iter()
                .filter(|&&id| id >= qrw_text::NUM_SPECIALS)
                .map(|&id| self.vocab.token(id).to_string())
                .collect();
            if tokens.is_empty() || tokens == query || out.contains(&tokens) {
                continue;
            }
            out.push(tokens);
            if out.len() == k {
                break;
            }
        }
        out
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn decode_stats(&self) -> Option<qrw_nmt::DecodeStats> {
        Some(self.student.decode_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::testutil::TestDir;
    use qrw_nmt::ComponentKind;

    fn tiny_world() -> (JointModel, Vocab, Vec<Vec<usize>>) {
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.insert(&format!("t{i}"));
        }
        let cfg = ModelConfig::tiny_transformer(vocab.len());
        let teacher = JointModel::new(Seq2Seq::new(cfg.clone(), 31), Seq2Seq::new(cfg, 32));
        let queries: Vec<Vec<usize>> =
            (0..6).map(|i| vec![4 + i, 4 + (i + 3) % 12]).collect();
        (teacher, vocab, queries)
    }

    #[test]
    fn harvested_pairs_come_from_the_queries_and_rank_by_weight() {
        let (teacher, vocab, queries) = tiny_world();
        let pipeline = RewritePipeline::new(&teacher, &vocab, 3, 8, 5);
        let pairs = distill_pairs(&pipeline, &queries);
        assert!(!pairs.is_empty(), "an untrained teacher still samples rewrites");
        for p in &pairs {
            assert!(queries.contains(&p.src), "src {:?} is not a harvest query", p.src);
            assert!(!p.tgt.is_empty());
            assert!(p.weight >= 1);
        }
        // Within one query the teacher's best rewrite carries the largest
        // weight (weights descend with rank).
        for q in &queries {
            let ws: Vec<u32> = pairs.iter().filter(|p| &p.src == q).map(|p| p.weight).collect();
            assert!(ws.windows(2).all(|w| w[0] >= w[1]), "weights {ws:?} not descending");
        }
    }

    #[test]
    fn distillation_trains_checkpoints_and_quantizes() {
        let (teacher, vocab, queries) = tiny_world();
        let dir = TestDir::new("distill");
        let config = DistillConfig {
            train: TrainConfig {
                steps: 6,
                warmup_steps: 0,
                batch_size: 4,
                eval_every: 3,
                checkpoint_every: 3,
                ..TrainConfig::default()
            },
            ..DistillConfig::default()
        };
        let out = distill_student(&teacher, &vocab, &queries, &config, Some(dir.path())).unwrap();
        assert!(out.pairs > 0);
        assert!(!out.curve.points.is_empty());
        assert_eq!(out.student.config().vocab, vocab.len());
        assert_eq!(out.student.config().d_model, ModelConfig::student(vocab.len()).d_model);

        // The run committed through the atomic checkpoint store and is
        // resumable into a fresh student of the same shape.
        let store = CheckpointStore::new(dir.path());
        let (step, _) = store.latest_valid().expect("final checkpoint committed");
        assert_eq!(step, 6);
        let fresh_cfg = ModelConfig::student(vocab.len());
        let fresh = JointModel::new(
            Seq2Seq::new(fresh_cfg.clone(), 1),
            Seq2Seq::new(fresh_cfg, 2),
        );
        let (resumed, mode) = CyclicTrainer::resume(dir.path(), &fresh).unwrap();
        assert_eq!(mode, TrainMode::Separate);
        drop(resumed);

        // The quantized student tracks the resumed f32 weights: both come
        // from the same committed bytes.
        let requantized = QuantStudent::from_seq2seq(&fresh.forward).unwrap();
        let src = vec![5usize, 7];
        let mem_a = out.student.encode(&src);
        let mem_b = requantized.encode(&src);
        assert_eq!(mem_a, mem_b, "checkpointed weights must requantize bit-identically");
    }

    #[test]
    fn student_rewriter_excludes_original_and_dedups() {
        let (_, vocab, _) = tiny_world();
        let model = Seq2Seq::new(ModelConfig::student(vocab.len()), 23);
        let student = QuantStudent::from_seq2seq(&model).unwrap();
        let rw = StudentRewriter::new(&student, &vocab, 6, 7);
        assert_eq!(rw.name(), "student-quantized");
        let query: Vec<String> = vec!["t2".into(), "t6".into()];
        let rewrites = rw.rewrite(&query, 3);
        assert!(rewrites.len() <= 3);
        let mut sorted = rewrites.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), rewrites.len());
        assert!(rewrites.iter().all(|r| *r != query));
        // Decode telemetry flows through the trait for serving health.
        let stats = rw.decode_stats().unwrap();
        assert!(stats.tokens > 0, "rewrite() must move the decode counters");
    }

    #[test]
    fn distillation_rejects_non_transformer_students_upstream() {
        // `distill_student` always builds a transformer student; the
        // quantizer's own guard still protects direct misuse.
        let mut cfg = ModelConfig::student(16);
        cfg.dec_kind = ComponentKind::Gru;
        let model = Seq2Seq::new(cfg, 3);
        assert!(QuantStudent::from_seq2seq(&model).is_err());
    }

    #[test]
    fn empty_harvest_is_a_typed_error() {
        let (teacher, vocab, _) = tiny_world();
        let err = distill_student(&teacher, &vocab, &[], &DistillConfig::default(), None)
            .err()
            .expect("no queries -> no pairs");
        assert!(err.contains("no rewrites"), "{err}");
    }
}
