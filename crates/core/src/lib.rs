//! # qrw-core
//!
//! The paper's primary contribution: **query rewriting as cycle-consistent
//! translation**.
//!
//! * [`cyclic`] — the joint model, the cycle-consistency likelihood
//!   (Eq. 3) with its sampled-subset gradient approximation (Eq. 5), and
//!   the Algorithm 1 trainer with warm-up; produces the Figure 7/8
//!   convergence curves.
//! * [`pipeline`] — the two-stage inference pipeline of §III-E/Figure 3
//!   and the [`pipeline::QueryRewriter`] trait all rewriters implement.
//! * [`q2q`] — the §III-G direct query→query serving model (Figure 9).
//! * [`distill`] — the distill-and-quantize fast path: the teacher
//!   pipeline's top rewrites train a compact q2q student that serves
//!   through the i8 integer kernels of `qrw_nmt::student`.
//! * [`embed`] — SGNS embeddings standing in for the production embedding
//!   model behind Table VII's cosine metric.
//! * [`lm_rewriter`] — the §V GPT-style single-LM alternative
//!   (`query <sep1> title <sep2> query2`), for the ablation bench.
//! * [`config`] — Algorithm 1 / §IV-A hyper-parameters and the Table II
//!   record.
//! * [`checkpoint`] — crash-safe full-state training checkpoints
//!   (versioned directories, manifest commit records, bitwise resume) and
//!   [`fault`] — the deterministic write-fault injector exercising them.

pub mod checkpoint;
pub mod config;
pub mod cyclic;
pub mod distill;
pub mod embed;
pub mod fault;
pub mod lm_rewriter;
pub mod persist;
pub mod pipeline;
pub mod q2q;

pub use checkpoint::{CheckpointStore, ResumeError, TrainerState};
pub use config::{HyperparamTable, TrainConfig};
pub use cyclic::{
    CurvePoint, CyclicTrainer, JointModel, SpikeDetector, SpikeVerdict, TrainHealthReport,
    TrainMode, TrainingCurve,
};
pub use distill::{distill_pairs, distill_student, DistillConfig, Distilled, StudentRewriter};
pub use embed::{cosine, EmbeddingModel, SgnsConfig};
pub use fault::TrainFaultInjector;
pub use lm_rewriter::{make_lm, train_lm, LmCorpus, LmPoint, LmRewriter, LmTrainConfig};
pub use persist::{load_joint, load_model, save_joint, save_model, DiskSink, WriteSink};
pub use pipeline::{QueryRewriter, RewritePipeline, ScoredRewrite};
pub use qrw_nmt::DecodeStats;
pub use q2q::{evaluate_q2q, train_q2q, Q2QPoint, Q2QRewriter, Q2QTrainConfig};
