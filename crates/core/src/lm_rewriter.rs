//! The §V future-work approach: a single causal language model over the
//! "special language" `query <sep1> title <sep2> query2`.
//!
//! The paper: *"we can add a special token between the query and title,
//! i.e. 'query <sep1> title <sep2> query2', and treat the whole sequence
//! as a 'special' language ... which hopefully could generate a synthetic
//! title for a given query, then generate a synthetic query from the
//! title"*. They found it did not yet beat the jointly trained NMT pair —
//! an ablation this reproduction repeats (`repro ablation-lm`).

use std::cell::RefCell;
use std::collections::HashMap;

use qrw_tensor::rng::StdRng;

use qrw_data::{ClickLog, Dataset};
use qrw_nmt::{CausalLm, CausalLmConfig};
use qrw_tensor::optim::{Adam, AdamConfig, NoamSchedule};
use qrw_tensor::Tape;
use qrw_text::{Vocab, EOS, NUM_SPECIALS};

use crate::pipeline::QueryRewriter;

/// The LM training corpus in the paper's concatenated format.
pub struct LmCorpus {
    /// The dataset vocabulary extended with the two separator tokens
    /// (existing ids are unchanged: separators are appended).
    pub vocab: Vocab,
    pub sep1: usize,
    pub sep2: usize,
    /// `(sequence, predict_from)`: loss is computed from `predict_from`
    /// on, so the model learns to continue the query prompt rather than
    /// to model the query prior.
    pub sequences: Vec<(Vec<usize>, usize)>,
}

impl LmCorpus {
    /// Builds `query <sep1> title <sep2> query2` sequences from click
    /// pairs. `query2` is a mined synonymous query when one exists
    /// (§III-G co-click mining), else the query itself (pure
    /// translate-back supervision).
    pub fn build(log: &ClickLog, dataset: &Dataset) -> Self {
        let mut vocab = dataset.vocab.clone();
        let sep1 = vocab.insert("<sep1>");
        let sep2 = vocab.insert("<sep2>");

        // Synonym lookup from the mined q2q pairs.
        let mut synonyms: HashMap<&[usize], Vec<&[usize]>> = HashMap::new();
        for pair in &dataset.q2q {
            synonyms.entry(&pair.src).or_default().push(&pair.tgt);
        }

        let mut sequences = Vec::with_capacity(dataset.q2t.len());
        for pair in &dataset.q2t {
            if pair.src.is_empty() || pair.tgt.is_empty() {
                continue;
            }
            let query2: &[usize] = synonyms
                .get(pair.src.as_slice())
                .and_then(|v| v.first().copied())
                .unwrap_or(&pair.src);
            let mut seq =
                Vec::with_capacity(pair.src.len() + pair.tgt.len() + query2.len() + 2);
            seq.extend_from_slice(&pair.src);
            seq.push(sep1);
            seq.extend_from_slice(&pair.tgt);
            seq.push(sep2);
            seq.extend_from_slice(query2);
            sequences.push((seq, pair.src.len()));
        }
        let _ = log;
        LmCorpus { vocab, sep1, sep2, sequences }
    }
}

/// LM training parameters.
#[derive(Clone, Copy, Debug)]
pub struct LmTrainConfig {
    pub steps: u64,
    pub batch_size: usize,
    pub lr_factor: f32,
    pub noam_warmup: u64,
    pub grad_clip: f32,
    pub eval_every: u64,
    pub seed: u64,
}

impl Default for LmTrainConfig {
    fn default() -> Self {
        LmTrainConfig {
            steps: 240,
            batch_size: 8,
            lr_factor: 0.6,
            noam_warmup: 48,
            grad_clip: 5.0,
            eval_every: 24,
            seed: 151,
        }
    }
}

/// A point on the LM training curve.
#[derive(Clone, Copy, Debug)]
pub struct LmPoint {
    pub step: u64,
    /// Per-token perplexity of the continuation (title + rewrite).
    pub ppl: f32,
}

/// Trains the LM on the corpus; returns the perplexity curve over
/// `eval_n` held-in sequences.
pub fn train_lm(
    lm: &CausalLm,
    corpus: &LmCorpus,
    eval_n: usize,
    config: &LmTrainConfig,
) -> Vec<LmPoint> {
    assert!(!corpus.sequences.is_empty(), "LM corpus is empty");
    let mut adam = Adam::new(AdamConfig::default());
    let schedule = NoamSchedule::new(config.lr_factor, lm.config().d_model, config.noam_warmup);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let eval: Vec<&(Vec<usize>, usize)> = corpus.sequences.iter().take(eval_n.max(1)).collect();
    let mut curve = Vec::new();

    for step in 1..=config.steps {
        lm.params().zero_grads();
        for _ in 0..config.batch_size {
            let (seq, predict_from) = &corpus.sequences[rng.gen_range(0..corpus.sequences.len())];
            let tape = Tape::new();
            let dropout = lm.config().dropout;
            let mut ctx = if dropout > 0.0 {
                Some(qrw_nmt::layers::TrainCtx { rng: &mut rng, dropout })
            } else {
                None
            };
            let (nll, _) = lm.nll_on_tape(&tape, seq, *predict_from, &mut ctx);
            tape.backward(nll);
        }
        let scale = 1.0 / config.batch_size as f32;
        for p in lm.params() {
            p.scale_grad(scale);
        }
        lm.params().clip_grad_norm(config.grad_clip);
        adam.step_with_lr(lm.params(), schedule.lr(step));

        let at_eval = config.eval_every > 0 && step.is_multiple_of(config.eval_every);
        if at_eval || step == config.steps {
            let mut nll_total = 0.0f64;
            let mut tokens = 0usize;
            for (seq, predict_from) in &eval {
                let tape = Tape::new();
                let (nll, count) = lm.nll_on_tape(&tape, seq, *predict_from, &mut None);
                nll_total += nll.item() as f64;
                tokens += count;
            }
            curve.push(LmPoint {
                step,
                ppl: ((nll_total / tokens.max(1) as f64).exp()) as f32,
            });
        }
    }
    curve
}

/// A [`QueryRewriter`] that drives the trained LM through the paper's
/// two-segment generation: sample a title until `<sep2>`, then a rewrite
/// until `<eos>`.
pub struct LmRewriter<'m> {
    lm: &'m CausalLm,
    vocab: &'m Vocab,
    sep1: usize,
    sep2: usize,
    pub top_n: usize,
    pub max_title_len: usize,
    pub max_query_len: usize,
    rng: RefCell<StdRng>,
    name: String,
}

impl<'m> LmRewriter<'m> {
    pub fn new(lm: &'m CausalLm, corpus: &'m LmCorpus, top_n: usize, seed: u64) -> Self {
        LmRewriter {
            lm,
            vocab: &corpus.vocab,
            sep1: corpus.sep1,
            sep2: corpus.sep2,
            top_n,
            max_title_len: 16,
            max_query_len: 8,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            name: "gpt-style-lm".to_string(),
        }
    }

    /// One full generation attempt: `(title_ids, rewrite_ids)`.
    pub fn generate_once(&self, query_ids: &[usize], rng: &mut StdRng) -> Option<(Vec<usize>, Vec<usize>)> {
        let mut prefix = query_ids.to_vec();
        prefix.push(self.sep1);
        let (title, stop) =
            self.lm
                .sample_until(&prefix, &[self.sep2, EOS], self.max_title_len, self.top_n, rng);
        if stop != Some(self.sep2) || title.is_empty() {
            return None;
        }
        prefix.extend_from_slice(&title);
        prefix.push(self.sep2);
        let (rewrite, _stop) =
            self.lm
                .sample_until(&prefix, &[EOS, self.sep1], self.max_query_len, self.top_n, rng);
        if rewrite.is_empty() {
            return None;
        }
        Some((title, rewrite))
    }
}

impl QueryRewriter for LmRewriter<'_> {
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let query_ids = self.vocab.encode(query);
        let rng = &mut *self.rng.borrow_mut();
        let mut out: Vec<Vec<String>> = Vec::new();
        // A few extra attempts compensate for failed generations.
        for _ in 0..k * 3 {
            if out.len() == k {
                break;
            }
            let Some((_title, rewrite)) = self.generate_once(&query_ids, rng) else {
                continue;
            };
            let tokens: Vec<String> = rewrite
                .iter()
                .filter(|&&id| id >= NUM_SPECIALS && id != self.sep1 && id != self.sep2)
                .map(|&id| self.vocab.token(id).to_string())
                .collect();
            if tokens.is_empty() || tokens == query || out.contains(&tokens) {
                continue;
            }
            out.push(tokens);
        }
        out
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the LM at the reproduction scale for a corpus.
pub fn make_lm(corpus: &LmCorpus, seed: u64) -> CausalLm {
    CausalLm::new(CausalLmConfig::small(corpus.vocab.len()), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_data::{DatasetConfig, LogConfig};

    fn corpus() -> (ClickLog, Dataset, LmCorpus) {
        let log = ClickLog::generate(&LogConfig::tiny());
        let dataset = Dataset::build(&log, &DatasetConfig::default());
        let corpus = LmCorpus::build(&log, &dataset);
        (log, dataset, corpus)
    }

    #[test]
    fn corpus_sequences_have_both_separators_in_order() {
        let (_log, _ds, corpus) = corpus();
        assert!(!corpus.sequences.is_empty());
        for (seq, predict_from) in &corpus.sequences {
            let p1 = seq.iter().position(|&t| t == corpus.sep1).expect("sep1 present");
            let p2 = seq.iter().position(|&t| t == corpus.sep2).expect("sep2 present");
            assert!(p1 < p2, "sep1 must precede sep2");
            assert_eq!(p1, *predict_from, "loss starts at sep1");
            assert!(p2 + 1 < seq.len(), "a rewrite segment follows sep2");
        }
    }

    #[test]
    fn separator_ids_extend_the_vocab_without_shifting() {
        let (_log, ds, corpus) = corpus();
        assert_eq!(corpus.vocab.len(), ds.vocab.len() + 2);
        // Existing ids are stable.
        for (id, token) in ds.vocab.iter() {
            assert_eq!(corpus.vocab.token(id), token);
        }
    }

    #[test]
    fn lm_training_reduces_continuation_perplexity() {
        let (_log, _ds, corpus) = corpus();
        let lm = CausalLm::new(CausalLmConfig::tiny(corpus.vocab.len()), 5);
        let cfg = LmTrainConfig { steps: 40, batch_size: 4, eval_every: 20, ..Default::default() };
        let curve = train_lm(&lm, &corpus, 4, &cfg);
        assert!(curve.len() >= 2);
        let first = curve.first().unwrap().ppl;
        let last = curve.last().unwrap().ppl;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn rewriter_contract_holds_even_untrained() {
        let (log, _ds, corpus) = corpus();
        let lm = CausalLm::new(CausalLmConfig::tiny(corpus.vocab.len()), 6);
        let rw = LmRewriter::new(&lm, &corpus, 6, 7);
        let query = log.queries[0].tokens.clone();
        let rewrites = rw.rewrite(&query, 2);
        assert!(rewrites.len() <= 2);
        for r in &rewrites {
            assert_ne!(*r, query);
            assert!(!r.is_empty());
            // No separator text leaks into rewrites.
            assert!(r.iter().all(|t| t != "<sep1>" && t != "<sep2>"));
        }
        assert_eq!(rw.name(), "gpt-style-lm");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (log, _ds, corpus) = corpus();
        let lm = CausalLm::new(CausalLmConfig::tiny(corpus.vocab.len()), 6);
        let a = LmRewriter::new(&lm, &corpus, 6, 9).rewrite(&log.queries[0].tokens, 2);
        let b = LmRewriter::new(&lm, &corpus, 6, 9).rewrite(&log.queries[0].tokens, 2);
        assert_eq!(a, b);
    }
}
