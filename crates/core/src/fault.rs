//! Deterministic write-fault injection for the crash-safety tests.
//!
//! [`TrainFaultInjector`] wraps the checkpoint write path behind the
//! [`WriteSink`] trait and simulates the failure modes Algorithm 1's
//! checkpointing must survive:
//!
//! * **Kill at a byte offset** — the process dies mid-checkpoint. The
//!   write containing the offset lands *torn at the final path* (the
//!   worst case: as if the atomic rename itself tore) and every later
//!   write fails, emulating the dead process. A sweep over every offset
//!   of a checkpoint proves recovery never loads torn state.
//! * **Bit flip** — silent media corruption: one payload bit of the Nth
//!   write is flipped and the file is otherwise written normally. The
//!   CRCs must catch it.
//! * **Disk full** — the Nth and all later writes fail cleanly with
//!   nothing written; training must keep going on the previous good
//!   checkpoint.
//!
//! The injector is deterministic: the same plan against the same write
//! sequence fails at the same byte, which is what makes the
//! `tests/train_resilience.rs` sweeps reproducible. This mirrors the
//! serving crate's `FaultInjector`, but at the storage layer instead of
//! the request path.

use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::persist::{DiskSink, WriteSink};

/// What should go wrong, and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Every write succeeds (pass-through to [`DiskSink`]).
    None,
    /// The process "dies" once `offset` cumulative payload bytes have been
    /// written: the write containing the offset leaves a torn file at its
    /// final path, and all subsequent writes fail.
    KillAtByte(u64),
    /// Flip bit `bit` (mod payload length) of the `write_index`-th write's
    /// payload, then write it normally.
    BitFlip { write_index: u64, bit: u64 },
    /// The `write_index`-th and all later writes fail with a disk-full
    /// error, leaving their targets untouched.
    DiskFullAtWrite(u64),
}

#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    bytes_written: u64,
    writes_done: u64,
    dead: bool,
}

/// A [`WriteSink`] that injects the [`FaultPlan`] into an otherwise real
/// [`DiskSink`] write path.
#[derive(Debug)]
pub struct TrainFaultInjector {
    state: Mutex<FaultState>,
}

impl TrainFaultInjector {
    pub fn new(plan: FaultPlan) -> Self {
        TrainFaultInjector {
            state: Mutex::new(FaultState {
                plan,
                bytes_written: 0,
                writes_done: 0,
                dead: false,
            }),
        }
    }

    /// Pass-through sink that only counts traffic (used to measure a clean
    /// checkpoint's size before sweeping kill offsets over it).
    pub fn none() -> Self {
        Self::new(FaultPlan::None)
    }

    pub fn kill_at_byte(offset: u64) -> Self {
        Self::new(FaultPlan::KillAtByte(offset))
    }

    pub fn bit_flip(write_index: u64, bit: u64) -> Self {
        Self::new(FaultPlan::BitFlip { write_index, bit })
    }

    pub fn disk_full_at_write(write_index: u64) -> Self {
        Self::new(FaultPlan::DiskFullAtWrite(write_index))
    }

    /// Cumulative payload bytes offered to the sink (including the torn
    /// write's full intended payload).
    pub fn total_bytes(&self) -> u64 {
        self.state.lock().unwrap().bytes_written
    }

    /// Number of writes offered to the sink.
    pub fn total_writes(&self) -> u64 {
        self.state.lock().unwrap().writes_done
    }

    /// Whether the kill fault has fired.
    pub fn killed(&self) -> bool {
        self.state.lock().unwrap().dead
    }
}

impl WriteSink for TrainFaultInjector {
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if st.dead {
            return Err(io::Error::other("fault injector: process is dead"));
        }
        let write_index = st.writes_done;
        let start = st.bytes_written;
        st.writes_done += 1;
        st.bytes_written += bytes.len() as u64;

        match st.plan {
            FaultPlan::None => {
                drop(st);
                DiskSink.write_atomic(path, bytes)
            }
            FaultPlan::KillAtByte(offset) => {
                let end = start + bytes.len() as u64;
                if offset < end {
                    st.dead = true;
                    drop(st);
                    // Torn write at the final path — deliberately NOT the
                    // atomic path; this is the disaster the checksums and
                    // manifests exist to catch.
                    let keep = (offset - start) as usize;
                    std::fs::write(path, &bytes[..keep])?;
                    return Err(io::Error::other("fault injector: killed mid-write"));
                }
                drop(st);
                DiskSink.write_atomic(path, bytes)
            }
            FaultPlan::BitFlip { write_index: target, bit } => {
                drop(st);
                if write_index == target && !bytes.is_empty() {
                    let mut flipped = bytes.to_vec();
                    let bit = (bit as usize) % (flipped.len() * 8);
                    flipped[bit / 8] ^= 1 << (bit % 8);
                    return DiskSink.write_atomic(path, &flipped);
                }
                DiskSink.write_atomic(path, bytes)
            }
            FaultPlan::DiskFullAtWrite(target) => {
                drop(st);
                if write_index >= target {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "fault injector: no space left on device",
                    ));
                }
                DiskSink.write_atomic(path, bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::testutil::TestDir;

    #[test]
    fn none_passes_through_and_counts() {
        let dir = TestDir::new("fault-none");
        let sink = TrainFaultInjector::none();
        sink.write_atomic(&dir.join("a"), b"hello").unwrap();
        sink.write_atomic(&dir.join("b"), b"world!").unwrap();
        assert_eq!(sink.total_bytes(), 11);
        assert_eq!(sink.total_writes(), 2);
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"world!");
    }

    #[test]
    fn kill_tears_exactly_at_offset_and_stays_dead() {
        let dir = TestDir::new("fault-kill");
        let sink = TrainFaultInjector::kill_at_byte(7);
        sink.write_atomic(&dir.join("a"), b"hello").unwrap(); // bytes 0..5
        let err = sink.write_atomic(&dir.join("b"), b"world!").unwrap_err();
        assert!(err.to_string().contains("killed"), "{err}");
        assert!(sink.killed());
        // b holds the torn prefix: bytes 5..7 of the stream = "wo".
        assert_eq!(std::fs::read(dir.join("b")).unwrap(), b"wo");
        // The process is dead: nothing further lands.
        assert!(sink.write_atomic(&dir.join("c"), b"x").is_err());
        assert!(!dir.join("c").exists());
    }

    #[test]
    fn bit_flip_corrupts_one_bit_of_the_targeted_write() {
        let dir = TestDir::new("fault-flip");
        let sink = TrainFaultInjector::bit_flip(1, 9);
        sink.write_atomic(&dir.join("a"), b"aa").unwrap();
        sink.write_atomic(&dir.join("b"), b"aa").unwrap();
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"aa");
        let b = std::fs::read(dir.join("b")).unwrap();
        assert_eq!(b, vec![b'a', b'a' ^ 0x02]); // bit 9 = byte 1, bit 1
    }

    #[test]
    fn disk_full_fails_cleanly_without_writing() {
        let dir = TestDir::new("fault-full");
        let sink = TrainFaultInjector::disk_full_at_write(1);
        sink.write_atomic(&dir.join("a"), b"ok").unwrap();
        let err = sink.write_atomic(&dir.join("b"), b"nope").unwrap_err();
        assert!(err.to_string().contains("no space"), "{err}");
        assert!(!dir.join("b").exists());
        // Disk stays full, but the process is alive: later writes also
        // fail cleanly rather than panicking.
        assert!(sink.write_atomic(&dir.join("c"), b"x").is_err());
    }
}
