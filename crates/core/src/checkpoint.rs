//! Crash-safe training checkpoints: versioned checkpoint directories, a
//! commit protocol, and the full-trainer-state binary codec.
//!
//! Algorithm 1 runs for days at production scale, so a killed trainer must
//! resume *bit-for-bit* — the same standard as the KV-cache decode
//! equivalence. The protocol:
//!
//! 1. Every checkpoint is its own subdirectory `ckpt-<step>/` containing
//!    `forward.qrw`, `backward.qrw` (v2 `QRWT`, CRC-framed), and
//!    `trainer.qrws` (everything else: Adam moments, step count, Noam
//!    position, [`TrainMode`], shuffle-RNG state, the training curve and
//!    sentinel counters).
//! 2. Each file is written through the atomic temp + fsync + rename path
//!    ([`WriteSink`]).
//! 3. A [`Manifest`] (sizes + FNV-1a digests of all three members) is written
//!    **last** — it is the commit record. A crash before the manifest
//!    rename leaves a subdirectory that verification rejects.
//! 4. A top-level `LATEST` file names the newest committed subdirectory.
//!    [`CheckpointStore::latest_valid`] follows it, re-verifies the whole
//!    manifest, and on any failure falls back to scanning `ckpt-*`
//!    directories newest-first — so a kill at *any* byte offset, a bit
//!    flip, or a full disk always resolves to the previous good
//!    checkpoint or a typed error, never to silently-wrong state.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use qrw_tensor::serialize::{crc32, CheckpointError};

use crate::config::TrainConfig;
use crate::cyclic::{CurvePoint, TrainHealthReport, TrainMode, TrainingCurve};
use crate::persist::{DiskSink, Manifest, WriteSink};

/// Member file names inside a checkpoint directory.
pub const FORWARD_FILE: &str = "forward.qrw";
pub const BACKWARD_FILE: &str = "backward.qrw";
pub const TRAINER_FILE: &str = "trainer.qrws";
pub const MANIFEST_FILE: &str = "MANIFEST";
pub const LATEST_FILE: &str = "LATEST";

/// Why a resume could not produce a trainer.
#[derive(Debug)]
pub enum ResumeError {
    /// Filesystem failure outside checkpoint contents.
    Io(io::Error),
    /// A member file failed its typed `QRWT` validation.
    Checkpoint(CheckpointError),
    /// The trainer-state file is corrupt or structurally invalid.
    State(String),
    /// No committed-and-valid checkpoint exists under the directory.
    NoCheckpoint,
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "resume I/O error: {e}"),
            ResumeError::Checkpoint(e) => write!(f, "resume checkpoint error: {e}"),
            ResumeError::State(msg) => write!(f, "resume trainer-state error: {msg}"),
            ResumeError::NoCheckpoint => write!(f, "no valid checkpoint to resume from"),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<io::Error> for ResumeError {
    fn from(e: io::Error) -> Self {
        ResumeError::Io(e)
    }
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// A directory of versioned training checkpoints plus the sink used to
/// write them (the sink is swapped for a fault injector in tests).
pub struct CheckpointStore {
    dir: PathBuf,
    sink: Box<dyn WriteSink>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore").field("dir", &self.dir).finish()
    }
}

impl CheckpointStore {
    /// A store writing through the real filesystem sink.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into(), sink: Box::new(DiskSink) }
    }

    /// A store writing through an injected sink (fault-injection tests).
    pub fn with_sink(dir: impl Into<PathBuf>, sink: Box<dyn WriteSink>) -> CheckpointStore {
        CheckpointStore { dir: dir.into(), sink }
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one fully-committed checkpoint for `step`: members, then
    /// manifest, then the `LATEST` pointer. Any error (including an
    /// injected kill) leaves previously committed checkpoints untouched.
    pub fn save(&self, step: u64, members: &[(&str, Vec<u8>)]) -> io::Result<()> {
        let sub_name = format!("ckpt-{step:012}");
        let sub = self.dir.join(&sub_name);
        fs::create_dir_all(&sub)?;
        for (name, bytes) in members {
            self.sink.write_atomic(&sub.join(name), bytes)?;
        }
        let member_refs: Vec<(&str, &[u8])> =
            members.iter().map(|(n, b)| (*n, b.as_slice())).collect();
        let manifest = Manifest::of_members(&member_refs);
        self.sink.write_atomic(&sub.join(MANIFEST_FILE), &manifest.to_bytes())?;
        self.sink.write_atomic(&self.dir.join(LATEST_FILE), sub_name.as_bytes())
    }

    /// The newest checkpoint directory whose manifest fully verifies.
    ///
    /// Follows `LATEST` first; if the pointer is missing, stale, or points
    /// at a corrupt directory, scans `ckpt-*` newest-first (the
    /// rollback-to-last-good path).
    pub fn latest_valid(&self) -> Result<(u64, PathBuf), ResumeError> {
        if let Some((step, path)) = self.pointer_candidate() {
            if Self::verify_dir(&path).is_ok() {
                return Ok((step, path));
            }
        }
        let mut candidates = self.list_checkpoints()?;
        candidates.sort_by_key(|c| std::cmp::Reverse(c.0));
        for (step, path) in candidates {
            if Self::verify_dir(&path).is_ok() {
                return Ok((step, path));
            }
        }
        Err(ResumeError::NoCheckpoint)
    }

    /// All `ckpt-<step>` subdirectories (committed or not), unsorted.
    pub fn list_checkpoints(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if let Some(step) = name.strip_prefix("ckpt-").and_then(|s| s.parse::<u64>().ok()) {
                if entry.path().is_dir() {
                    out.push((step, entry.path()));
                }
            }
        }
        Ok(out)
    }

    /// Full commit check for one checkpoint directory: manifest present,
    /// parseable, sealed, and every member matches its size and CRC.
    pub fn verify_dir(path: &Path) -> Result<(), ResumeError> {
        let manifest_bytes = fs::read(path.join(MANIFEST_FILE))?;
        let manifest =
            Manifest::parse(&manifest_bytes).map_err(ResumeError::State)?;
        manifest.verify(path)?;
        Ok(())
    }

    fn pointer_candidate(&self) -> Option<(u64, PathBuf)> {
        let name = fs::read_to_string(self.dir.join(LATEST_FILE)).ok()?;
        let name = name.trim();
        // The pointer must name a direct child of the store.
        if name.contains(['/', '\\']) || !name.starts_with("ckpt-") {
            return None;
        }
        let step = name.strip_prefix("ckpt-")?.parse::<u64>().ok()?;
        Some((step, self.dir.join(name)))
    }
}

// ---------------------------------------------------------------------------
// Trainer-state codec (`trainer.qrws`)
// ---------------------------------------------------------------------------

const STATE_MAGIC: &[u8; 4] = b"QRWS";
const STATE_VERSION: u32 = 1;

/// Everything beyond the two models' weights that Algorithm 1 needs to
/// continue bit-for-bit: optimizer moments, schedule position, warm-up
/// mode, shuffle-RNG state, the training curve so far, and the sentinel
/// counters.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainerState {
    pub config: TrainConfig,
    pub d_model: usize,
    pub step: u64,
    pub mode: TrainMode,
    pub rng_state: u64,
    pub adam_steps: u64,
    /// Moments of the forward model's parameters, keyed by name.
    pub adam_forward: Vec<(String, Vec<f32>, Vec<f32>)>,
    /// Moments of the backward model's parameters, keyed by name.
    pub adam_backward: Vec<(String, Vec<f32>, Vec<f32>)>,
    pub curve: TrainingCurve,
    pub health: TrainHealthReport,
    /// Spike-detector baseline (recent healthy losses) and consecutive
    /// spike count — persisted so a resumed run replays sentinel
    /// decisions exactly as the uninterrupted run would.
    pub spike_window_vals: Vec<f32>,
    pub spike_consecutive: u32,
}

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> ByteWriter {
        ByteWriter { buf: Vec::new() }
    }

    fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    fn u32(&mut self, x: u32) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    fn f32(&mut self, x: f32) {
        self.u32(x.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn f32s(&mut self, xs: &[f32]) {
        self.u32(xs.len() as u32);
        for &x in xs {
            self.f32(x);
        }
    }

    fn seal(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.u32(crc);
        self.buf
    }
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!("trainer state truncated at byte {}", self.pos));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| "trainer state contains non-UTF-8 string".to_string())
    }

    fn f32s(&mut self) -> Result<Vec<f32>, String> {
        let n = self.u32()? as usize;
        if self.buf.len() - self.pos < n.saturating_mul(4) {
            return Err("trainer state float vector overruns buffer".to_string());
        }
        (0..n).map(|_| self.f32()).collect()
    }
}

/// One parameter's Adam moments: `(name, m, v)`.
type Moments = Vec<(String, Vec<f32>, Vec<f32>)>;

fn encode_moments(w: &mut ByteWriter, moments: &Moments) {
    w.u32(moments.len() as u32);
    for (name, m, v) in moments {
        w.str(name);
        w.f32s(m);
        w.f32s(v);
    }
}

fn decode_moments(r: &mut ByteReader) -> Result<Moments, String> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let name = r.str()?;
        let m = r.f32s()?;
        let v = r.f32s()?;
        if m.len() != v.len() {
            return Err(format!("moment vectors for '{name}' have mismatched lengths"));
        }
        out.push((name, m, v));
    }
    Ok(out)
}

/// Serializes a [`TrainerState`] to the sealed `QRWS` layout.
pub fn encode_state(state: &TrainerState) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.buf.extend_from_slice(STATE_MAGIC);
    w.u32(STATE_VERSION);
    let c = &state.config;
    w.u64(c.steps);
    w.u64(c.warmup_steps);
    w.u64(c.batch_size as u64);
    w.u64(c.beam_width as u64);
    w.u64(c.top_n as u64);
    w.f32(c.lambda);
    w.f32(c.lr_factor);
    w.u64(c.noam_warmup);
    w.f32(c.grad_clip);
    w.u64(c.eval_every);
    w.u64(c.seed);
    w.u8(c.parallel as u8);
    w.u64(c.spike_window as u64);
    w.f32(c.spike_factor);
    w.u32(c.spike_patience);
    w.u32(c.max_rollbacks);
    w.u64(c.checkpoint_every);
    w.u64(state.d_model as u64);
    w.u64(state.step);
    w.u8(match state.mode {
        TrainMode::Separate => 0,
        TrainMode::Joint => 1,
    });
    w.u64(state.rng_state);
    w.u64(state.adam_steps);
    encode_moments(&mut w, &state.adam_forward);
    encode_moments(&mut w, &state.adam_backward);
    w.u32(state.curve.points.len() as u32);
    for p in &state.curve.points {
        w.u64(p.step);
        w.f32(p.ppl_q2t);
        w.f32(p.ppl_t2q);
        w.f32(p.log_prob);
        w.f32(p.accuracy);
        w.u64(p.skipped_steps);
        w.u64(p.rollbacks);
        w.u64(p.nan_grad_events);
    }
    let h = &state.health;
    w.u64(h.nan_loss_events);
    w.u64(h.nan_grad_events);
    w.u64(h.skipped_steps);
    w.u64(h.loss_spikes);
    w.u64(h.rollbacks);
    w.u64(h.checkpoints_written);
    w.f32s(&state.spike_window_vals);
    w.u32(state.spike_consecutive);
    w.seal()
}

/// Decodes a sealed `QRWS` buffer, rejecting truncation, corruption
/// (CRC), bad magic and unknown versions.
pub fn decode_state(bytes: &[u8]) -> Result<TrainerState, ResumeError> {
    if bytes.len() < 12 {
        return Err(ResumeError::State("trainer state too short".into()));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(body) != stored {
        return Err(ResumeError::State("trainer state checksum mismatch".into()));
    }
    let mut r = ByteReader { buf: body, pos: 0 };
    let run = |r: &mut ByteReader| -> Result<TrainerState, String> {
        if r.take(4)? != STATE_MAGIC {
            return Err("bad trainer state magic".into());
        }
        let version = r.u32()?;
        if version != STATE_VERSION {
            return Err(format!("unsupported trainer state version {version}"));
        }
        let config = TrainConfig {
            steps: r.u64()?,
            warmup_steps: r.u64()?,
            batch_size: r.u64()? as usize,
            beam_width: r.u64()? as usize,
            top_n: r.u64()? as usize,
            lambda: r.f32()?,
            lr_factor: r.f32()?,
            noam_warmup: r.u64()?,
            grad_clip: r.f32()?,
            eval_every: r.u64()?,
            seed: r.u64()?,
            parallel: r.u8()? != 0,
            spike_window: r.u64()? as usize,
            spike_factor: r.f32()?,
            spike_patience: r.u32()?,
            max_rollbacks: r.u32()?,
            checkpoint_every: r.u64()?,
        };
        let d_model = r.u64()? as usize;
        let step = r.u64()?;
        let mode = match r.u8()? {
            0 => TrainMode::Separate,
            1 => TrainMode::Joint,
            other => return Err(format!("unknown train mode tag {other}")),
        };
        let rng_state = r.u64()?;
        let adam_steps = r.u64()?;
        let adam_forward = decode_moments(r)?;
        let adam_backward = decode_moments(r)?;
        let n_points = r.u32()? as usize;
        let mut curve = TrainingCurve::default();
        for _ in 0..n_points {
            curve.points.push(CurvePoint {
                step: r.u64()?,
                ppl_q2t: r.f32()?,
                ppl_t2q: r.f32()?,
                log_prob: r.f32()?,
                accuracy: r.f32()?,
                skipped_steps: r.u64()?,
                rollbacks: r.u64()?,
                nan_grad_events: r.u64()?,
            });
        }
        let health = TrainHealthReport {
            nan_loss_events: r.u64()?,
            nan_grad_events: r.u64()?,
            skipped_steps: r.u64()?,
            loss_spikes: r.u64()?,
            rollbacks: r.u64()?,
            checkpoints_written: r.u64()?,
        };
        let spike_window_vals = r.f32s()?;
        let spike_consecutive = r.u32()?;
        if r.pos != r.buf.len() {
            return Err(format!("{} trailing bytes in trainer state", r.buf.len() - r.pos));
        }
        Ok(TrainerState {
            config,
            d_model,
            step,
            mode,
            rng_state,
            adam_steps,
            adam_forward,
            adam_backward,
            curve,
            health,
            spike_window_vals,
            spike_consecutive,
        })
    };
    run(&mut r).map_err(ResumeError::State)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::testutil::TestDir;

    fn sample_state() -> TrainerState {
        TrainerState {
            config: TrainConfig { steps: 12, seed: 5, ..Default::default() },
            d_model: 32,
            step: 7,
            mode: TrainMode::Joint,
            rng_state: 0xDEAD_BEEF_1234_5678,
            adam_steps: 14,
            adam_forward: vec![("enc.w".into(), vec![0.1, -0.5], vec![0.01, 0.02])],
            adam_backward: vec![("dec.w".into(), vec![1.5], vec![2.5])],
            curve: TrainingCurve {
                points: vec![CurvePoint {
                    step: 5,
                    ppl_q2t: 3.5,
                    ppl_t2q: 4.5,
                    log_prob: -2.0,
                    accuracy: 0.5,
                    skipped_steps: 1,
                    rollbacks: 0,
                    nan_grad_events: 2,
                }],
            },
            health: TrainHealthReport {
                nan_loss_events: 1,
                nan_grad_events: 2,
                skipped_steps: 1,
                loss_spikes: 3,
                rollbacks: 0,
                checkpoints_written: 4,
            },
            spike_window_vals: vec![2.25, 2.5],
            spike_consecutive: 1,
        }
    }

    #[test]
    fn trainer_state_round_trips() {
        let state = sample_state();
        let bytes = encode_state(&state);
        let decoded = decode_state(&bytes).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn trainer_state_rejects_corruption_and_truncation() {
        let bytes = encode_state(&sample_state());
        for cut in 0..bytes.len() {
            assert!(decode_state(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(decode_state(&bad).is_err(), "bit flip at byte {i} accepted");
        }
    }

    #[test]
    fn store_commits_and_finds_latest() {
        let dir = TestDir::new("ckpt-store");
        let store = CheckpointStore::new(dir.path());
        assert!(matches!(store.latest_valid(), Err(ResumeError::NoCheckpoint)));
        store.save(5, &[("a.bin", b"aaa".to_vec()), ("b.bin", b"b".to_vec())]).unwrap();
        store.save(10, &[("a.bin", b"AAA".to_vec()), ("b.bin", b"B".to_vec())]).unwrap();
        let (step, path) = store.latest_valid().unwrap();
        assert_eq!(step, 10);
        assert_eq!(fs::read(path.join("a.bin")).unwrap(), b"AAA");
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_good() {
        let dir = TestDir::new("ckpt-fallback");
        let store = CheckpointStore::new(dir.path());
        store.save(1, &[("a.bin", b"one".to_vec())]).unwrap();
        store.save(2, &[("a.bin", b"two".to_vec())]).unwrap();
        // Corrupt the newest member after commit (bit-flip on disk).
        let victim = dir.path().join("ckpt-000000000002/a.bin");
        let mut bytes = fs::read(&victim).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&victim, bytes).unwrap();
        let (step, path) = store.latest_valid().unwrap();
        assert_eq!(step, 1);
        assert_eq!(fs::read(path.join("a.bin")).unwrap(), b"one");
    }

    #[test]
    fn uncommitted_dir_is_never_selected() {
        let dir = TestDir::new("ckpt-uncommitted");
        let store = CheckpointStore::new(dir.path());
        store.save(3, &[("a.bin", b"good".to_vec())]).unwrap();
        // A crash right before the manifest write: members exist, no
        // MANIFEST. Also point LATEST at it, as if the pointer write from
        // a previous run survived but the manifest did not.
        let partial = dir.path().join("ckpt-000000000009");
        fs::create_dir_all(&partial).unwrap();
        fs::write(partial.join("a.bin"), b"partial").unwrap();
        fs::write(dir.path().join(LATEST_FILE), "ckpt-000000000009").unwrap();
        let (step, _) = store.latest_valid().unwrap();
        assert_eq!(step, 3);
    }

    #[test]
    fn malicious_latest_pointer_is_ignored() {
        let dir = TestDir::new("ckpt-pointer");
        let store = CheckpointStore::new(dir.path());
        store.save(2, &[("a.bin", b"ok".to_vec())]).unwrap();
        fs::write(dir.path().join(LATEST_FILE), "../../etc").unwrap();
        let (step, _) = store.latest_valid().unwrap();
        assert_eq!(step, 2);
    }
}
