//! The direct query→query serving model of §III-G.
//!
//! For online latency the paper distills the two-hop pipeline into a single
//! translation model trained on synonymous query pairs (queries sharing
//! clicks on the same items), and further swaps the transformer decoder for
//! an RNN decoder while keeping the transformer encoder (the "hybrid"
//! model of Figure 9; Table V motivates the swap).

use std::cell::RefCell;

use qrw_tensor::rng::StdRng;

use qrw_data::Pair;
use qrw_nmt::{top_n_sampling, Seq2Seq, TopNSampling};
use qrw_tensor::optim::{Adam, AdamConfig, NoamSchedule};
use qrw_tensor::Tape;
use qrw_text::Vocab;

use crate::pipeline::QueryRewriter;

/// A point on a q2q training curve (Figure 9 metrics).
#[derive(Clone, Copy, Debug)]
pub struct Q2QPoint {
    pub step: u64,
    /// Per-token perplexity on eval pairs.
    pub ppl: f32,
    /// Teacher-forced next-token accuracy on eval pairs.
    pub accuracy: f32,
    /// Mean `log P(tgt|src)` on eval pairs.
    pub log_prob: f32,
}

/// Q2Q training parameters.
#[derive(Clone, Copy, Debug)]
pub struct Q2QTrainConfig {
    pub steps: u64,
    pub batch_size: usize,
    pub lr_factor: f32,
    pub noam_warmup: u64,
    pub grad_clip: f32,
    pub eval_every: u64,
    pub seed: u64,
}

impl Default for Q2QTrainConfig {
    fn default() -> Self {
        Q2QTrainConfig {
            steps: 200,
            batch_size: 8,
            lr_factor: 0.6,
            noam_warmup: 40,
            grad_clip: 5.0,
            eval_every: 20,
            seed: 131,
        }
    }
}

/// Trains a single translation model on synonymous query pairs; returns
/// the metric curve.
pub fn train_q2q(
    model: &Seq2Seq,
    data: &[Pair],
    eval: &[Pair],
    config: &Q2QTrainConfig,
) -> Vec<Q2QPoint> {
    assert!(!data.is_empty(), "q2q training data must be non-empty");
    let mut adam = Adam::new(AdamConfig::default());
    let schedule = NoamSchedule::new(config.lr_factor, model.config().d_model, config.noam_warmup);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut curve = Vec::new();

    for step in 1..=config.steps {
        model.params().zero_grads();
        for _ in 0..config.batch_size {
            let pair = &data[rng.gen_range(0..data.len())];
            if pair.src.is_empty() || pair.tgt.is_empty() {
                continue;
            }
            let tape = Tape::new();
            let dropout = model.config().dropout;
            let mut ctx = if dropout > 0.0 {
                Some(qrw_nmt::layers::TrainCtx { rng: &mut rng, dropout })
            } else {
                None
            };
            let (nll, _) = model.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut ctx);
            tape.backward(nll);
        }
        let scale = 1.0 / config.batch_size as f32;
        for p in model.params() {
            p.scale_grad(scale);
        }
        model.params().clip_grad_norm(config.grad_clip);
        adam.step_with_lr(model.params(), schedule.lr(step));

        let at_eval = config.eval_every > 0 && step % config.eval_every == 0;
        if at_eval || step == config.steps {
            curve.push(evaluate_q2q(model, eval, step));
        }
    }
    curve
}

/// Computes the Figure 9 metrics for a q2q model on eval pairs.
pub fn evaluate_q2q(model: &Seq2Seq, eval: &[Pair], step: u64) -> Q2QPoint {
    let mut nll_total = 0.0f64;
    let mut tokens = 0usize;
    let mut correct = 0usize;
    let mut lp_total = 0.0f64;
    let mut n = 0usize;
    for pair in eval {
        if pair.src.is_empty() || pair.tgt.is_empty() {
            continue;
        }
        let tape = Tape::new();
        let (nll, count) = model.nll_on_tape(&tape, &pair.src, &pair.tgt, &mut None);
        nll_total += nll.item() as f64;
        tokens += count;
        lp_total += -nll.item() as f64;
        n += 1;
        // Teacher-forced argmax accuracy.
        let memory = model.encode(&pair.src);
        let mut state = model.start_state(&memory);
        let mut prefix = vec![qrw_text::BOS];
        for &tok in pair.tgt.iter().chain(std::iter::once(&qrw_text::EOS)) {
            let lps = model.next_log_probs(&memory, &mut state, &prefix);
            let argmax = lps
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0);
            if argmax == tok {
                correct += 1;
            }
            prefix.push(tok);
        }
    }
    Q2QPoint {
        step,
        ppl: ((nll_total / tokens.max(1) as f64).exp()) as f32,
        accuracy: correct as f32 / tokens.max(1) as f32,
        log_prob: (lp_total / n.max(1) as f64) as f32,
    }
}

/// A [`QueryRewriter`] over a trained q2q model (the online serving path
/// for long-tail queries).
pub struct Q2QRewriter<'m> {
    model: &'m Seq2Seq,
    vocab: &'m Vocab,
    pub top_n: usize,
    rng: RefCell<StdRng>,
    name: String,
}

impl<'m> Q2QRewriter<'m> {
    pub fn new(model: &'m Seq2Seq, vocab: &'m Vocab, top_n: usize, seed: u64) -> Self {
        Q2QRewriter {
            model,
            vocab,
            top_n,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            name: "q2q-direct".to_string(),
        }
    }

    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl QueryRewriter for Q2QRewriter<'_> {
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let ids = self.vocab.encode(query);
        let rng = &mut *self.rng.borrow_mut();
        let hyps = top_n_sampling(self.model, &ids, TopNSampling { k, n: self.top_n }, rng);
        let mut out: Vec<Vec<String>> = Vec::new();
        for h in hyps {
            let tokens: Vec<String> = h
                .tokens
                .iter()
                .filter(|&&id| id >= qrw_text::NUM_SPECIALS)
                .map(|&id| self.vocab.token(id).to_string())
                .collect();
            if tokens.is_empty() || tokens == query || out.contains(&tokens) {
                continue;
            }
            out.push(tokens);
            if out.len() == k {
                break;
            }
        }
        out
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn decode_stats(&self) -> Option<qrw_nmt::DecodeStats> {
        Some(self.model.decode_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::{ComponentKind, ModelConfig};

    fn toy_pairs() -> Vec<Pair> {
        let mut pairs = Vec::new();
        for a in 4..9usize {
            pairs.push(Pair { src: vec![a, 10], tgt: vec![a, 11], weight: 2 });
            pairs.push(Pair { src: vec![a, 11], tgt: vec![a, 10], weight: 2 });
        }
        pairs
    }

    #[test]
    fn q2q_training_reduces_perplexity() {
        let model = Seq2Seq::new(ModelConfig::tiny_transformer(16), 21);
        let data = toy_pairs();
        let cfg = Q2QTrainConfig { steps: 50, batch_size: 4, eval_every: 0, ..Default::default() };
        let before = evaluate_q2q(&model, &data, 0);
        let curve = train_q2q(&model, &data, &data, &cfg);
        let after = curve.last().unwrap();
        assert!(after.ppl < before.ppl, "{} -> {}", before.ppl, after.ppl);
        assert!(after.accuracy >= before.accuracy);
    }

    #[test]
    fn hybrid_config_trains_too() {
        let mut cfg = ModelConfig::tiny_transformer(16);
        cfg.dec_kind = ComponentKind::Rnn;
        let model = Seq2Seq::new(cfg, 22);
        let data = toy_pairs();
        let tc = Q2QTrainConfig { steps: 30, batch_size: 4, eval_every: 0, ..Default::default() };
        let curve = train_q2q(&model, &data, &data[..4], &tc);
        assert!(!curve.is_empty());
        assert!(curve.last().unwrap().ppl.is_finite());
    }

    #[test]
    fn rewriter_excludes_original_and_dedups() {
        let model = Seq2Seq::new(ModelConfig::tiny_transformer(16), 23);
        let mut vocab = Vocab::new();
        for i in 0..12 {
            vocab.insert(&format!("t{i}"));
        }
        let rw = Q2QRewriter::new(&model, &vocab, 6, 7);
        let query: Vec<String> = vec!["t2".into(), "t6".into()];
        let rewrites = rw.rewrite(&query, 3);
        assert!(rewrites.len() <= 3);
        let mut sorted = rewrites.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), rewrites.len());
        assert!(rewrites.iter().all(|r| *r != query));
    }

    #[test]
    fn evaluate_handles_empty_eval() {
        let model = Seq2Seq::new(ModelConfig::tiny_transformer(16), 24);
        let p = evaluate_q2q(&model, &[], 0);
        assert_eq!(p.accuracy, 0.0);
    }
}
