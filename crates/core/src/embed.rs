//! Skip-gram-with-negative-sampling (SGNS) token embeddings.
//!
//! Table VII's cosine-similarity metric uses "an embedding retrieval model
//! in our production" (DPSR). The equivalent we can train from the same
//! click data is a classic SGNS model over query-title co-click text:
//! each (query, clicked title) pair forms one pseudo-sentence, so query
//! terms and the title terms they co-occur with land close together in
//! embedding space — exactly the semantic-similarity signal the paper's
//! metric taps.

use qrw_tensor::rng::StdRng;

/// SGNS hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct SgnsConfig {
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub epochs: usize,
    pub lr: f32,
    pub seed: u64,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig { dim: 24, window: 4, negatives: 4, epochs: 8, lr: 0.05, seed: 41 }
    }
}

/// Trained token embeddings.
pub struct EmbeddingModel {
    dim: usize,
    /// Input vectors, `vocab x dim`, row-major.
    vectors: Vec<f32>,
    vocab_size: usize,
}

impl EmbeddingModel {
    /// Trains SGNS over `sentences` of token ids drawn from `0..vocab_size`.
    pub fn train(sentences: &[Vec<usize>], vocab_size: usize, config: &SgnsConfig) -> Self {
        assert!(vocab_size > 0 && config.dim > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dim = config.dim;
        let init = |rng: &mut StdRng| -> Vec<f32> {
            (0..vocab_size * dim).map(|_| (rng.gen::<f32>() - 0.5) / dim as f32).collect()
        };
        let mut input = init(&mut rng);
        let mut output = vec![0.0f32; vocab_size * dim];

        // Unigram^0.75 negative-sampling table.
        let mut counts = vec![1.0f64; vocab_size];
        for s in sentences {
            for &t in s {
                assert!(t < vocab_size, "token id {t} out of range {vocab_size}");
                counts[t] += 1.0;
            }
        }
        let weights: Vec<f64> = counts.iter().map(|c| c.powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut cum = Vec::with_capacity(vocab_size);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cum.push(acc);
        }
        let draw_negative = |rng: &mut StdRng| -> usize {
            let x = rng.gen::<f64>();
            match cum.binary_search_by(|p| p.total_cmp(&x)) {
                Ok(i) | Err(i) => i.min(vocab_size - 1),
            }
        };

        for _ in 0..config.epochs {
            for sentence in sentences {
                for (center_pos, &center) in sentence.iter().enumerate() {
                    let lo = center_pos.saturating_sub(config.window);
                    let hi = (center_pos + config.window + 1).min(sentence.len());
                    for (ctx_pos, &ctx) in sentence.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == center_pos {
                            continue;
                        }
                        sgns_update(
                            &mut input,
                            &mut output,
                            dim,
                            center,
                            ctx,
                            1.0,
                            config.lr,
                        );
                        for _ in 0..config.negatives {
                            let neg = draw_negative(&mut rng);
                            if neg != ctx {
                                sgns_update(
                                    &mut input,
                                    &mut output,
                                    dim,
                                    center,
                                    neg,
                                    0.0,
                                    config.lr,
                                );
                            }
                        }
                    }
                }
            }
        }
        EmbeddingModel { dim, vectors: input, vocab_size }
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The embedding row of one token.
    pub fn token_vector(&self, id: usize) -> &[f32] {
        assert!(id < self.vocab_size, "token id out of range");
        &self.vectors[id * self.dim..(id + 1) * self.dim]
    }

    /// Mean-pooled embedding of a token sequence (zero vector if empty).
    pub fn embed(&self, ids: &[usize]) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        if ids.is_empty() {
            return v;
        }
        for &id in ids {
            for (a, b) in v.iter_mut().zip(self.token_vector(id)) {
                *a += b;
            }
        }
        let inv = 1.0 / ids.len() as f32;
        v.iter_mut().for_each(|x| *x *= inv);
        v
    }

    /// Cosine similarity of two token sequences' embeddings.
    pub fn cosine(&self, a: &[usize], b: &[usize]) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

fn sgns_update(
    input: &mut [f32],
    output: &mut [f32],
    dim: usize,
    center: usize,
    target: usize,
    label: f32,
    lr: f32,
) {
    let ci = center * dim;
    let ti = target * dim;
    let mut dot = 0.0f32;
    for d in 0..dim {
        dot += input[ci + d] * output[ti + d];
    }
    let pred = 1.0 / (1.0 + (-dot).exp());
    let g = lr * (label - pred);
    for d in 0..dim {
        let in_v = input[ci + d];
        let out_v = output[ti + d];
        input[ci + d] += g * out_v;
        output[ti + d] += g * in_v;
    }
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two token "topics" that never co-occur: {4,5,6} and {7,8,9}.
    fn topic_sentences() -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for _ in 0..30 {
            out.push(vec![4, 5, 6, 4, 5, 6]);
            out.push(vec![7, 8, 9, 7, 8, 9]);
        }
        out
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn co_occurring_tokens_are_closer_than_cross_topic() {
        let model = EmbeddingModel::train(&topic_sentences(), 10, &SgnsConfig::default());
        let within = cosine(model.token_vector(4), model.token_vector(5));
        let across = cosine(model.token_vector(4), model.token_vector(8));
        assert!(
            within > across + 0.2,
            "within-topic {within} not above cross-topic {across}"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let a = EmbeddingModel::train(&topic_sentences(), 10, &SgnsConfig::default());
        let b = EmbeddingModel::train(&topic_sentences(), 10, &SgnsConfig::default());
        assert_eq!(a.vectors, b.vectors);
    }

    #[test]
    fn embed_means_token_vectors() {
        let model = EmbeddingModel::train(&topic_sentences(), 10, &SgnsConfig::default());
        let e = model.embed(&[4, 5]);
        for (d, &ed) in e.iter().enumerate() {
            let mean = (model.token_vector(4)[d] + model.token_vector(5)[d]) / 2.0;
            assert!((ed - mean).abs() < 1e-6);
        }
        assert!(model.embed(&[]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn sequence_cosine_reflects_topic_overlap() {
        let model = EmbeddingModel::train(&topic_sentences(), 10, &SgnsConfig::default());
        let same = model.cosine(&[4, 5], &[5, 6]);
        let diff = model.cosine(&[4, 5], &[8, 9]);
        assert!(same > diff);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_tokens() {
        let sentences = vec![vec![99usize]];
        let _ = EmbeddingModel::train(&sentences, 10, &SgnsConfig::default());
    }
}
