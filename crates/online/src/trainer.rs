//! The online training loop: incremental fine-tuning on harvested click
//! pairs, crash-safe checkpoints, and zero-downtime model hot-swap.
//!
//! [`OnlineLoop`] owns a [`JointModel`] and the paper's [`CyclicTrainer`]
//! and runs beside serving. Each [`train_tick`](OnlineLoop::train_tick):
//!
//! 1. trains `config.train.steps` further steps on the feedback buffer
//!    (click-weighted sampling, divergence sentinels, the works);
//! 2. commits a full-state checkpoint through the atomic
//!    persist-then-publish `CheckpointStore` discipline — the snapshot
//!    exists durably *before* any traffic can reach the new weights;
//! 3. freezes the forward model into an immutable [`ContextQ2Q`] (a
//!    serialize round-trip, so the published weights share nothing
//!    mutable with the training copy) and publishes it through the
//!    epoch-pinned [`ModelStore`].
//!
//! A failed checkpoint aborts the swap: serving stays on the last good
//! epoch, the failure is counted in [`SwapStats`], and the next tick
//! retries — mirroring how the live-catalog writer treats a failed
//! persist. A killed process resumes via [`OnlineLoop::resume`]: the
//! trainer restarts bit-for-bit from the newest sealed checkpoint and
//! re-publishes it, while the serving tier has kept answering from the
//! epoch it already held (the store never regresses).
//!
//! With a tracer attached each tick records a `train_tick` span (minted
//! trace; `tick`, `buffer`, `steps` attributes) with a child
//! `model_swap` span (`epoch`, `ok`).

use std::io;
use std::sync::Arc;

use qrw_core::{
    CheckpointStore, CyclicTrainer, JointModel, ResumeError, TrainConfig, TrainHealthReport,
    TrainMode, TrainingCurve,
};
use qrw_data::Pair;
use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_obs::Tracer;
use qrw_search::{ModelStore, SwapStats};
use qrw_tensor::serialize;
use qrw_text::Vocab;

use crate::context::ContextQ2Q;

/// Published session models all carry this name, so a response's rung
/// attribution is a pure function of the pinned epoch (the replay tests
/// depend on it).
pub const ONLINE_MODEL_NAME: &str = "q2q-session";

/// Online-loop parameters.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Architecture of the session model (vocab must match the serving
    /// vocabulary).
    pub model: ModelConfig,
    /// Per-tick training budget (`steps` further steps per tick).
    pub train: TrainConfig,
    /// Warm-up vs joint cyclic training.
    pub mode: TrainMode,
    /// Sampling pool for the published rewriter's decoder.
    pub top_n: usize,
    /// Seed for the published rewriter's per-session RNG derivation and
    /// the frozen models' construction.
    pub rewriter_seed: u64,
}

impl OnlineConfig {
    /// A small configuration suitable for tests and smoke benches.
    pub fn smoke(vocab_size: usize) -> Self {
        OnlineConfig {
            model: ModelConfig::tiny_transformer(vocab_size),
            train: TrainConfig { steps: 6, warmup_steps: 2, batch_size: 2, ..TrainConfig::smoke() },
            mode: TrainMode::Joint,
            top_n: 8,
            rewriter_seed: 41,
        }
    }
}

/// What one [`OnlineLoop::train_tick`] did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TickReport {
    /// False when the buffer was empty (nothing ran at all).
    pub trained: bool,
    /// Trainer step counter after the tick.
    pub steps: u64,
    /// The model epoch published by this tick, if the swap went through.
    pub published_epoch: Option<u64>,
    /// True when the checkpoint (or freeze) failed and serving stayed on
    /// the last good epoch.
    pub swap_failed: bool,
}

/// Combined health of the closed loop: training sentinels plus swap
/// telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineHealth {
    pub train: TrainHealthReport,
    pub swaps: SwapStats,
    pub ticks: u64,
}

/// The trainer side of the closed loop (serving holds the
/// [`ModelStore`]; this owns the mutable weights).
pub struct OnlineLoop {
    model: JointModel,
    trainer: CyclicTrainer,
    vocab: Arc<Vocab>,
    store: Arc<ModelStore>,
    config: OnlineConfig,
    tracer: Option<Tracer>,
    ticks: u64,
}

impl OnlineLoop {
    /// A fresh loop: untrained joint model, trainer with `checkpoints`
    /// attached.
    pub fn new(
        config: OnlineConfig,
        vocab: Arc<Vocab>,
        store: Arc<ModelStore>,
        checkpoints: CheckpointStore,
    ) -> Self {
        let model = JointModel::new(
            Seq2Seq::new(config.model.clone(), config.rewriter_seed),
            Seq2Seq::new(config.model.clone(), config.rewriter_seed ^ 1),
        );
        let trainer =
            CyclicTrainer::new(config.train.clone(), config.model.d_model).with_checkpoints(checkpoints);
        OnlineLoop { model, trainer, vocab, store, config, tracer: None, ticks: 0 }
    }

    /// Rebuilds a killed loop from the newest sealed checkpoint under
    /// `checkpoints`: weights, optimizer moments, RNG and curve restore
    /// bit-for-bit; the tick counter restarts (it is process telemetry,
    /// like the health counters).
    pub fn resume(
        config: OnlineConfig,
        vocab: Arc<Vocab>,
        store: Arc<ModelStore>,
        checkpoints: CheckpointStore,
    ) -> Result<Self, ResumeError> {
        let model = JointModel::new(
            Seq2Seq::new(config.model.clone(), config.rewriter_seed),
            Seq2Seq::new(config.model.clone(), config.rewriter_seed ^ 1),
        );
        let (trainer, mode) = CyclicTrainer::resume_with_store(checkpoints, &model)?;
        let config = OnlineConfig { mode, ..config };
        Ok(OnlineLoop { model, trainer, vocab, store, config, tracer: None, ticks: 0 })
    }

    /// Attaches a span tracer for `train_tick` / `model_swap` spans.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    pub fn store(&self) -> &Arc<ModelStore> {
        &self.store
    }

    pub fn model(&self) -> &JointModel {
        &self.model
    }

    pub fn step_count(&self) -> u64 {
        self.trainer.step_count()
    }

    pub fn curve(&self) -> &TrainingCurve {
        self.trainer.curve()
    }

    pub fn health_report(&self) -> OnlineHealth {
        OnlineHealth {
            train: self.trainer.health_report(),
            swaps: self.store.swap_stats(),
            ticks: self.ticks,
        }
    }

    /// Freezes the current forward weights into an immutable serving
    /// model: serialize → fresh [`Seq2Seq`] → load, so the published
    /// rewriter shares no mutable state with the training copy.
    fn freeze(&self) -> io::Result<ContextQ2Q> {
        let bytes = serialize::save(self.model.forward.params());
        let frozen = Seq2Seq::new(self.config.model.clone(), self.config.rewriter_seed);
        serialize::load(frozen.params(), &bytes)
            .map_err(|e| io::Error::other(format!("freeze failed: {e:?}")))?;
        Ok(ContextQ2Q::new(
            Arc::new(frozen),
            Arc::clone(&self.vocab),
            self.config.top_n,
            self.config.rewriter_seed,
        )
        .with_name(ONLINE_MODEL_NAME))
    }

    /// Publishes the current weights without training — e.g. right after
    /// [`resume`](Self::resume), so serving picks the restored model up.
    pub fn publish_now(&mut self) -> io::Result<u64> {
        match self.freeze() {
            Ok(rewriter) => Ok(self.store.publish(Arc::new(rewriter))),
            Err(e) => {
                self.store.record_swap_failure();
                Err(e)
            }
        }
    }

    /// One closed-loop tick: train on `data`, checkpoint, hot-swap.
    /// An empty buffer is a no-op (no step, no checkpoint, no swap).
    pub fn train_tick(&mut self, data: &[Pair], eval: &[Pair]) -> TickReport {
        self.ticks += 1;
        let mut report = TickReport { steps: self.trainer.step_count(), ..Default::default() };
        if data.is_empty() {
            return report;
        }
        let tracer = self.tracer.clone();
        let mut tick_span = tracer.as_ref().map(|t| {
            let mut s = t.span(t.next_trace(), None, "train_tick");
            s.attr("tick", self.ticks);
            s.attr("buffer", data.len() as u64);
            s
        });
        let tick_ids = tick_span.as_ref().map(|s| (s.trace(), s.id()));

        self.trainer.train(&self.model, data, eval, self.config.mode);
        report.trained = true;
        report.steps = self.trainer.step_count();
        if let Some(s) = tick_span.as_mut() {
            s.attr("steps", report.steps);
        }

        // Persist-then-publish: the checkpoint must be durable before the
        // swap; a failed persist leaves serving on the last good epoch.
        let frozen = self
            .trainer
            .save_checkpoint(&self.model, self.config.mode)
            .and_then(|()| self.freeze());
        let mut swap_span = tracer
            .as_ref()
            .zip(tick_ids)
            .map(|(t, (trace, id))| t.span(trace, Some(id), "model_swap"));
        match frozen {
            Ok(rewriter) => {
                let epoch = self.store.publish(Arc::new(rewriter));
                report.published_epoch = Some(epoch);
                if let Some(s) = swap_span.as_mut() {
                    s.attr("epoch", epoch);
                    s.attr("ok", true);
                }
            }
            Err(_) => {
                self.store.record_swap_failure();
                report.swap_failed = true;
                if let Some(s) = swap_span.as_mut() {
                    s.attr("epoch", self.store.swap_stats().current_epoch);
                    s.attr("ok", false);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    use qrw_core::{TrainFaultInjector, WriteSink};

    /// Unique temp dir per test invocation.
    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let pid = std::process::id();
        let dir = std::env::temp_dir().join(format!("qrw_online_{tag}_{pid}_{seq}"));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_vocab() -> Arc<Vocab> {
        let mut vocab = Vocab::new();
        for i in 0..16 {
            vocab.insert(&format!("w{i}"));
        }
        Arc::new(vocab)
    }

    fn tiny_pairs(vocab: &Vocab) -> Vec<Pair> {
        let t = |s: &str| -> Vec<usize> {
            vocab.encode(&s.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        };
        vec![
            Pair { src: t("w1 w2"), tgt: t("w3"), weight: 2 },
            Pair { src: t("w4"), tgt: t("w5 w6"), weight: 1 },
            Pair { src: t("w7 w8"), tgt: t("w9"), weight: 1 },
        ]
    }

    fn baseline_store(vocab: &Arc<Vocab>, config: &OnlineConfig) -> Arc<ModelStore> {
        let day0 = ContextQ2Q::new(
            Arc::new(Seq2Seq::new(config.model.clone(), config.rewriter_seed)),
            Arc::clone(vocab),
            config.top_n,
            config.rewriter_seed,
        )
        .with_name(ONLINE_MODEL_NAME);
        ModelStore::new(Arc::new(day0))
    }

    #[test]
    fn a_tick_trains_checkpoints_and_publishes() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let store = baseline_store(&vocab, &config);
        let dir = temp_dir("tick");
        let mut lp = OnlineLoop::new(
            config.clone(),
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::new(&dir),
        );
        let pairs = tiny_pairs(&vocab);
        let report = lp.train_tick(&pairs, &pairs[..1]);
        assert!(report.trained);
        assert_eq!(report.steps, config.train.steps);
        assert_eq!(report.published_epoch, Some(2));
        assert!(!report.swap_failed);
        let health = lp.health_report();
        assert_eq!(health.swaps.current_epoch, 2);
        assert_eq!(health.train.checkpoints_written, 1);
        assert_eq!(health.ticks, 1);
        // The published model serves under the stable name.
        let pin = store.pin();
        assert_eq!(pin.epoch(), 2);
        assert_eq!(pin.rewriter().name(), ONLINE_MODEL_NAME);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_buffer_is_a_noop() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let store = baseline_store(&vocab, &config);
        let dir = temp_dir("noop");
        let mut lp =
            OnlineLoop::new(config, Arc::clone(&vocab), Arc::clone(&store), CheckpointStore::new(&dir));
        let report = lp.train_tick(&[], &[]);
        assert!(!report.trained);
        assert_eq!(report.published_epoch, None);
        assert_eq!(lp.step_count(), 0);
        assert_eq!(store.swap_stats().current_epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_checkpoint_degrades_to_the_last_good_epoch() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let store = baseline_store(&vocab, &config);
        let dir = temp_dir("degrade");
        // Every write fails cleanly: the persist-then-publish discipline
        // must refuse to swap.
        let sink = Box::new(TrainFaultInjector::disk_full_at_write(0));
        let mut lp = OnlineLoop::new(
            config,
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::with_sink(&dir, sink),
        );
        let pairs = tiny_pairs(&vocab);
        let report = lp.train_tick(&pairs, &pairs[..1]);
        assert!(report.trained);
        assert!(report.swap_failed);
        assert_eq!(report.published_epoch, None);
        let health = lp.health_report();
        assert_eq!(health.swaps.current_epoch, 1, "serving stays on the last good epoch");
        assert_eq!(health.swaps.swap_failures, 1);
        assert_eq!(health.train.checkpoints_written, 0);
        // The pinned model is still the day-0 baseline.
        assert_eq!(store.pin().epoch(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn successive_ticks_advance_the_epoch_and_differ_in_weights() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let store = baseline_store(&vocab, &config);
        let dir = temp_dir("advance");
        let mut lp = OnlineLoop::new(
            config,
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::new(&dir),
        );
        let pairs = tiny_pairs(&vocab);
        let r1 = lp.train_tick(&pairs, &pairs[..1]);
        let r2 = lp.train_tick(&pairs, &pairs[..1]);
        assert_eq!(r1.published_epoch, Some(2));
        assert_eq!(r2.published_epoch, Some(3));
        assert_eq!(r2.steps, 2 * lp.config.train.steps);
        assert_eq!(store.swap_stats().epochs_published, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tick_spans_nest_model_swap_under_train_tick() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let store = baseline_store(&vocab, &config);
        let dir = temp_dir("spans");
        let tracer = Tracer::logical();
        let mut lp = OnlineLoop::new(
            config,
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::new(&dir),
        )
        .with_tracer(tracer.clone());
        let pairs = tiny_pairs(&vocab);
        lp.train_tick(&pairs, &pairs[..1]);
        lp.train_tick(&[], &[]); // no-op tick records no spans
        let spans = tracer.snapshot();
        let ticks: Vec<_> = spans.iter().filter(|s| s.name == "train_tick").collect();
        let swaps: Vec<_> = spans.iter().filter(|s| s.name == "model_swap").collect();
        assert_eq!(ticks.len(), 1);
        assert_eq!(swaps.len(), 1);
        assert_eq!(swaps[0].parent, Some(ticks[0].id));
        assert_eq!(swaps[0].trace, ticks[0].trace);
        assert!(ticks[0].attr("buffer").is_some());
        assert!(ticks[0].attr("steps").is_some());
        assert!(swaps[0].attr("epoch").is_some());
        assert!(swaps[0].attr("ok").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A killed trainer resumes bit-for-bit and re-publishes; serving
    /// never regressed past the last good epoch. The kill lands mid-way
    /// through the *second* tick's checkpoint (offset measured against
    /// the first tick's clean write traffic), i.e. during the swap.
    #[test]
    fn kill_during_swap_recovers_from_the_last_sealed_checkpoint() {
        let vocab = tiny_vocab();
        let config = OnlineConfig::smoke(20);
        let pairs = tiny_pairs(&vocab);

        // Dry run: measure one tick's checkpoint traffic.
        let probe = Arc::new(TrainFaultInjector::none());
        struct Shared(Arc<TrainFaultInjector>);
        impl WriteSink for Shared {
            fn write_atomic(&self, path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
                self.0.write_atomic(path, bytes)
            }
        }
        let dry = temp_dir("kill_dry");
        let store0 = baseline_store(&vocab, &config);
        let mut lp0 = OnlineLoop::new(
            config.clone(),
            Arc::clone(&vocab),
            Arc::clone(&store0),
            CheckpointStore::with_sink(&dry, Box::new(Shared(Arc::clone(&probe)))),
        );
        lp0.train_tick(&pairs, &pairs[..1]);
        let tick_bytes = probe.total_bytes();
        assert!(tick_bytes > 0);

        // Real run: tick 1 commits cleanly, the process dies mid-tick-2
        // checkpoint.
        let dir = temp_dir("kill");
        let store = baseline_store(&vocab, &config);
        let injector = Arc::new(TrainFaultInjector::kill_at_byte(tick_bytes + tick_bytes / 2));
        let mut lp = OnlineLoop::new(
            config.clone(),
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::with_sink(&dir, Box::new(Shared(Arc::clone(&injector)))),
        );
        let r1 = lp.train_tick(&pairs, &pairs[..1]);
        assert_eq!(r1.published_epoch, Some(2));
        let r2 = lp.train_tick(&pairs, &pairs[..1]);
        assert!(injector.killed(), "the kill fault must have fired during tick 2");
        assert!(r2.swap_failed, "a torn checkpoint must not publish");
        assert_eq!(store.swap_stats().current_epoch, 2, "serving kept the last good epoch");
        let steps_at_seal = r1.steps;
        drop(lp);

        // Recovery: resume from the sealed tick-1 checkpoint and publish.
        let mut resumed = OnlineLoop::resume(
            config.clone(),
            Arc::clone(&vocab),
            Arc::clone(&store),
            CheckpointStore::new(&dir),
        )
        .expect("resume from the sealed checkpoint");
        assert_eq!(resumed.step_count(), steps_at_seal);
        let epoch = resumed.publish_now().unwrap();
        assert_eq!(epoch, 3);
        assert_eq!(store.pin().epoch(), 3);
        // And the loop keeps closing: another tick trains + swaps.
        let r3 = resumed.train_tick(&pairs, &pairs[..1]);
        assert_eq!(r3.published_epoch, Some(4));
        assert_eq!(r3.steps, steps_at_seal + config.train.steps);
        std::fs::remove_dir_all(&dry).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
}
