//! # qrw-online
//!
//! The closed online learning loop: session-aware rewriting with click
//! feedback and zero-downtime model hot-swap.
//!
//! The offline pipeline (qrw-core) trains the cycle-consistent
//! translators once, against a frozen click log. Production search is a
//! *loop*: users issue query sessions, clicks reveal which rewrites
//! matched intent, and the model should absorb that signal while serving
//! never stops. This crate closes that loop in three parts:
//!
//! * [`context`] — [`ContextQ2Q`], the session-conditioned q2q serving
//!   model: the user's previous in-session queries are encoded as an
//!   `EOS`-separated prefix in front of the current query, and the
//!   sampling RNG is a pure function of `(context, query)` so decoding
//!   is deterministic on any worker. With an empty context it *is* the
//!   plain q2q decode.
//! * [`feedback`] — [`FeedbackBuffer`], the cascade click model (shared
//!   byte-for-byte with the A/B simulator) driven over served responses,
//!   harvesting weighted `(session-context + query) → rewrite` training
//!   pairs into a bounded incremental buffer.
//! * [`trainer`] — [`OnlineLoop`], which fine-tunes the joint model on
//!   the buffer each tick, commits a crash-safe checkpoint through the
//!   atomic `CheckpointStore` discipline, and only then hot-swaps the
//!   frozen model into serving via the epoch-pinned
//!   [`ModelStore`](qrw_search::ModelStore) — a failed persist degrades
//!   to the last good epoch instead of swapping.
//!
//! Serving integration lives in qrw-search ([`SessionState`]
//! threading, the `ModelStore` itself, epoch-scoped cache keys) and
//! qrw-serve (the session runtime path); the end-to-end
//! serve→click→train→swap trajectory is exercised by the `online_smoke`
//! bench.
//!
//! [`SessionState`]: qrw_search::SessionState

pub mod context;
pub mod feedback;
pub mod trainer;

pub use context::{encode_session, ContextQ2Q};
pub use feedback::{ClickOutcome, FeedbackBuffer, FeedbackConfig, FeedbackStats, rank_page};
pub use trainer::{OnlineConfig, OnlineHealth, OnlineLoop, TickReport, ONLINE_MODEL_NAME};
