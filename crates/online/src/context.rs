//! Session-context-conditioned q2q rewriting.
//!
//! [`ContextQ2Q`] is the online loop's serving model: the §III-G direct
//! query→query rewriter, but conditioned on the user's *previous
//! in-session queries*. The session prefix is encoded in front of the
//! current query — each prior query's tokens followed by an `EOS`
//! separator — so a reformulation like `"running shoes" → "trail shoes"`
//! decodes with the earlier intent still in the encoder window.
//!
//! Two properties the serving tier depends on:
//!
//! * **Context-off is the plain model.** With an empty context the
//!   encoded source is exactly `vocab.encode(query)` and the sampling RNG
//!   is the same pure function of the query tokens the batched rewriter
//!   uses — so single-shot serving through a `ContextQ2Q` is the ordinary
//!   q2q decode, nothing layered on top.
//! * **Determinism per (context, query).** The RNG is derived from a hash
//!   of the whole session prefix plus the query, never from shared
//!   state, so the same session always draws the same samples no matter
//!   which worker thread decodes it or what ran before. That is what
//!   makes the hot-swap byte-identity replay test possible.

use std::sync::Arc;

use qrw_core::QueryRewriter;
use qrw_nmt::{top_n_sampling, Hypothesis, Seq2Seq, TopNSampling};
use qrw_tensor::rng::StdRng;
use qrw_text::{Vocab, EOS, NUM_SPECIALS};

/// FNV-1a over a session prefix and query. Token boundaries fold `0xff`
/// and query boundaries fold `0xfe`, so `["ab","c"]` / `["a","bc"]` and
/// context-vs-query splits all hash apart.
fn session_hash(context: &[Vec<String>], query: &[String]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let fold = |h: &mut u64, tokens: &[String]| {
        for t in tokens {
            for b in t.as_bytes() {
                *h ^= u64::from(*b);
                *h = h.wrapping_mul(PRIME);
            }
            *h ^= 0xff;
            *h = h.wrapping_mul(PRIME);
        }
    };
    for q in context {
        fold(&mut h, q);
        h ^= 0xfe;
        h = h.wrapping_mul(PRIME);
    }
    fold(&mut h, query);
    h
}

/// Encodes a session as one source sequence: each context query's token
/// ids followed by an `EOS` separator, then the current query. An empty
/// context yields exactly `vocab.encode(query)`.
pub fn encode_session(vocab: &Vocab, context: &[Vec<String>], query: &[String]) -> Vec<usize> {
    let mut ids = Vec::new();
    for q in context {
        ids.extend(vocab.encode(q));
        ids.push(EOS);
    }
    ids.extend(vocab.encode(query));
    ids
}

/// A thread-safe, session-aware q2q rewriter sharing its model and vocab
/// read-only via `Arc` — the unit the [`ModelStore`](qrw_search::ModelStore)
/// publishes on every hot-swap.
pub struct ContextQ2Q {
    model: Arc<Seq2Seq>,
    vocab: Arc<Vocab>,
    /// Sampling pool size per step (the paper's `n`, default 40).
    top_n: usize,
    /// Base seed XORed with each session's prefix+query hash.
    seed: u64,
    name: String,
}

impl ContextQ2Q {
    pub fn new(model: Arc<Seq2Seq>, vocab: Arc<Vocab>, top_n: usize, seed: u64) -> Self {
        ContextQ2Q { model, vocab, top_n, seed, name: "q2q-session".to_string() }
    }

    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The shared model (for decode-telemetry snapshots).
    pub fn model(&self) -> &Seq2Seq {
        &self.model
    }

    /// Hypotheses → token rewrites, mirroring the serving rewriters
    /// exactly: strip specials, drop empty / identity / duplicate
    /// rewrites, cap at `k`.
    fn postprocess(&self, hyps: &[Hypothesis], query: &[String], k: usize) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = Vec::new();
        for h in hyps {
            let tokens: Vec<String> = h
                .tokens
                .iter()
                .filter(|&&id| id >= NUM_SPECIALS)
                .map(|&id| self.vocab.token(id).to_string())
                .collect();
            if tokens.is_empty() || tokens == query || out.contains(&tokens) {
                continue;
            }
            out.push(tokens);
            if out.len() == k {
                break;
            }
        }
        out
    }
}

impl QueryRewriter for ContextQ2Q {
    /// Single-shot serving: a session with no prefix.
    fn rewrite(&self, query: &[String], k: usize) -> Vec<Vec<String>> {
        self.rewrite_with_context(&[], query, k)
    }

    fn rewrite_with_context(
        &self,
        context: &[Vec<String>],
        query: &[String],
        k: usize,
    ) -> Vec<Vec<String>> {
        if query.is_empty() || k == 0 {
            return Vec::new();
        }
        let ids = encode_session(&self.vocab, context, query);
        let mut rng = StdRng::seed_from_u64(self.seed ^ session_hash(context, query));
        let hyps = top_n_sampling(&self.model, &ids, TopNSampling { k, n: self.top_n }, &mut rng);
        self.postprocess(&hyps, query, k)
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn decode_stats(&self) -> Option<qrw_nmt::DecodeStats> {
        Some(self.model.decode_stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_nmt::ModelConfig;

    fn setup() -> (Arc<Seq2Seq>, Arc<Vocab>) {
        let model = Arc::new(Seq2Seq::new(ModelConfig::tiny_transformer(20), 41));
        let mut vocab = Vocab::new();
        for i in 0..16 {
            vocab.insert(&format!("w{i}"));
        }
        (model, Arc::new(vocab))
    }

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn empty_context_encodes_to_the_plain_query() {
        let (_, vocab) = setup();
        let q = toks("w2 w5");
        assert_eq!(encode_session(&vocab, &[], &q), vocab.encode(&q));
    }

    #[test]
    fn context_queries_are_prefixed_with_eos_separators() {
        let (_, vocab) = setup();
        let ctx = vec![toks("w1"), toks("w3 w4")];
        let q = toks("w2");
        let mut want = vocab.encode(&toks("w1"));
        want.push(EOS);
        want.extend(vocab.encode(&toks("w3 w4")));
        want.push(EOS);
        want.extend(vocab.encode(&toks("w2")));
        assert_eq!(encode_session(&vocab, &ctx, &q), want);
    }

    #[test]
    fn rewrite_is_the_empty_context_path() {
        let (model, vocab) = setup();
        let rw = ContextQ2Q::new(model, vocab, 8, 7);
        let q = toks("w2 w5");
        assert_eq!(rw.rewrite(&q, 3), rw.rewrite_with_context(&[], &q, 3));
    }

    #[test]
    fn session_rewrites_are_deterministic_per_context() {
        let (model, vocab) = setup();
        let rw = ContextQ2Q::new(model, vocab, 8, 7);
        let ctx = vec![toks("w1 w9")];
        let q = toks("w2 w5");
        let a = rw.rewrite_with_context(&ctx, &q, 3);
        // Interleave an unrelated decode: no shared RNG state may leak.
        let _ = rw.rewrite(&toks("w7"), 3);
        assert_eq!(rw.rewrite_with_context(&ctx, &q, 3), a);
        // Rewrites never echo specials or the query itself.
        for r in &a {
            assert!(!r.is_empty());
            assert_ne!(*r, q);
        }
    }

    #[test]
    fn context_conditions_the_decode() {
        let q = toks("w2 w5");
        // The hash (hence the draw sequence) must differ with context;
        // with a longer encoder window the sampled rewrites almost
        // always differ too, but the pinned guarantee is the seed split.
        assert_ne!(session_hash(&[], &q), session_hash(&[toks("w1")], &q));
        assert_ne!(
            session_hash(&[toks("w1"), toks("w3")], &q),
            session_hash(&[toks("w1 w3")], &q),
            "query boundaries in the context must hash apart"
        );
    }

    #[test]
    fn empty_query_and_zero_k_yield_empty_sets() {
        let (model, vocab) = setup();
        let rw = ContextQ2Q::new(model, vocab, 8, 7);
        assert!(rw.rewrite_with_context(&[], &[], 3).is_empty());
        assert!(rw.rewrite_with_context(&[], &toks("w2"), 0).is_empty());
        assert_eq!(rw.name(), "q2q-session");
        assert!(rw.decode_stats().is_some());
    }
}
