//! Click feedback: the deterministic user model driven over *served*
//! responses, harvesting training pairs for the online loop.
//!
//! The A/B simulator (Table VIII) replays a cascade user over result
//! pages to score arms. The online loop needs the same user — but
//! attached to the serving path, with its clicks *kept*: a click on a
//! page that rewrites helped retrieve is weak supervision that the
//! rewrite matched the user's intent, and a purchase is stronger still.
//! This module mirrors the simulator's cascade byte for byte (position
//! bias `1/(1+0.35·pos)`, click with ground-truth relevance, purchase
//! with `rel × purchase_scale`, per-session RNG
//! `seed ^ session·0x51ed`), then converts each satisfied session into a
//! weighted `(session-context + query) → rewrite` training [`Pair`]:
//! weight 1 on click, 2 on purchase.
//!
//! Pairs land in a bounded [`FeedbackBuffer`] (oldest dropped first) the
//! trainer drains each tick. Everything is a pure function of
//! `(seed, session, response)`, so the whole loop replays exactly.

use std::collections::VecDeque;

use qrw_data::{ClickLog, Pair};
use qrw_obs::Tracer;
use qrw_search::SearchResponse;
use qrw_tensor::rng::StdRng;
use qrw_text::Vocab;

use crate::context::encode_session;

/// Cascade + harvest parameters.
#[derive(Clone, Copy, Debug)]
pub struct FeedbackConfig {
    /// RNG seed; each session derives `seed ^ session·0x51ed` exactly
    /// like the A/B simulator, so the same user behaves identically in
    /// both harnesses.
    pub seed: u64,
    /// Base purchase probability scale after a click.
    pub purchase_scale: f64,
    /// Result-page depth the cascade examines.
    pub top_k: usize,
}

impl Default for FeedbackConfig {
    fn default() -> Self {
        FeedbackConfig { seed: 71, purchase_scale: 0.35, top_k: 10 }
    }
}

/// What one session's cascade did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClickOutcome {
    pub clicked: bool,
    pub purchased: bool,
    /// Whether a training pair was harvested (clicked *and* the response
    /// actually used rewrites to build its page).
    pub harvested: bool,
}

/// Lifetime counters across all observed sessions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FeedbackStats {
    pub sessions: u64,
    pub clicks: u64,
    pub purchases: u64,
    pub harvested: u64,
    /// Pairs evicted because the buffer was full.
    pub dropped: u64,
}

/// Ranks a served candidate set the way the production ranker would:
/// ground-truth relevance desc, popularity desc, id asc — identical to
/// the A/B simulator's stand-in ranker, so the feedback user sees the
/// same pages the experiment scores.
pub fn rank_page(
    log: &ClickLog,
    query_idx: usize,
    candidates: &[usize],
    top_k: usize,
) -> Vec<usize> {
    let q = &log.queries[query_idx];
    let mut scored: Vec<(f32, f32, usize)> = candidates
        .iter()
        .map(|&item_id| {
            let item = log.catalog.item(item_id);
            let rel = log.catalog.relevance(
                item,
                q.category,
                q.brand,
                q.audience,
                q.attr.as_deref(),
            );
            (rel, item.popularity, item_id)
        })
        .collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(b.1.total_cmp(&a.1)).then(a.2.cmp(&b.2)));
    scored.into_iter().take(top_k).map(|(_, _, id)| id).collect()
}

/// The bounded incremental training buffer the online trainer drains.
pub struct FeedbackBuffer {
    pairs: VecDeque<Pair>,
    capacity: usize,
    stats: FeedbackStats,
}

impl FeedbackBuffer {
    pub fn new(capacity: usize) -> Self {
        FeedbackBuffer { pairs: VecDeque::new(), capacity: capacity.max(1), stats: FeedbackStats::default() }
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn stats(&self) -> FeedbackStats {
        self.stats
    }

    /// The buffered pairs as one slice (what a train tick consumes).
    pub fn pairs(&mut self) -> &[Pair] {
        self.pairs.make_contiguous()
    }

    /// Appends a pair, evicting the oldest when full.
    pub fn push(&mut self, pair: Pair) {
        if self.pairs.len() == self.capacity {
            self.pairs.pop_front();
            self.stats.dropped += 1;
        }
        self.pairs.push_back(pair);
    }

    /// Drives the cascade user over one served response and harvests a
    /// training pair if the session clicked on a rewrite-assisted page.
    ///
    /// `session` seeds the user (common random numbers with the A/B
    /// simulator); `context` is the user's previous in-session queries —
    /// the harvested source is [`encode_session`]`(vocab, context,
    /// query)`, so the pair trains exactly the input the session model
    /// serves. When a tracer is attached, the observation records a
    /// `feedback` span (minted trace) with `session`, `clicks` and
    /// `harvested` attributes.
    #[allow(clippy::too_many_arguments)]
    pub fn observe(
        &mut self,
        log: &ClickLog,
        vocab: &Vocab,
        session: u64,
        context: &[Vec<String>],
        query_idx: usize,
        response: &SearchResponse,
        config: &FeedbackConfig,
        tracer: Option<&Tracer>,
    ) -> ClickOutcome {
        let mut span = tracer.map(|t| {
            let mut s = t.span(t.next_trace(), None, "feedback");
            s.attr("session", session);
            s
        });
        let q = &log.queries[query_idx];
        let ranked = rank_page(log, query_idx, &response.candidates, config.top_k);
        let mut rng = StdRng::seed_from_u64(config.seed ^ session.wrapping_mul(0x51ed));

        self.stats.sessions += 1;
        let mut outcome = ClickOutcome::default();
        let mut clicks_here = 0u64;
        for (pos, &item_id) in ranked.iter().enumerate() {
            // Position-biased examination (cascade model).
            let examine = 1.0 / (1.0 + pos as f64 * 0.35);
            if rng.gen::<f64>() > examine {
                continue;
            }
            let item = log.catalog.item(item_id);
            let rel = f64::from(log.catalog.relevance(
                item,
                q.category,
                q.brand,
                q.audience,
                q.attr.as_deref(),
            ));
            if rng.gen::<f64>() < rel {
                outcome.clicked = true;
                clicks_here += 1;
                self.stats.clicks += 1;
                if rng.gen::<f64>() < rel * config.purchase_scale {
                    outcome.purchased = true;
                    self.stats.purchases += 1;
                    break; // purchase ends the session
                }
            }
        }

        // A click only credits the rewriter when rewrites actually shaped
        // the page; a baseline-only response teaches nothing about q2q.
        if outcome.clicked && !response.rewrites_used.is_empty() {
            let pair = Pair {
                src: encode_session(vocab, context, &q.tokens),
                tgt: vocab.encode(&response.rewrites_used[0]),
                weight: if outcome.purchased { 2 } else { 1 },
            };
            if !pair.src.is_empty() && !pair.tgt.is_empty() {
                self.push(pair);
                outcome.harvested = true;
                self.stats.harvested += 1;
            }
        }
        if let Some(s) = span.as_mut() {
            s.attr("clicks", clicks_here);
            s.attr("harvested", outcome.harvested);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrw_core::QueryRewriter;
    use qrw_data::LogConfig;
    use qrw_search::{InvertedIndex, SearchEngine, ServingConfig};

    /// The A/B tests' oracle: query → the title-register phrasing of its
    /// ground-truth intent, guaranteeing relevant extra candidates.
    struct Oracle<'l> {
        log: &'l ClickLog,
    }

    impl QueryRewriter for Oracle<'_> {
        fn rewrite(&self, query: &[String], _k: usize) -> Vec<Vec<String>> {
            let Some(q) = self.log.queries.iter().find(|q| q.tokens == query) else {
                return Vec::new();
            };
            let cat = self.log.catalog.category(q.category);
            let mut rw = Vec::new();
            if let Some(aud) = q.audience {
                rw.push(self.log.catalog.audience(aud).title_terms[0].clone());
            }
            if let Some(b) = q.brand {
                rw.push(self.log.catalog.brand(b).formal.clone());
            }
            rw.push(cat.title_terms[0].clone());
            vec![rw]
        }
        fn name(&self) -> &str {
            "oracle"
        }
    }

    fn served_world() -> (ClickLog, SearchEngine, Vocab) {
        let log = ClickLog::generate(&LogConfig::default());
        let engine = SearchEngine::new(InvertedIndex::build(
            log.catalog.items.iter().map(|i| i.title_tokens.clone()),
        ));
        let mut vocab = Vocab::new();
        for q in &log.queries {
            for t in &q.tokens {
                vocab.insert(t);
            }
        }
        for item in &log.catalog.items {
            for t in &item.title_tokens {
                vocab.insert(t);
            }
        }
        (log, engine, vocab)
    }

    fn drive(
        buffer: &mut FeedbackBuffer,
        log: &ClickLog,
        engine: &SearchEngine,
        vocab: &Vocab,
        sessions: u64,
        config: &FeedbackConfig,
    ) {
        let oracle = Oracle { log };
        let serving = ServingConfig::default();
        for session in 0..sessions {
            let qi = (session as usize * 13 + 1) % log.queries.len();
            let resp = engine.search_with_rewrites(
                &log.queries[qi].tokens,
                None,
                Some(&oracle),
                &serving,
            );
            buffer.observe(log, vocab, session, &[], qi, &resp, config, None);
        }
    }

    #[test]
    fn clicked_rewrite_pages_harvest_weighted_pairs() {
        let (log, engine, vocab) = served_world();
        let mut buffer = FeedbackBuffer::new(4096);
        let config = FeedbackConfig::default();
        drive(&mut buffer, &log, &engine, &vocab, 200, &config);
        let stats = buffer.stats();
        assert_eq!(stats.sessions, 200);
        assert!(stats.clicks > 0, "the cascade over relevant pages must click: {stats:?}");
        assert!(stats.harvested > 0, "clicked rewrite pages must harvest: {stats:?}");
        assert!(stats.purchases > 0, "some clicks should convert: {stats:?}");
        assert_eq!(stats.harvested as usize, buffer.len());
        // Purchases upgrade the pair weight.
        let weights: Vec<u32> = buffer.pairs().iter().map(|p| p.weight).collect();
        assert!(weights.iter().all(|&w| w == 1 || w == 2));
        assert!(weights.contains(&2), "purchased sessions harvest weight 2");
        // Harvested sources/targets are real token ids.
        for p in buffer.pairs() {
            assert!(!p.src.is_empty() && !p.tgt.is_empty());
        }
    }

    #[test]
    fn harvest_is_deterministic() {
        let (log, engine, vocab) = served_world();
        let config = FeedbackConfig::default();
        let run = || {
            let mut b = FeedbackBuffer::new(4096);
            drive(&mut b, &log, &engine, &vocab, 64, &config);
            let pairs: Vec<(Vec<usize>, Vec<usize>, u32)> =
                b.pairs().iter().map(|p| (p.src.clone(), p.tgt.clone(), p.weight)).collect();
            (b.stats(), pairs)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn session_context_is_encoded_into_the_source() {
        let (log, engine, vocab) = served_world();
        let config = FeedbackConfig::default();
        let oracle = Oracle { log: &log };
        let serving = ServingConfig::default();
        // Find a session seed that clicks, then replay it with context.
        for session in 0..500u64 {
            let qi = 1;
            let resp = engine.search_with_rewrites(
                &log.queries[qi].tokens,
                None,
                Some(&oracle),
                &serving,
            );
            let mut plain = FeedbackBuffer::new(16);
            let out =
                plain.observe(&log, &vocab, session, &[], qi, &resp, &config, None);
            if !out.harvested {
                continue;
            }
            let context = vec![log.queries[0].tokens.clone()];
            let mut with_ctx = FeedbackBuffer::new(16);
            let out2 =
                with_ctx.observe(&log, &vocab, session, &context, qi, &resp, &config, None);
            assert!(out2.harvested, "same user randomness, same click");
            let src_plain = plain.pairs()[0].src.clone();
            let src_ctx = with_ctx.pairs()[0].src.clone();
            assert_eq!(
                src_ctx,
                encode_session(&vocab, &context, &log.queries[qi].tokens)
            );
            assert!(src_ctx.len() > src_plain.len());
            assert_eq!(with_ctx.pairs()[0].tgt, plain.pairs()[0].tgt);
            return;
        }
        panic!("no clicking session found in 500 tries");
    }

    #[test]
    fn buffer_is_bounded_and_counts_evictions() {
        let mut b = FeedbackBuffer::new(3);
        for i in 0..5usize {
            b.push(Pair { src: vec![i + 4], tgt: vec![i + 5], weight: 1 });
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.stats().dropped, 2);
        // Oldest evicted first.
        assert_eq!(b.pairs()[0].src, vec![6]);
        assert!(!b.is_empty());
    }

    #[test]
    fn feedback_spans_record_the_harvest() {
        let (log, engine, vocab) = served_world();
        let tracer = Tracer::logical();
        let mut buffer = FeedbackBuffer::new(64);
        let oracle = Oracle { log: &log };
        let resp = engine.search_with_rewrites(
            &log.queries[1].tokens,
            None,
            Some(&oracle),
            &ServingConfig::default(),
        );
        let config = FeedbackConfig::default();
        for session in 0..8u64 {
            buffer.observe(&log, &vocab, session, &[], 1, &resp, &config, Some(&tracer));
        }
        let spans = tracer.snapshot();
        let feedback: Vec<_> = spans.iter().filter(|s| s.name == "feedback").collect();
        assert_eq!(feedback.len(), 8);
        for s in &feedback {
            assert!(s.attr("session").is_some());
            assert!(s.attr("clicks").is_some());
            assert!(s.attr("harvested").is_some());
        }
    }
}
