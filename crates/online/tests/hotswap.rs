//! Hot-swap atomicity: serving under concurrent model swaps is
//! byte-identical to a serial replay against each response's stamped
//! model epoch.
//!
//! Four serving threads hammer session requests (pin → full ladder walk
//! → unpin) while a writer thread publishes a stream of alternating
//! models through the [`ModelStore`]. Every response is then replayed
//! serially against a fresh store advanced to exactly the epoch the
//! response was stamped with. If a request could ever observe a torn
//! swap — half old model, half new — some response's rewrites (and hence
//! its whole Debug rendering) would diverge from the replay.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qrw_nmt::{ModelConfig, Seq2Seq};
use qrw_online::{ContextQ2Q, ONLINE_MODEL_NAME};
use qrw_search::{
    DeadlineBudget, InvertedIndex, ModelStore, RewriteLadder, SearchEngine, ServingConfig,
    SessionState, SharedRewriter,
};
use qrw_text::Vocab;

fn toks(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

fn world() -> (SearchEngine, Arc<Vocab>) {
    let mut vocab = Vocab::new();
    for i in 0..16 {
        vocab.insert(&format!("w{i}"));
    }
    let docs: Vec<Vec<String>> = (0..40)
        .map(|d| {
            vec![
                format!("w{}", d % 16),
                format!("w{}", (d * 7 + 3) % 16),
                format!("w{}", (d * 11 + 5) % 16),
            ]
        })
        .collect();
    (SearchEngine::new(InvertedIndex::build(docs)), Arc::new(vocab))
}

/// Two observably different session models over the same vocab.
fn model_pool(vocab: &Arc<Vocab>) -> Vec<SharedRewriter> {
    [41u64, 43]
        .iter()
        .map(|&seed| {
            Arc::new(
                ContextQ2Q::new(
                    Arc::new(Seq2Seq::new(ModelConfig::tiny_transformer(20), seed)),
                    Arc::clone(vocab),
                    8,
                    7,
                )
                .with_name(ONLINE_MODEL_NAME),
            ) as SharedRewriter
        })
        .collect()
}

#[test]
fn concurrent_swaps_serve_byte_identical_to_serial_replay() {
    const THREADS: usize = 4;
    const REQUESTS: usize = 24;
    const SWAPS: usize = 20;

    let (engine, vocab) = world();
    let pool = model_pool(&vocab);
    let store = ModelStore::new(Arc::clone(&pool[0]));
    let config = ServingConfig::default();

    let queries = [toks("w2 w5"), toks("w9"), toks("w1 w3 w4"), toks("w7 w12")];
    let contexts: [Vec<Vec<String>>; 3] =
        [vec![], vec![toks("w1 w9")], vec![toks("w3"), toks("w5 w6")]];

    let stop = AtomicBool::new(false);
    // (epoch, model index) in publish order — epoch 1 is pool[0].
    let mut published: Vec<(u64, usize)> = Vec::new();
    // Per-thread: (stamped epoch, context idx, query idx, Debug bytes).
    let mut served: Vec<Vec<(u64, usize, usize, String)>> = Vec::new();

    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut log = Vec::new();
            for i in 0..SWAPS {
                let which = (i + 1) % 2;
                let epoch = store.publish(Arc::clone(&pool[which]));
                log.push((epoch, which));
                for _ in 0..3 {
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::SeqCst);
            log
        });

        let servers: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let store = &store;
                let config = &config;
                let queries = &queries;
                let contexts = &contexts;
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(REQUESTS);
                    for r in 0..REQUESTS {
                        let qi = (t + r) % queries.len();
                        let ci = (t * 5 + r) % contexts.len();
                        let pin = store.pin();
                        let session =
                            SessionState { context: &contexts[ci], model: Some(&pin) };
                        let resp = engine.search_session_traced(
                            &queries[qi],
                            session,
                            RewriteLadder::default(),
                            config,
                            &DeadlineBudget::unlimited(),
                            None,
                            None,
                        );
                        assert_eq!(resp.model_epoch, pin.epoch(), "stamp == pinned epoch");
                        out.push((resp.model_epoch, ci, qi, format!("{resp:?}")));
                    }
                    out
                })
            })
            .collect();

        for s in servers {
            served.push(s.join().unwrap());
        }
        published = writer.join().unwrap();
    });

    assert_eq!(published.len(), SWAPS);
    // Epochs are assigned contiguously from 2.
    for (i, &(epoch, _)) in published.iter().enumerate() {
        assert_eq!(epoch, i as u64 + 2);
    }

    // Serial replay: advance a fresh store through the same publish
    // sequence, pinning every epoch as it appears (enough slots to hold
    // them all), then re-serve each request against its stamped epoch.
    let replay = ModelStore::with_slots(Arc::clone(&pool[0]), SWAPS + 4);
    let mut pins = vec![replay.pin()]; // pins[e-1] holds epoch e
    for &(_, which) in &published {
        replay.publish(Arc::clone(&pool[which]));
        pins.push(replay.pin());
    }
    for (e, pin) in pins.iter().enumerate() {
        assert_eq!(pin.epoch(), e as u64 + 1);
    }

    let mut checked = 0usize;
    let mut epochs_seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for thread in &served {
        for (epoch, ci, qi, bytes) in thread {
            let pin = &pins[(*epoch - 1) as usize];
            let session = SessionState { context: &contexts[*ci], model: Some(pin) };
            let resp = engine.search_session_traced(
                &queries[*qi],
                session,
                RewriteLadder::default(),
                &config,
                &DeadlineBudget::unlimited(),
                None,
                None,
            );
            assert_eq!(
                *bytes,
                format!("{resp:?}"),
                "response under concurrent swaps must equal its serial replay \
                 (epoch {epoch}, ctx {ci}, query {qi})"
            );
            checked += 1;
            epochs_seen.insert(*epoch);
        }
    }
    assert_eq!(checked, THREADS * REQUESTS);
    assert!(
        epochs_seen.len() > 1,
        "the run should actually straddle several epochs, saw {epochs_seen:?}"
    );

    // No pins leaked; the concurrent store reclaimed superseded epochs.
    let stats = store.swap_stats();
    assert_eq!(stats.pinned_now, 0);
    assert_eq!(stats.epochs_published, SWAPS as u64);
    assert!(stats.epochs_reclaimed > 0);
}
